"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section, prints the reproduced rows/series next to the paper's reference
values, and asserts the qualitative *shape* (orderings, ratios, crossovers)
rather than absolute numbers -- our substrate is a Python simulator with
synthetic workloads, not the authors' 28 nm silicon.

Benchmarks run each experiment once (``rounds=1``): the interesting output
is the reproduced table, and several experiments are minutes-scale when
repeated.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner


def print_section(title: str, body: str) -> None:
    """Print a clearly delimited reproduction section into the bench log."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")
