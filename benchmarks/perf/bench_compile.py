"""Micro-benchmark: whole-model compilation and trace-replay throughput.

Times, for every requested workload on one hardware preset, (a) the
pass-based pipeline compiling the whole network into a segmented program
(``repro.compiler.pipeline.compile_model``) and (b) the trace simulator
replaying that program (``repro.sim.trace.TraceSimulator.run``), verifying
on the way that the traced broadcast cycles match the analytical cycle
model within the documented tolerance.  The default workload set covers
every registered family -- the five paper CNNs *and* the graph-only
transformer workloads -- and each row records the workload's graph
structure (nodes, joins, residual traffic), so the benchmark tracks the
graph-aware pipeline too.  Results land in ``BENCH_compile.json`` so the
repository accumulates a compile/replay perf trajectory across PRs, next
to ``BENCH_cycle_model.json``.

Workload profiling is timed separately and excluded from the per-stage
numbers -- the benchmark isolates the compiler and the trace executor.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_compile.py \
        [--preset paper-28nm] [--models alexnet ...] [--variant hybrid] \
        [--repeats 3] [--output BENCH_compile.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import __version__
from repro.api import get_config
from repro.compiler import compile_model
from repro.sim.cycle_model import CycleModel
from repro.sim.trace import TRACE_TOLERANCE, TraceSimulator, relative_cycle_error
from repro.workloads import get_workload, list_workloads, profile_model


def _best_of(repeats: int, call) -> float:
    """Best-of-``repeats`` wall time of ``call()``, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    preset: str,
    models: Sequence[str],
    variant: str,
    repeats: int,
) -> Dict[str, object]:
    """Benchmark every workload and return the report payload."""
    config = get_config(preset)
    simulator = TraceSimulator(config)
    cycle_model = CycleModel(config)
    report: Dict[str, object] = {
        "benchmark": "compile",
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "preset": preset,
        "variant": variant,
        "repeats": repeats,
        "models": {},
    }
    for model in models:
        workload = get_workload(model)
        profile = profile_model(workload, seed=0)
        compiled = compile_model(profile, config=config, variant=variant)
        trace = simulator.run(compiled)
        # Correctness gate: the replay must agree with the analytical model
        # before its timings mean anything.
        error = relative_cycle_error(
            trace, cycle_model.run_model(profile, variant)
        )
        if error > TRACE_TOLERANCE:
            raise AssertionError(
                f"trace diverges from the analytical model on {model!r} "
                f"(rel err {error:.3e}); run tests/sim/test_trace.py"
            )
        compile_s = _best_of(
            repeats, lambda: compile_model(profile, config=config, variant=variant)
        )
        trace_s = _best_of(repeats, lambda: simulator.run(compiled))
        instructions = len(compiled.program)
        graph = workload.graph
        report["models"][model] = {
            "instructions": instructions,
            "segments": len(compiled.program.segments),
            "unique_instructions": compiled.program.unique_instructions,
            "graph_nodes": len(graph) if graph is not None else None,
            "graph_joins": len(graph.join_nodes()) if graph is not None else 0,
            "residual_feature_bytes": trace.residual_feature_bytes,
            "compile_s": compile_s,
            "trace_s": trace_s,
            "trace_minstr_per_s": (
                instructions / trace_s / 1e6 if trace_s > 0 else float("inf")
            ),
            "max_relative_error": error,
        }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset", default="paper-28nm", metavar="PRESET",
        help="hardware preset to compile for",
    )
    parser.add_argument(
        "--models", nargs="+", default=None, metavar="MODEL",
        help="workloads to compile (default: all five paper models)",
    )
    parser.add_argument(
        "--variant", default="hybrid",
        choices=("base", "input", "weight", "hybrid"),
        help="sparsity variant to compile for",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per stage (best-of is reported)",
    )
    parser.add_argument(
        "--output", default="BENCH_compile.json", metavar="PATH",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.repeats <= 0:
        parser.error("--repeats must be positive")
    models: List[str] = args.models or list_workloads(family=None)

    report = run_benchmark(args.preset, models, args.variant, args.repeats)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(
        f"{'model':<16}{'instr':>9}{'segs':>6}{'compile (ms)':>14}"
        f"{'trace (ms)':>12}{'Minstr/s':>10}"
    )
    for model, entry in report["models"].items():
        print(
            f"{model:<16}{entry['instructions']:>9}{entry['segments']:>6}"
            f"{entry['compile_s'] * 1e3:>14.2f}{entry['trace_s'] * 1e3:>12.2f}"
            f"{entry['trace_minstr_per_s']:>10.2f}"
        )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
