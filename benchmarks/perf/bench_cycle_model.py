"""Micro-benchmark: scalar vs vectorized cycle-model engine.

Times the Fig. 7 sweep (every requested model x all four sparsity variants,
i.e. exactly what ``repro run fig7`` evaluates) under both cycle-model
engines on every requested hardware preset, verifies that the engines agree
bitwise, and writes the measurements to ``BENCH_cycle_model.json`` so the
repository accumulates a perf trajectory across PRs.

Workload profiling (the seed-driven synthesis of sparsity statistics) is
engine-independent, so the profiles are computed once and shared between
both timed sessions -- the benchmark isolates the cycle-model evaluation
itself.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_cycle_model.py \
        [--presets paper-28nm ...] [--models alexnet ...] \
        [--repeats 5] [--output BENCH_cycle_model.json]

See ``docs/performance.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import __version__
from repro.api import Experiment, list_configs
from repro.workloads import list_workloads

#: Engines timed against each other, in report order.
ENGINES = ("scalar", "vectorized")


def _sessions(preset: str, models: Sequence[str]) -> Dict[str, Experiment]:
    """One session per engine, sharing a single warm profile cache."""
    sessions = {
        engine: Experiment(config=preset, engine=engine) for engine in ENGINES
    }
    reference = sessions["scalar"]
    for model in models:
        reference.profile(model)  # profile once ...
    for session in sessions.values():
        session._profiles = reference._profiles  # ... share across engines
    return sessions


def _time_fig7(session: Experiment, models: Sequence[str], repeats: int) -> float:
    """Best-of-``repeats`` wall time of one fig7 evaluation, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        session.speedup_energy(models)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    presets: Sequence[str],
    models: Sequence[str],
    repeats: int,
) -> Dict[str, object]:
    """Benchmark every preset and return the report payload."""
    report: Dict[str, object] = {
        "benchmark": "cycle_model",
        "experiment": "fig7",
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "models": list(models),
        "repeats": repeats,
        "presets": {},
    }
    for preset in presets:
        sessions = _sessions(preset, models)
        # Correctness gate: the engines must agree bitwise before timing.
        rows = {
            engine: session.speedup_energy(models)
            for engine, session in sessions.items()
        }
        if rows["scalar"] != rows["vectorized"]:
            raise AssertionError(
                f"engine outputs diverge on preset {preset!r}; "
                "run tests/sim/test_vectorized.py for details"
            )
        timings = {
            engine: _time_fig7(sessions[engine], models, repeats)
            for engine in ENGINES
        }
        report["presets"][preset] = {
            "scalar_s": timings["scalar"],
            "vectorized_s": timings["vectorized"],
            "speedup": timings["scalar"] / timings["vectorized"],
        }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--presets", nargs="+", default=None, metavar="PRESET",
        help="hardware presets to benchmark (default: all registered)",
    )
    parser.add_argument(
        "--models", nargs="+", default=None, metavar="MODEL",
        help="workloads of the fig7 sweep (default: all five paper models)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repetitions per engine (best-of is reported)",
    )
    parser.add_argument(
        "--output", default="BENCH_cycle_model.json", metavar="PATH",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    presets: List[str] = args.presets or list_configs()
    models: List[str] = args.models or list_workloads()
    if args.repeats <= 0:
        parser.error("--repeats must be positive")

    report = run_benchmark(presets, models, args.repeats)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"{'preset':<24}{'scalar (ms)':>14}{'vectorized (ms)':>18}{'speedup':>10}")
    for preset, entry in report["presets"].items():
        print(
            f"{preset:<24}{entry['scalar_s'] * 1e3:>14.2f}"
            f"{entry['vectorized_s'] * 1e3:>18.2f}{entry['speedup']:>9.1f}x"
        )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
