"""Micro-benchmark: the distributed broker transport vs the serial reference.

Times a **cold-cache** fig7 sweep three ways -- the ``serial`` transport
(the byte-identity reference), the ``broker`` transport with zero
attached workers (the coordinator executes everything itself, so this
measures pure coordination overhead: publish, lease files, fragment
round-trips), and the ``broker`` transport driving a real fleet of
``repro worker`` subprocesses (the coordinator reduced to pure
coordination).  Before any timing, every variant's ``SweepResult`` must
serialise byte-identically to serial -- including a recovery run where a
worker is SIGKILLed mid-shard and its shard requeued -- otherwise the
benchmark raises instead of reporting.

The broker's win scales with core count and per-shard work; on a
single-core container it roughly ties serial (the coordination overhead
is the price of crash-tolerance), so ``cpu_count`` is recorded to keep
snapshots comparable.  Results are written to ``BENCH_dist.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_dist.py \
        [--models alexnet ...] [--shards 4] [--workers 2] \
        [--repeats 3] [--output BENCH_dist.json]

See ``docs/distributed.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import repro
from repro import __version__
from repro.api import run_sweep

#: The grid every transport is timed on.
EXPERIMENTS = ("fig7",)

#: Default fig7 workloads: enough points for the fleet to matter.
DEFAULT_MODELS = ("alexnet", "mobilenetv2", "resnet18", "vgg19")

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: A plain worker process: attach to argv[1], execute until STOP.
_WORKER_SNIPPET = (
    "import sys\n"
    "from repro.dist.worker import WorkerConfig, run_worker\n"
    "run_worker(WorkerConfig(sweep_dir=sys.argv[1], worker_id=sys.argv[2],"
    " attach_timeout_s=120.0))\n"
)

#: A worker that SIGKILLs itself the moment it starts executing a shard
#: (run_worker binds run_shard lazily, so patching the module suffices).
_VICTIM_SNIPPET = (
    "import os, signal, sys\n"
    "import repro.api.sweep as sweep_module\n"
    "def lethal(shard, cache_dir=None):\n"
    "    os.kill(os.getpid(), signal.SIGKILL)\n"
    "sweep_module.run_shard = lethal\n"
    "from repro.dist.worker import WorkerConfig, run_worker\n"
    "run_worker(WorkerConfig(sweep_dir=sys.argv[1], worker_id=sys.argv[2],"
    " attach_timeout_s=120.0))\n"
)


def _worker_env() -> Dict[str, str]:
    env = dict(os.environ)
    path = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC_DIR if not path else _SRC_DIR + os.pathsep + path
    return env


def _spawn_worker(snippet: str, sweep_dir: str, worker_id: str) -> subprocess.Popen:
    process = subprocess.Popen(
        [sys.executable, "-c", snippet, sweep_dir, worker_id],
        env=_worker_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    # Reap the worker the moment it exits: a SIGKILLed child left as a
    # zombie would still look alive to the coordinator's PID probe.
    threading.Thread(target=process.wait, daemon=True).start()
    return process


def _run_serial(models: Sequence[str], shards: int):
    return run_sweep(
        experiments=EXPERIMENTS, models=models, transport="serial",
        shards=shards,
    )


def _run_broker_solo(models: Sequence[str], shards: int):
    with tempfile.TemporaryDirectory(prefix="bench-dist-") as sweep_dir:
        return run_sweep(
            experiments=EXPERIMENTS, models=models, transport="broker",
            sweep_dir=sweep_dir, shards=shards,
        )


def _run_broker_fleet(models: Sequence[str], shards: int, workers: int):
    with tempfile.TemporaryDirectory(prefix="bench-dist-") as sweep_dir:
        fleet = [
            _spawn_worker(_WORKER_SNIPPET, sweep_dir, f"bench-worker-{i}")
            for i in range(workers)
        ]
        try:
            return run_sweep(
                experiments=EXPERIMENTS, models=models, transport="broker",
                sweep_dir=sweep_dir, shards=shards,
                transport_options={"coordinator_executes": False},
            )
        finally:
            for process in fleet:
                if process.wait(timeout=120) != 0:
                    raise AssertionError(
                        f"worker exited {process.returncode}"
                    )


def _run_sigkill_recovery(models: Sequence[str], shards: int):
    """One worker dies mid-shard; the coordinator must recover and finish."""
    with tempfile.TemporaryDirectory(prefix="bench-dist-") as sweep_dir:
        victim = _spawn_worker(_VICTIM_SNIPPET, sweep_dir, "bench-victim")
        try:
            with warnings.catch_warnings():
                # The lost-worker requeue warning is this run's whole point.
                warnings.simplefilter("ignore", RuntimeWarning)
                result = run_sweep(
                    experiments=EXPERIMENTS, models=models,
                    transport="broker", sweep_dir=sweep_dir, shards=shards,
                )
        finally:
            victim.wait(timeout=120)
        if victim.returncode != -9:
            raise AssertionError(
                f"victim was expected to die by SIGKILL, exited "
                f"{victim.returncode}"
            )
        return result


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    models: Sequence[str], shards: int, workers: int, repeats: int
) -> Dict[str, object]:
    """Gate every variant on byte-identity, then time them."""
    reference = _run_serial(models, shards).to_json()
    for name, variant in (
        ("broker-solo", lambda: _run_broker_solo(models, shards)),
        ("broker-fleet", lambda: _run_broker_fleet(models, shards, workers)),
        ("sigkill-recovery", lambda: _run_sigkill_recovery(models, shards)),
    ):
        produced = variant().to_json()
        if produced != reference:
            raise AssertionError(
                f"{name} diverges from the serial reference; run "
                "tests/dist/test_broker.py for details"
            )
    serial_s = _best_of(lambda: _run_serial(models, shards), repeats)
    solo_s = _best_of(lambda: _run_broker_solo(models, shards), repeats)
    fleet_s = _best_of(
        lambda: _run_broker_fleet(models, shards, workers), repeats
    )
    return {
        "benchmark": "dist",
        "experiments": list(EXPERIMENTS),
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "models": list(models),
        "shards": shards,
        "workers": workers,
        "repeats": repeats,
        "serial_s": serial_s,
        "broker_solo_s": solo_s,
        "broker_fleet_s": fleet_s,
        "broker_solo_overhead": solo_s / serial_s,
        "broker_fleet_speedup_vs_serial": serial_s / fleet_s,
        "byte_identical": True,
        "sigkill_recovery_byte_identical": True,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--models", nargs="+", default=list(DEFAULT_MODELS), metavar="MODEL",
        help="workloads of the fig7 grid (one sweep point per model)",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="target shard count handed to the planner",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker subprocesses in the fleet run",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per variant (best-of is reported)",
    )
    parser.add_argument(
        "--output", default="BENCH_dist.json", metavar="PATH",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.repeats <= 0:
        parser.error("--repeats must be positive")
    if args.workers <= 0:
        parser.error("--workers must be positive")

    report = run_benchmark(args.models, args.shards, args.workers, args.repeats)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"serial:        {report['serial_s'] * 1e3:10.1f} ms")
    print(
        f"broker solo:   {report['broker_solo_s'] * 1e3:10.1f} ms "
        f"({report['broker_solo_overhead']:.2f}x serial)"
    )
    print(
        f"broker fleet:  {report['broker_fleet_s'] * 1e3:10.1f} ms "
        f"({report['workers']} workers, "
        f"{report['broker_fleet_speedup_vs_serial']:.2f}x vs serial "
        f"on {report['cpu_count']} CPU(s))"
    )
    print("byte-identical: True (incl. SIGKILL mid-shard recovery)")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
