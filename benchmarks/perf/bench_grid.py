"""Micro-benchmark: config-fused grid kernel vs the per-job paths.

Times the full (preset x Fig. 7 variant) configuration grid of the fig7
workloads under three dispatch strategies for the same set of cycle-model
jobs, verifies all three agree bitwise, and writes the measurements to
``BENCH_grid.json``:

* ``sessions`` -- the per-config-session dispatch the sweep shard
  executor used before the fused path existed: one
  ``simulate_jobs(..., fuse=False)`` call of the four variant jobs per
  preset (this is the baseline the fused kernel actually replaced);
* ``unfused`` -- one flat ``simulate_jobs(..., fuse=False)`` call over
  every (config, profile) job, i.e. the profile replicated once per
  configuration inside a single batch;
* ``fused`` -- one :func:`repro.sim.vectorized.simulate_grid` pass per
  profile: the config axis becomes the leading dimension of a 2-D
  broadcast, no per-config profile copies.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_grid.py \
        [--presets paper-28nm ...] [--models alexnet ...] \
        [--repeats 5] [--output BENCH_grid.json]

See ``docs/performance.md`` ("Engine tiers") for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import __version__
from repro.api import list_configs
from repro.api.configs import get_config
from repro.arch.energy import EnergyModel
from repro.sim.cycle_model import SPARSITY_VARIANTS
from repro.sim.vectorized import profile_arrays, simulate_grid, simulate_jobs
from repro.workloads import get_workload, list_workloads, profile_model


def _activity_fields(activity) -> Dict[str, np.ndarray]:
    """Flat field map of one BatchActivity for exact comparison."""
    fields = {
        "cycles": activity.cycles,
        "cell_activations": activity.cell_activations,
        "effective": activity.effective_cell_activations,
        "macs": activity.macs,
    }
    for component, values in activity.energy.items():
        fields[f"energy.{component}"] = values
    return fields


def _assert_bitwise_equal(label: str, left, right) -> None:
    """Refuse to report timings when two strategies disagree."""
    left_fields = _activity_fields(left)
    right_fields = _activity_fields(right)
    if set(left_fields) != set(right_fields):
        raise AssertionError(f"{label}: energy components diverge")
    for name, values in left_fields.items():
        if not np.array_equal(values, right_fields[name]):
            raise AssertionError(
                f"{label}: field {name!r} diverges; "
                "run tests/sim/test_grid.py for details"
            )


def _best_of(repeats: int, run: Callable[[], object]) -> float:
    """Best-of-``repeats`` wall time of ``run()``, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    presets: Sequence[str],
    models: Sequence[str],
    repeats: int,
) -> Dict[str, object]:
    """Benchmark the three dispatch strategies on one shared config grid."""
    configs = [
        get_config(preset).for_variant(variant)
        for preset in presets
        for variant in SPARSITY_VARIANTS
    ]
    energy_model = EnergyModel()
    arrays = {
        model: profile_arrays(profile_model(get_workload(model), seed=0))
        for model in models
    }

    def run_fused():
        return [
            simulate_grid(arrays[model], configs, energy_model)
            for model in models
        ]

    def run_unfused():
        return [
            simulate_jobs(
                [arrays[model]] * len(configs),
                configs,
                energy_model,
                fuse=False,
            )
            for model in models
        ]

    def run_sessions():
        # The pre-fusion shard dispatch: one per-job call of the four
        # variant jobs per (model, preset) session.
        results = []
        for model in models:
            for start in range(0, len(configs), len(SPARSITY_VARIANTS)):
                chunk = configs[start : start + len(SPARSITY_VARIANTS)]
                results.append(
                    simulate_jobs(
                        [arrays[model]] * len(chunk),
                        chunk,
                        energy_model,
                        fuse=False,
                    )
                )
        return results

    # Correctness gate: all three strategies must agree bitwise.
    for model, fused, unfused in zip(models, run_fused(), run_unfused()):
        _assert_bitwise_equal(f"fused vs unfused ({model})", fused, unfused)

    timings = {
        "fused_s": _best_of(repeats, run_fused),
        "unfused_s": _best_of(repeats, run_unfused),
        "sessions_s": _best_of(repeats, run_sessions),
    }
    return {
        "benchmark": "grid",
        "experiment": "fig7",
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "presets": list(presets),
        "models": list(models),
        "configs": len(configs),
        "repeats": repeats,
        **timings,
        "speedup_vs_sessions": timings["sessions_s"] / timings["fused_s"],
        "speedup_vs_unfused": timings["unfused_s"] / timings["fused_s"],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--presets", nargs="+", default=None, metavar="PRESET",
        help="hardware presets spanning the config grid (default: all)",
    )
    parser.add_argument(
        "--models", nargs="+", default=None, metavar="MODEL",
        help="workloads to evaluate (default: all five paper models)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repetitions per strategy (best-of is reported)",
    )
    parser.add_argument(
        "--output", default="BENCH_grid.json", metavar="PATH",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    presets: List[str] = args.presets or list_configs()
    models: List[str] = args.models or list_workloads()
    if args.repeats <= 0:
        parser.error("--repeats must be positive")

    report = run_benchmark(presets, models, args.repeats)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(
        f"{report['configs']} configs x {len(report['models'])} models "
        f"(best of {report['repeats']})"
    )
    for label, key in (
        ("per-config sessions", "sessions_s"),
        ("flat unfused batch", "unfused_s"),
        ("fused grid kernel", "fused_s"),
    ):
        print(f"  {label:<22}{report[key] * 1e3:>10.3f} ms")
    print(
        f"  speedup: {report['speedup_vs_sessions']:.2f}x vs sessions, "
        f"{report['speedup_vs_unfused']:.2f}x vs unfused"
    )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
