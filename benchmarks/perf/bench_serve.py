"""Micro-benchmark: the ``repro.serve`` daemon vs cold-process dispatch.

Measures the two things the serving layer exists for:

* **warm-session latency** -- one ``fig7`` request against a warm
  :class:`~repro.serve.service.ServiceRuntime` (hot cache disabled, so the
  simulator really runs) vs the wall time of a cold ``repro run`` child
  process, which pays interpreter startup, registry construction and
  workload profiling on every invocation.  The acceptance bar for this
  repository is warm beating cold by >= 5x;
* **throughput under concurrency** -- requests/second and the coalesce
  ratio (requests merged per simulator dispatch) at concurrency 1 / 8 / 64,
  with client threads submitting distinct per-model requests round-robin
  so the hot cache cannot short-circuit the batcher.

Coalescing gains scale with how many requests pile up while a batch
executes, which depends on core count and timer resolution; ``cpu_count``
is recorded so snapshots from different machines stay comparable.  Results
are written to ``BENCH_serve.json`` so the repository accumulates a perf
trajectory across PRs.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py \
        [--model alexnet] [--concurrency 1 8 64] [--requests 64] \
        [--repeats 3] [--output BENCH_serve.json]

See ``docs/serving.md`` for the serving architecture this exercises.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import __version__
from repro.serve import RunRequest, ServeConfig, ServiceRuntime
from repro.workloads import list_workloads

#: Concurrency levels exercised by default.
CONCURRENCY_LEVELS = (1, 8, 64)


def _time_cold_process(model: str, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one cold ``repro run`` child process."""
    command = [
        sys.executable,
        "-m",
        "repro.api.cli",
        "run",
        "fig7",
        "--models",
        model,
        "--quiet",
    ]
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH")) if part
    )
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        subprocess.run(command, env=env, check=True, capture_output=True)
        best = min(best, time.perf_counter() - start)
    return best


def _time_warm_single(runtime: ServiceRuntime, model: str, repeats: int) -> float:
    """Best-of-``repeats`` warm single-request latency (hot cache disabled)."""
    request = RunRequest("fig7", models=(model,))
    best = float("inf")
    for _ in range(repeats):
        outcome = runtime.run(request)
        best = min(best, outcome.latency_s)
    return best


def _throughput(
    runtime: ServiceRuntime, concurrency: int, total_requests: int
) -> Dict[str, float]:
    """Requests/second and coalesce ratio at one concurrency level.

    ``concurrency`` client threads issue ``total_requests`` requests
    overall, cycling through every registered workload and all four
    mergeable model-parameterised experiments so consecutive requests are
    distinct (no hot cache to hide behind -- it is disabled) yet still
    coalescible when they land in the same batch window.
    """
    models = list_workloads()
    requests = [
        RunRequest("fig7", models=(models[index % len(models)],))
        for index in range(total_requests)
    ]
    before = runtime.metrics()["counters"]
    errors: List[Exception] = []
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(requests):
                    return
                cursor["next"] = index + 1
            try:
                runtime.run(requests[index])
            except Exception as error:  # pragma: no cover - report and fail
                errors.append(error)
                return

    threads = [
        threading.Thread(target=worker, name=f"bench-client-{index}")
        for index in range(concurrency)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise AssertionError(f"serve request failed under load: {errors[0]}")
    after = runtime.metrics()["counters"]
    batches = after.get("batches_total", 0) - before.get("batches_total", 0)
    batched = after.get("batched_requests_total", 0) - before.get(
        "batched_requests_total", 0
    )
    return {
        "requests": total_requests,
        "elapsed_s": elapsed,
        "requests_per_s": total_requests / elapsed,
        "coalesce_ratio": (batched / batches) if batches else 0.0,
    }


def run_benchmark(
    model: str,
    concurrency_levels: Sequence[int],
    total_requests: int,
    repeats: int,
) -> Dict[str, object]:
    """Benchmark the daemon and return the report payload."""
    cold_s = _time_cold_process(model, repeats)
    config = ServeConfig(batch_window_s=0.005, hot_cache_size=0)
    with ServiceRuntime(config) as runtime:
        runtime.run(RunRequest("fig7", models=(model,)))  # warm the session
        warm_s = _time_warm_single(runtime, model, repeats)
        throughput = {
            str(level): _throughput(runtime, level, total_requests)
            for level in concurrency_levels
        }
    return {
        "benchmark": "serve",
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "model": model,
        "repeats": repeats,
        "cold_process_s": cold_s,
        "warm_single_s": warm_s,
        "warm_speedup_vs_cold": cold_s / warm_s,
        "throughput": throughput,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--model", default="alexnet", metavar="MODEL",
        help="workload of the single-request latency probe",
    )
    parser.add_argument(
        "--concurrency", nargs="+", type=int,
        default=list(CONCURRENCY_LEVELS), metavar="N",
        help="client-thread counts to drive the throughput probe with",
    )
    parser.add_argument(
        "--requests", type=int, default=64, metavar="N",
        help="total requests issued at each concurrency level",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions for the latency probes (best-of reported)",
    )
    parser.add_argument(
        "--output", default="BENCH_serve.json", metavar="PATH",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.repeats <= 0:
        parser.error("--repeats must be positive")
    if args.requests <= 0:
        parser.error("--requests must be positive")
    if any(level <= 0 for level in args.concurrency):
        parser.error("--concurrency levels must be positive")

    report = run_benchmark(
        args.model, args.concurrency, args.requests, args.repeats
    )
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"cold process : {report['cold_process_s'] * 1e3:>10.1f} ms")
    print(f"warm request : {report['warm_single_s'] * 1e3:>10.1f} ms")
    print(
        f"warm vs cold : {report['warm_speedup_vs_cold']:>10.1f}x "
        f"on {report['cpu_count']} CPU(s)"
    )
    print(f"{'clients':<10}{'req/s':>10}{'coalesce':>10}")
    for level, entry in report["throughput"].items():
        print(
            f"{level:<10}{entry['requests_per_s']:>10.1f}"
            f"{entry['coalesce_ratio']:>10.2f}"
        )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
