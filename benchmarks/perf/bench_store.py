"""Micro-benchmark: the packed sweep result store's warm path.

Times a **warm-cache** re-sweep of a large single-experiment grid (the
model-free table4 point swept across many seeds) on both cache backends
-- ``files`` (one JSON file per point) and ``packed`` (one append-only
data file + offset index, restored through a single batched read and ONE
fsynced journal write) -- plus the batched vs per-point cache-key paths
and the files-to-packed migration.  Every timing is gated on exact result
equality with a reference sweep; results are written to
``BENCH_store.json`` so the repository accumulates a perf trajectory
across PRs.

All phases are single-process and I/O-bound, so the numbers are largely
core-count independent; ``cpu_count`` is still recorded so snapshots from
different machines stay comparable.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_store.py \
        [--points 2048] [--repeats 3] [--output BENCH_store.json]

See ``docs/performance.md`` ("Result store") for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import __version__
from repro.api import run_sweep
from repro.api.sweep import build_grid, cache_keys_for_grid
from repro.store import migrate_files_to_packed

#: The grid both backends are timed on: one model-free experiment fanned
#: out across seeds, so ``--points`` directly sets the grid size.
EXPERIMENT = "table4"

#: Acceptance floors the report records (see ISSUE/PR 9): warm re-sweeps
#: on the packed backend must beat the per-file cache by at least 5x, and
#: batched grid keys must beat per-point keys by at least 3x.
WARM_SPEEDUP_FLOOR = 5.0
KEYS_SPEEDUP_FLOOR = 3.0


def _grid_kwargs(points: int) -> Dict[str, object]:
    return {"experiments": (EXPERIMENT,), "seeds": range(points)}


def _time_keys(points: int, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` batched vs per-point cache-key wall times.

    Each repeat builds a fresh grid: ``cache_keys_for_grid`` memoizes the
    key on every point it touches, so reusing a grid would time a pure
    dictionary lookup instead of the key computation.
    """
    batched = per_point = float("inf")
    for _ in range(repeats):
        grid = build_grid(**_grid_kwargs(points))
        start = time.perf_counter()
        batched_keys = cache_keys_for_grid(grid)
        batched = min(batched, time.perf_counter() - start)

        grid = build_grid(**_grid_kwargs(points))
        start = time.perf_counter()
        point_keys = [point.cache_key() for point in grid]
        per_point = min(per_point, time.perf_counter() - start)
        if list(batched_keys) != point_keys:
            raise AssertionError(
                "batched cache keys diverge from per-point keys; "
                "run tests/engines/test_cache_keys.py for details"
            )
    return {"batched_s": batched, "per_point_s": per_point}


def run_benchmark(points: int, repeats: int) -> Dict[str, object]:
    """Benchmark both cache backends and return the report payload."""
    kwargs = _grid_kwargs(points)
    report: Dict[str, object] = {
        "benchmark": "store",
        "experiment": EXPERIMENT,
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "points": points,
        "repeats": repeats,
    }
    with tempfile.TemporaryDirectory(prefix="bench-store-") as scratch:
        root = Path(scratch)
        files_cache = root / "files"
        packed_cache = root / "packed"

        start = time.perf_counter()
        reference = run_sweep(
            **kwargs,
            cache_dir=files_cache,
            executor="serial",
            journal=root / "cold.jsonl",
        )
        report["cold_files_s"] = time.perf_counter() - start
        expected = [result.to_dict() for result in reference.results]

        # Migration: the packed cache starts life as a copy of the
        # per-file cache and is converted in place.
        shutil.copytree(files_cache, packed_cache)
        start = time.perf_counter()
        migrated = migrate_files_to_packed(packed_cache)
        report["migrate_s"] = time.perf_counter() - start
        if migrated != points:
            raise AssertionError(
                f"migration ingested {migrated} of {points} cache entries"
            )

        def _time_warm(cache_dir: Path, backend: str, tag: str) -> float:
            best = float("inf")
            for repeat in range(repeats):
                journal = root / f"warm-{tag}-{repeat}.jsonl"
                start = time.perf_counter()
                sweep = run_sweep(
                    **kwargs,
                    cache_dir=cache_dir,
                    cache_backend=backend,
                    executor="serial",
                    journal=journal,
                )
                best = min(best, time.perf_counter() - start)
                # Correctness gate: a warm run must reproduce the cold
                # results exactly and never recompute a point.
                got = [result.to_dict() for result in sweep.results]
                if got != expected or sweep.cache_hits != points:
                    raise AssertionError(
                        f"warm {backend!r} re-sweep diverges from the cold "
                        "reference; run tests/store/test_packed_store.py "
                        "for details"
                    )
            return best

        report["warm_files_s"] = _time_warm(files_cache, "files", "files")
        report["warm_packed_s"] = _time_warm(packed_cache, "packed", "packed")

    report["keys"] = _time_keys(points, repeats)
    report["warm_packed_speedup"] = (
        report["warm_files_s"] / report["warm_packed_s"]
    )
    report["keys_batched_speedup"] = (
        report["keys"]["per_point_s"] / report["keys"]["batched_s"]
    )
    report["meets_warm_floor"] = (
        report["warm_packed_speedup"] >= WARM_SPEEDUP_FLOOR
    )
    report["meets_keys_floor"] = (
        report["keys_batched_speedup"] >= KEYS_SPEEDUP_FLOOR
    )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points", type=int, default=2048,
        help="grid size (seeds of the table4 experiment; default 2048)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per phase (best-of is reported)",
    )
    parser.add_argument(
        "--output", default="BENCH_store.json", metavar="PATH",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.points <= 0:
        parser.error("--points must be positive")
    if args.repeats <= 0:
        parser.error("--repeats must be positive")

    report = run_benchmark(args.points, args.repeats)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    points = report["points"]
    print(f"{'phase':<24}{'time (ms)':>12}")
    print(f"{'cold files':<24}{report['cold_files_s'] * 1e3:>12.1f}")
    print(f"{'migrate':<24}{report['migrate_s'] * 1e3:>12.1f}")
    print(f"{'warm files':<24}{report['warm_files_s'] * 1e3:>12.1f}")
    print(f"{'warm packed':<24}{report['warm_packed_s'] * 1e3:>12.1f}")
    print(f"{'keys per-point':<24}{report['keys']['per_point_s'] * 1e3:>12.1f}")
    print(f"{'keys batched':<24}{report['keys']['batched_s'] * 1e3:>12.1f}")
    print(
        f"warm packed vs files: {report['warm_packed_speedup']:.2f}x "
        f"on {points} points (floor {WARM_SPEEDUP_FLOOR}x: "
        f"{'met' if report['meets_warm_floor'] else 'MISSED'})"
    )
    print(
        f"batched vs per-point keys: {report['keys_batched_speedup']:.2f}x "
        f"(floor {KEYS_SPEEDUP_FLOOR}x: "
        f"{'met' if report['meets_keys_floor'] else 'MISSED'})"
    )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
