"""Micro-benchmark: the sharded sweep service's executor backends.

Times a **cold-cache** fig7 sweep (the paper's speedup/energy grid, one
point per model) under every executor backend -- ``serial``, ``thread``
(GIL-bound for the CPU-heavy profiling + mapping work) and ``process``
(the multi-core fast path) -- each repeat against a fresh cache directory,
plus a warm-cache re-run, and validates journal-based resume before
reporting.  Results are written to ``BENCH_sweep.json`` so the repository
accumulates a perf trajectory across PRs.

The process backend's speedup over threads scales with the core count;
``cpu_count`` is recorded in the report so snapshots from different
machines stay comparable (on a single-core runner the backends are
expected to tie, modulo pool overhead).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_sweep.py \
        [--models alexnet ...] [--executors serial thread process] \
        [--repeats 3] [--output BENCH_sweep.json]

See ``docs/performance.md`` ("Sweep service") for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import __version__
from repro.api import run_sweep
from repro.api.sweep import EXECUTORS
from repro.workloads import list_workloads

#: The grid every executor is timed on.
EXPERIMENTS = ("fig7",)


def _time_cold(executor: str, models: Sequence[str], repeats: int) -> float:
    """Best-of-``repeats`` cold-cache sweep wall time, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="bench-sweep-") as cache:
            start = time.perf_counter()
            run_sweep(
                experiments=EXPERIMENTS,
                models=models,
                cache_dir=cache,
                executor=executor,
            )
            best = min(best, time.perf_counter() - start)
    return best


def _time_warm(models: Sequence[str], repeats: int) -> float:
    """Best-of-``repeats`` warm-cache (pure deserialisation) wall time."""
    best = float("inf")
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as cache:
        run_sweep(experiments=EXPERIMENTS, models=models, cache_dir=cache)
        for _ in range(repeats):
            start = time.perf_counter()
            run_sweep(experiments=EXPERIMENTS, models=models, cache_dir=cache)
            best = min(best, time.perf_counter() - start)
    return best


def _check_resume(models: Sequence[str]) -> bool:
    """Journal a sweep, truncate it mid-grid, resume; require byte-identity."""
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as scratch:
        journal = Path(scratch) / "sweep.jsonl"
        full = run_sweep(experiments=EXPERIMENTS, models=models, journal=journal)
        lines = journal.read_text(encoding="utf-8").splitlines()
        keep = 1 + max(1, (len(lines) - 1) // 2)  # header + half the points
        journal.write_text("\n".join(lines[:keep]) + "\n", encoding="utf-8")
        resumed = run_sweep(
            experiments=EXPERIMENTS, models=models, journal=journal, resume=True
        )
        return resumed.to_json() == full.to_json()


def run_benchmark(
    models: Sequence[str],
    executors: Sequence[str],
    repeats: int,
) -> Dict[str, object]:
    """Benchmark every executor and return the report payload."""
    # Correctness gate before timing: all backends must agree exactly.
    reference = None
    for executor in executors:
        sweep = run_sweep(
            experiments=EXPERIMENTS, models=models, executor=executor
        )
        if reference is None:
            reference = sweep.results
        elif sweep.results != reference:
            raise AssertionError(
                f"executor {executor!r} diverges from {executors[0]!r}; "
                "run tests/api/test_sweep_service.py for details"
            )
    report: Dict[str, object] = {
        "benchmark": "sweep",
        "experiments": list(EXPERIMENTS),
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "models": list(models),
        "repeats": repeats,
        "executors": {
            executor: {"cold_s": _time_cold(executor, models, repeats)}
            for executor in executors
        },
        "warm_thread_s": _time_warm(models, repeats),
        "resume_byte_identical": _check_resume(models),
    }
    timings = report["executors"]
    if "thread" in timings and "process" in timings:
        report["process_speedup_vs_thread"] = (
            timings["thread"]["cold_s"] / timings["process"]["cold_s"]
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--models", nargs="+", default=None, metavar="MODEL",
        help="workloads of the fig7 grid (default: all five paper models)",
    )
    parser.add_argument(
        "--executors", nargs="+", default=list(EXECUTORS), metavar="EXECUTOR",
        choices=EXECUTORS,
        help="executor backends to time (default: all three)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per backend (best-of is reported)",
    )
    parser.add_argument(
        "--output", default="BENCH_sweep.json", metavar="PATH",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    models: List[str] = args.models or list_workloads()
    if args.repeats <= 0:
        parser.error("--repeats must be positive")

    report = run_benchmark(models, args.executors, args.repeats)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"{'executor':<12}{'cold (ms)':>12}")
    for executor, entry in report["executors"].items():
        print(f"{executor:<12}{entry['cold_s'] * 1e3:>12.1f}")
    print(f"warm thread: {report['warm_thread_s'] * 1e3:.1f} ms")
    if "process_speedup_vs_thread" in report:
        print(
            f"process vs thread: {report['process_speedup_vs_thread']:.2f}x "
            f"on {report['cpu_count']} CPU(s)"
        )
    print(f"resume byte-identical: {report['resume_byte_identical']}")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
