"""Smoke test of the perf harness: smallest preset, one model, 1 repeat.

Keeps the micro-benchmark runnable end-to-end inside the tier-1 suite (and
the CI benchmark job) without asserting absolute timings -- CI machines are
too noisy for that; the committed ``BENCH_cycle_model.json`` snapshot is
where the real perf trajectory lives.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "bench_cycle_model", Path(__file__).parent / "bench_cycle_model.py"
)
bench_cycle_model = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_cycle_model)


def test_bench_emits_report(tmp_path):
    output = tmp_path / "BENCH_cycle_model.json"
    code = bench_cycle_model.main(
        [
            "--presets", "paper-28nm",
            "--models", "alexnet",
            "--repeats", "1",
            "--output", str(output),
        ]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "cycle_model"
    assert report["experiment"] == "fig7"
    assert report["models"] == ["alexnet"]
    entry = report["presets"]["paper-28nm"]
    assert entry["scalar_s"] > 0 and entry["vectorized_s"] > 0
    assert entry["speedup"] == entry["scalar_s"] / entry["vectorized_s"]


def test_bench_rejects_bad_repeats(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):
        bench_cycle_model.main(["--repeats", "0"])
    capsys.readouterr()
