"""Smoke tests of the perf harnesses: smallest preset, one model, 1 repeat.

Keeps the micro-benchmarks runnable end-to-end inside the tier-1 suite (and
the CI benchmark job) without asserting absolute timings -- CI machines are
too noisy for that; the committed ``BENCH_cycle_model.json`` /
``BENCH_compile.json`` snapshots are where the real perf trajectory lives.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, Path(__file__).parent / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_cycle_model = _load("bench_cycle_model")
bench_compile = _load("bench_compile")
bench_sweep = _load("bench_sweep")
bench_grid = _load("bench_grid")


def test_bench_emits_report(tmp_path):
    output = tmp_path / "BENCH_cycle_model.json"
    code = bench_cycle_model.main(
        [
            "--presets", "paper-28nm",
            "--models", "alexnet",
            "--repeats", "1",
            "--output", str(output),
        ]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "cycle_model"
    assert report["experiment"] == "fig7"
    assert report["models"] == ["alexnet"]
    entry = report["presets"]["paper-28nm"]
    assert entry["scalar_s"] > 0 and entry["vectorized_s"] > 0
    assert entry["speedup"] == entry["scalar_s"] / entry["vectorized_s"]


def test_bench_rejects_bad_repeats(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):
        bench_cycle_model.main(["--repeats", "0"])
    capsys.readouterr()


def test_bench_compile_emits_report(tmp_path):
    output = tmp_path / "BENCH_compile.json"
    code = bench_compile.main(
        [
            "--preset", "paper-28nm",
            "--models", "alexnet",
            "--variant", "hybrid",
            "--repeats", "1",
            "--output", str(output),
        ]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "compile"
    assert report["preset"] == "paper-28nm"
    entry = report["models"]["alexnet"]
    assert entry["instructions"] > 0 and entry["segments"] > 0
    assert entry["compile_s"] > 0 and entry["trace_s"] > 0
    assert entry["max_relative_error"] <= 1e-4


def test_bench_compile_graph_workload_row(tmp_path):
    """The bench covers graph workloads: a transformer row with joins."""
    output = tmp_path / "BENCH_compile.json"
    code = bench_compile.main(
        [
            "--preset", "paper-28nm",
            "--models", "vit_tiny",
            "--variant", "hybrid",
            "--repeats", "1",
            "--output", str(output),
        ]
    )
    assert code == 0
    entry = json.loads(output.read_text())["models"]["vit_tiny"]
    assert entry["graph_nodes"] > entry["graph_joins"] > 0
    assert entry["residual_feature_bytes"] > 0
    assert entry["max_relative_error"] <= 1e-4


def test_bench_compile_rejects_bad_repeats(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):
        bench_compile.main(["--repeats", "0"])
    capsys.readouterr()


def test_bench_grid_emits_report(tmp_path):
    output = tmp_path / "BENCH_grid.json"
    code = bench_grid.main(
        [
            "--presets", "paper-28nm", "dense-baseline",
            "--models", "alexnet",
            "--repeats", "1",
            "--output", str(output),
        ]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "grid"
    assert report["models"] == ["alexnet"]
    assert report["configs"] == 8  # 2 presets x 4 variants
    assert report["cpu_count"] >= 1
    assert report["fused_s"] > 0 and report["sessions_s"] > 0
    assert (
        report["speedup_vs_sessions"]
        == report["sessions_s"] / report["fused_s"]
    )


def test_bench_sweep_emits_report(tmp_path):
    output = tmp_path / "BENCH_sweep.json"
    code = bench_sweep.main(
        [
            "--models", "alexnet",
            "--executors", "serial", "process",
            "--repeats", "1",
            "--output", str(output),
        ]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "sweep"
    assert report["models"] == ["alexnet"]
    assert report["cpu_count"] >= 1
    for executor in ("serial", "process"):
        assert report["executors"][executor]["cold_s"] > 0
    assert report["warm_thread_s"] > 0
    assert report["resume_byte_identical"] is True


def test_bench_sweep_rejects_bad_repeats(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):
        bench_sweep.main(["--repeats", "0"])
    capsys.readouterr()


bench_serve = _load("bench_serve")


def test_bench_serve_emits_report(tmp_path):
    output = tmp_path / "BENCH_serve.json"
    code = bench_serve.main(
        [
            "--model", "alexnet",
            "--concurrency", "1", "4",
            "--requests", "8",
            "--repeats", "1",
            "--output", str(output),
        ]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "serve"
    assert report["cold_process_s"] > 0 and report["warm_single_s"] > 0
    assert (
        report["warm_speedup_vs_cold"]
        == report["cold_process_s"] / report["warm_single_s"]
    )
    assert set(report["throughput"]) == {"1", "4"}
    for entry in report["throughput"].values():
        assert entry["requests"] == 8
        assert entry["requests_per_s"] > 0


bench_store = _load("bench_store")


def test_bench_store_emits_report(tmp_path):
    output = tmp_path / "BENCH_store.json"
    code = bench_store.main(
        ["--points", "24", "--repeats", "1", "--output", str(output)]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "store"
    assert report["experiment"] == "table4"
    assert report["points"] == 24
    assert report["cpu_count"] >= 1
    assert report["warm_files_s"] > 0 and report["warm_packed_s"] > 0
    assert report["keys"]["batched_s"] > 0
    assert report["warm_packed_speedup"] == (
        report["warm_files_s"] / report["warm_packed_s"]
    )
    assert report["keys_batched_speedup"] == (
        report["keys"]["per_point_s"] / report["keys"]["batched_s"]
    )
    # No timing floors here: 24 points on a shared CI box is noise.  The
    # committed BENCH_store.json carries the real 2048-point numbers.
    assert isinstance(report["meets_warm_floor"], bool)
    assert isinstance(report["meets_keys_floor"], bool)


def test_bench_store_rejects_bad_arguments(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):
        bench_store.main(["--repeats", "0"])
    with pytest.raises(SystemExit):
        bench_store.main(["--points", "0"])
    capsys.readouterr()


def test_bench_serve_rejects_bad_arguments(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):
        bench_serve.main(["--repeats", "0"])
    with pytest.raises(SystemExit):
        bench_serve.main(["--requests", "0"])
    with pytest.raises(SystemExit):
        bench_serve.main(["--concurrency", "0"])
    capsys.readouterr()


bench_dist = _load("bench_dist")


def test_bench_dist_emits_report(tmp_path):
    output = tmp_path / "BENCH_dist.json"
    code = bench_dist.main(
        [
            "--models", "alexnet", "mobilenetv2", "resnet18",
            "--shards", "3",
            "--workers", "1",
            "--repeats", "1",
            "--output", str(output),
        ]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "dist"
    assert report["cpu_count"] >= 1
    assert report["serial_s"] > 0
    assert report["broker_solo_s"] > 0
    assert report["broker_fleet_s"] > 0
    # Only reported after the gates pass, SIGKILL recovery included.
    assert report["byte_identical"] is True
    assert report["sigkill_recovery_byte_identical"] is True


def test_bench_dist_rejects_bad_arguments(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):
        bench_dist.main(["--repeats", "0"])
    with pytest.raises(SystemExit):
        bench_dist.main(["--workers", "0"])
    capsys.readouterr()
