"""Ablation: the φ_th ≤ 2 design choice and the macro-count scaling.

Not a paper table, but DESIGN.md calls these design choices out: capping the
FTA threshold at 2 trades accuracy headroom for parallelism, and the speedup
is expected to scale with the number of macros until the filter dimension is
exhausted.
"""

from conftest import print_section

from repro.arch.config import DBPIMConfig
from repro.core.fta import FTAConfig
from repro.sim import CycleModel
from repro.workloads import get_workload, profile_model


def _hybrid_speedup(config: DBPIMConfig, profile) -> float:
    model = CycleModel(config)
    runs = model.run_all_variants(profile)
    return model.speedup(runs["base"], runs["hybrid"])


def test_threshold_cap_ablation(run_once):
    workload = get_workload("resnet18")

    def sweep():
        results = {}
        for cap in (1, 2, 3):
            fta_config = FTAConfig(max_threshold=cap)
            profile = profile_model(workload, seed=0, fta_config=fta_config)
            results[cap] = {
                "speedup": _hybrid_speedup(DBPIMConfig(), profile),
                "mean_error": _mean_absolute_error(profile, fta_config),
            }
        return results

    results = run_once(sweep)
    body = "\n".join(
        f"max φ_th = {cap}: hybrid speedup {values['speedup']:.2f}x, "
        f"mean |weight error| {values['mean_error']:.2f} LSB"
        for cap, values in results.items()
    )
    print_section("Ablation - FTA threshold cap (ResNet-18)", body)

    # A tighter cap gives more parallelism (higher speedup) but a larger
    # approximation error; the paper's choice of 2 sits between the extremes.
    assert results[1]["speedup"] >= results[2]["speedup"] >= results[3]["speedup"]
    assert results[1]["mean_error"] >= results[2]["mean_error"] >= results[3]["mean_error"]


def _mean_absolute_error(profile, fta_config) -> float:
    """Average FTA perturbation of the profiled layers, in integer LSBs."""
    import numpy as np

    from repro.core.fta import approximate_layer
    from repro.core.quantization import quantize_weights
    from repro.workloads.profiles import synthesize_layer_weights

    errors = []
    for layer_profile in profile.layers[:4]:
        float_weights = synthesize_layer_weights(
            layer_profile.layer, profile.workload.redundancy, seed=0
        )
        int_weights, _ = quantize_weights(float_weights)
        result = approximate_layer(int_weights, fta_config)
        errors.append(float(np.abs(result.approximated - int_weights).mean()))
    return sum(errors) / len(errors)


def test_macro_scaling(run_once):
    workload = get_workload("vgg19")
    profile = profile_model(workload, seed=0)

    def sweep():
        return {
            macros: _hybrid_speedup(DBPIMConfig(num_macros=macros), profile)
            for macros in (2, 4, 8)
        }

    speedups = run_once(sweep)
    body = "\n".join(
        f"{macros} macros: hybrid speedup {value:.2f}x"
        for macros, value in speedups.items()
    )
    print_section("Ablation - macro count scaling (VGG-19)", body)
    # Relative speedup over the *matching* dense baseline stays in a stable
    # band -- both designs scale with macro count.
    values = list(speedups.values())
    assert max(values) / min(values) < 1.5
    for value in values:
        assert value > 3.0
