"""Fig. 2(a): zero-bit ratio of weights (binary vs CSD vs FTA).

Paper reference: zero-bit ratios of roughly 65%-80% across models, with CSD
adding ~5 percentage points over plain binary and the FTA pattern ("Ours")
adding a further ~5 points; compact models sit at the low end.
"""

from conftest import print_section

from repro.eval.fig2_sparsity import format_weight_sparsity, weight_sparsity_table

PAPER_REFERENCE = """Paper (approximate, read off Fig. 2(a)):
  binary zero-bit ratio ~65-80%, CSD ~ +5pp, Ours ~ +5pp over CSD
  compact models (MobileNetV2 / EfficientNetB0) ~65% binary"""


def test_fig2a_weight_sparsity(run_once):
    rows = run_once(weight_sparsity_table)
    print_section("Fig. 2(a) - zero-bit ratio in weights", format_weight_sparsity(rows))
    print(PAPER_REFERENCE)

    by_model = {row.model: row for row in rows}
    assert set(by_model) == {
        "alexnet",
        "vgg19",
        "resnet18",
        "mobilenetv2",
        "efficientnetb0",
    }
    for row in rows:
        # Substantial bit-level sparsity exists in every model.  (The plain
        # binary ratio is measured on two's complement codes, where small
        # negative weights carry many set bits, so it sits near 50% -- lower
        # than the paper's magnitude-style reading of Fig. 2(a).)
        assert 0.45 < row.binary_zero_ratio < 0.95
        # CSD never loses sparsity and FTA only adds to it.
        assert row.csd_zero_ratio >= row.binary_zero_ratio - 0.02
        assert row.fta_zero_ratio >= row.csd_zero_ratio - 1e-9
    # Redundant standard models are at least as bit-sparse as compact ones.
    assert (
        by_model["alexnet"].fta_zero_ratio
        >= by_model["efficientnetb0"].fta_zero_ratio - 0.02
    )
