"""Fig. 2(b): ratio of all-zero bit columns in grouped input features.

Paper reference: when input features are grouped, a substantial fraction of
bit columns is zero across the whole group (the paper quotes up to ~80% for
groups of 8 and ~70% for groups of 16); larger groups always see fewer
skippable columns than smaller groups.
"""

from conftest import print_section

from repro.eval.fig2_sparsity import format_input_sparsity, input_sparsity_table

PAPER_REFERENCE = """Paper (approximate, read off Fig. 2(b)):
  group of 1 > group of 8 > group of 16; non-trivial skippable columns
  remain even at a group size of 16"""


def test_fig2b_input_sparsity(run_once):
    rows = run_once(input_sparsity_table)
    print_section(
        "Fig. 2(b) - all-zero bit columns in input feature groups",
        format_input_sparsity(rows),
    )
    print(PAPER_REFERENCE)

    assert len(rows) == 5
    for row in rows:
        ratios = row.zero_column_ratio
        # Monotone in the group size: a column of a larger group is zero
        # only if every smaller sub-group's column is zero.
        assert ratios[1] >= ratios[8] >= ratios[16]
        # The IPU still has something to skip at the hardware group size.
        assert ratios[16] > 0.05
        # And per-bit sparsity of activations is high.
        assert ratios[1] > 0.5
