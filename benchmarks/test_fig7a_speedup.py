"""Fig. 7(a/b): speedup over the dense digital PIM baseline.

Paper reference: weight sparsity alone gives ~5.20x (AlexNet) and ~4.46x
(VGG19); adding input sparsity raises them to ~7.69x and ~6.10x; compact
models still reach ~3.90x (MobileNetV2) and ~3.55x (EfficientNetB0).
"""

from conftest import print_section

from repro.eval.fig7_speedup_energy import format_table, speedup_energy_table

PAPER_REFERENCE = """Paper: AlexNet 5.20x (weight) -> 7.69x (hybrid); VGG19 4.46x -> 6.10x;
MobileNetV2 ~3.90x, EfficientNetB0 ~3.55x (hybrid)"""


def test_fig7a_speedup(run_once):
    rows = run_once(speedup_energy_table)
    print_section("Fig. 7 - speedup over the dense PIM baseline", format_table(rows))
    print(PAPER_REFERENCE)

    by_model = {row.model: row for row in rows}
    assert len(rows) == 5
    for row in rows:
        # Ordering within a model: hybrid > weight-only > 1x and
        # hybrid > input-only > 1x.
        assert row.speedup["hybrid"] > row.speedup["weight"] > 1.0
        assert row.speedup["hybrid"] > row.speedup["input"] > 1.0
    # Cross-model ordering: redundant standard models accelerate more than
    # compact models, AlexNet the most.
    assert by_model["alexnet"].speedup["hybrid"] == max(
        row.speedup["hybrid"] for row in rows
    )
    assert by_model["alexnet"].speedup["hybrid"] > by_model["vgg19"].speedup["hybrid"]
    assert by_model["vgg19"].speedup["hybrid"] > by_model["efficientnetb0"].speedup["hybrid"]
    # Rough magnitudes: AlexNet in the 6-12x range, compact models in 2-6x.
    assert 6.0 < by_model["alexnet"].speedup["hybrid"] < 12.0
    assert 2.0 < by_model["mobilenetv2"].speedup["hybrid"] < 6.0
    assert 2.0 < by_model["efficientnetb0"].speedup["hybrid"] < 6.0
    # Weight-only speedups bounded by the architectural maximum of 8x.
    for row in rows:
        assert row.speedup["weight"] <= 8.0 + 1e-6
