"""Fig. 7(a): energy saving over the dense digital PIM baseline.

Paper reference: energy savings of 63.49%-83.43% (hybrid) and 60.88%-74.47%
(weight only), AlexNet highest, EfficientNetB0 lowest.
"""

from conftest import print_section

from repro.eval.fig7_speedup_energy import format_table, speedup_energy_table

PAPER_REFERENCE = """Paper (hybrid): AlexNet 83.43%, VGG19 79.25%, ResNet18 76.96%,
MobileNetV2 65.54%, EfficientNetB0 63.49%;
(weight only): 74.47% / 70.67% / 65.36% / 63.35% / 60.88%"""


def test_fig7b_energy_saving(run_once):
    rows = run_once(speedup_energy_table)
    print_section(
        "Fig. 7 - energy saving over the dense PIM baseline", format_table(rows)
    )
    print(PAPER_REFERENCE)

    by_model = {row.model: row for row in rows}
    for row in rows:
        # Hybrid saves the most, then weight-only, then input-only.
        assert (
            row.energy_saving["hybrid"]
            > row.energy_saving["weight"]
            > row.energy_saving["input"]
            > 0.0
        )
        # Savings land in the paper's broad band.
        assert 0.5 < row.energy_saving["hybrid"] < 0.95
        assert 0.4 < row.energy_saving["weight"] < 0.9
    # AlexNet saves (essentially) the most energy; the compact models the
    # least.  A small tolerance absorbs the noise of the synthetic profiles.
    assert by_model["alexnet"].energy_saving["hybrid"] >= max(
        row.energy_saving["hybrid"] for row in rows
    ) - 0.02
    assert (
        by_model["efficientnetb0"].energy_saving["hybrid"]
        <= by_model["vgg19"].energy_saving["hybrid"]
    )
