"""Table 1: sparsity-exploitation comparison among SRAM-PIM designs.

Paper reference: DB-PIM is the only design that removes ineffectual MACs for
both zero weight bits and zero input bits, digitally and for unstructured
sparsity.
"""

from conftest import print_section

from repro.eval.table1_related import format_table, related_work_table


def test_table1_related_work(run_once):
    rows = run_once(related_work_table)
    print_section("Table 1 - sparsity exploitation comparison", format_table(rows))

    ours = rows[-1]
    priors = rows[:-1]
    assert ours.design.startswith("DB-PIM")
    assert ours.sparsity_type == "bit"
    assert ours.weight_or_input == "W+I"
    assert ours.digital and ours.unstructured
    # No prior work covers weight AND input bit sparsity simultaneously.
    assert all(prior.weight_or_input != "W+I" for prior in priors)
    assert len(rows) == 6
