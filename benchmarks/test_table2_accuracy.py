"""Table 2: Top-1 accuracy of plain INT8 models vs FTA-approximated models.

Paper reference (CIFAR-100, 8b/8b): accuracy drops of 0.16%-0.98%, i.e. the
FTA approximation costs well under one accuracy point on every network.

This reproduction trains mini versions of the five topologies on the
synthetic dataset (CIFAR-100 checkpoints are unavailable offline -- see
DESIGN.md); the check is that the FTA model stays close to its own INT8
baseline on every topology, which is the property Table 2 demonstrates.
"""

from conftest import print_section

from repro.eval.table2_accuracy import accuracy_table, format_table

PAPER_REFERENCE = """Paper (CIFAR-100): AlexNet -0.98%, VGG19 -0.64%, ResNet18 -0.56%,
MobileNetV2 -0.16%, EfficientNetB0 -0.52% (all drops < 1%)"""


def test_table2_accuracy(run_once):
    rows = run_once(accuracy_table, epochs=6, qat_epochs=1, seed=0)
    print_section("Table 2 - Top-1 accuracy, INT8 vs FTA", format_table(rows))
    print(PAPER_REFERENCE)

    assert len(rows) == 5
    for row in rows:
        # The trained baseline must be meaningfully above chance (12.5% for
        # the 8-class synthetic task) for the comparison to say anything.
        assert row.int8_accuracy > 0.4
        # The FTA approximation must not collapse accuracy.  The paper's
        # full-size models lose <1%; the tiny synthetic models are noisier,
        # so the bench allows a looser (but still small) margin.
        assert row.accuracy_drop < 0.15
    mean_drop = sum(row.accuracy_drop for row in rows) / len(rows)
    assert mean_drop < 0.08
