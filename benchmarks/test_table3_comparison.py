"""Table 3: detailed comparison with prior SRAM-PIM accelerators.

Paper reference: DB-PIM reports U_act of 91.95%-98.42% (vs <50% for prior
works), the highest peak throughput per macro (77.5 GOPS, up to 3.14x the
best prior), 18.14-45.20 TOPS/W system energy efficiency and the highest
energy efficiency per unit area (39.30 TOPS/W/mm^2) with a 1.15 mm^2 die.
"""

from conftest import print_section

from repro.eval.table3_comparison import comparison_table, format_table

PAPER_REFERENCE = """Paper (DB-PIM column): area 1.15 mm2, SRAM 272 KB, PIM 8 KB, 4 macros,
U_act 91.95-98.42%, 77.5 GOPS/macro, 18.14-45.20 TOPS/W, 39.30 TOPS/W/mm2"""


def test_table3_comparison(run_once):
    columns = run_once(comparison_table)
    print_section("Table 3 - comparison with prior works", format_table(columns))
    print(PAPER_REFERENCE)

    ours = columns[-1]
    priors = columns[:-1]
    assert ours.design.startswith("DB-PIM")
    # Utilisation: well above the <50% of prior bit-serial digital PIMs,
    # measured on all five networks.
    assert len(ours.actual_utilization) == 5
    for value in ours.actual_utilization.values():
        assert value > 0.7
    prior_utilizations = [
        value for prior in priors for value in prior.actual_utilization.values()
    ]
    assert min(ours.actual_utilization.values()) > max(prior_utilizations)
    # Throughput per macro: at least comparable to the best prior work and
    # clearly above the ~25 GOPS/macro designs.
    assert ours.peak_gops_per_macro > 2 * 25.0
    # Energy efficiency in the paper's band and the best per unit area.
    assert 10.0 < ours.energy_efficiency_tops_w < 60.0
    assert ours.efficiency_per_area > max(p.efficiency_per_area for p in priors)
    # Smallest die of the comparison.
    assert ours.die_area_mm2 < min(p.die_area_mm2 for p in priors)
    # Same technology and macro count as the paper's configuration.
    assert ours.technology_nm == 28
    assert ours.num_macros == 4
    assert ours.pim_size_kb == 8
