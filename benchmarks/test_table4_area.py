"""Table 4: DB-PIM area breakdown.

Paper reference: total 1.15453 mm^2 -- PIM baseline 87.32%, meta RFs 6.78%,
extra post-processing units 5.42%, DFFs/routing 0.48%, input-sparsity
support ~0%.
"""

import pytest
from conftest import print_section

from repro.eval.table4_area import area_table, format_table

PAPER_REFERENCE = """Paper: baseline 1.00809 (87.32%), meta RFs 0.07829 (6.78%),
extra post-processing 0.06259 (5.42%), DFFs/routing 0.00550 (0.48%),
input sparsity 0.00007 (~0%), total 1.15453 mm2"""


def test_table4_area_breakdown(run_once):
    rows = run_once(area_table)
    print_section("Table 4 - DB-PIM area breakdown", format_table(rows))
    print(PAPER_REFERENCE)

    by_module = {row.module: row for row in rows}
    assert by_module["Total"].area_mm2 == pytest.approx(1.15453, abs=1e-3)
    # The dense baseline dominates; the co-design overhead is small and is
    # dominated by the meta RFs and the extra post-processing units.
    assert by_module["PIM Baseline"].breakdown == pytest.approx(0.8732, abs=0.01)
    assert by_module["Meta-RFs"].breakdown == pytest.approx(0.0678, abs=0.01)
    assert by_module["Extra Post-processing Units"].breakdown == pytest.approx(
        0.0542, abs=0.01
    )
    assert by_module["DFFs and Routing Resources"].breakdown < 0.01
    assert by_module["Input Sparsity Support"].breakdown < 0.001
    overhead = by_module["Total"].area_mm2 - by_module["PIM Baseline"].area_mm2
    assert overhead / by_module["Total"].area_mm2 < 0.15
