"""Accuracy study: FTA impact on trained networks (the Table 2 experiment).

Trains mini versions of the paper's evaluation networks on the synthetic
dataset, applies INT8 quantization and the FTA approximation, and prints the
accuracy of each variant -- the same pipeline the paper uses on CIFAR-100.
One ``Experiment`` session shares the dataset (and the single seed) across
all models.

Equivalent CLI:  repro run table2 --models alexnet resnet18 --epochs 8

Run with:  python examples/accuracy_study.py [model ...]
           (default: alexnet resnet18)
"""

import sys

from repro.api import Experiment
from repro.api.formatting import format_accuracy


def main() -> None:
    models = sys.argv[1:] or ["alexnet", "resnet18"]
    session = Experiment(seed=0)
    rows = []
    for name in models:
        print(f"training mini {name} ...")
        row = session.evaluate_accuracy(name, epochs=8, qat_epochs=2)
        print(
            f"  float {row.float_accuracy:.1%} | int8 {row.int8_accuracy:.1%} | "
            f"fta {row.fta_accuracy:.1%} | drop {row.accuracy_drop:+.2%}"
        )
        rows.append(row)
    print()
    print(format_accuracy(rows))


if __name__ == "__main__":
    main()
