"""Design-space exploration with the cycle model.

Goes beyond the paper's headline numbers and uses the performance model as a
what-if tool, the way an architect adopting DB-PIM would:

* sweep the number of PIM macros,
* sweep the FTA threshold cap (ablation of the φ_th <= 2 design choice),
* sweep the IPU group size,

reporting the hybrid speedup and energy saving over the dense baseline for a
chosen workload.  Each design point is one ``repro.api.Experiment`` built
with the validated config/FTA builder helpers.

Run with:  python examples/design_space_exploration.py [model]
           (default: resnet18)
"""

import sys

from repro.api import Experiment, build_dbpim_config, build_fta_config
from repro.workloads import get_workload


def report(tag: str, session: Experiment, model: str) -> None:
    runs = session.run_variants(model)
    base = runs["base"]
    print(
        f"  {tag:<28} speedup {session.speedup(base, runs['hybrid']):5.2f}x   "
        f"energy saving {session.energy_saving(base, runs['hybrid']):6.1%}   "
        f"U_act {runs['hybrid'].actual_utilization:6.1%}"
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "resnet18"
    workload = get_workload(name)
    print(f"workload: {name} ({workload.total_macs / 1e6:.1f} MMACs)")

    print("\nmacro count sweep (hybrid sparsity):")
    base = Experiment(seed=0)
    for num_macros in (2, 4, 8):
        # with_config shares the profile cache: the workload is profiled
        # once, not once per design point.
        session = base.with_config(build_dbpim_config(num_macros=num_macros))
        report(f"{num_macros} macros", session, name)

    print("\nFTA threshold cap sweep (ablation of the φ_th ≤ 2 choice):")
    for cap in (1, 2, 3):
        session = Experiment(fta_config=build_fta_config(max_threshold=cap), seed=0)
        report(f"max φ_th = {cap}", session, name)

    print("\nIPU group size sweep (input-bit skipping granularity):")
    for group in (8, 16, 32):
        session = Experiment(config=build_dbpim_config(input_group=group), seed=0)
        report(f"group of {group}", session, name)


if __name__ == "__main__":
    main()
