"""Design-space exploration with the cycle model.

Goes beyond the paper's headline numbers and uses the performance model as a
what-if tool, the way an architect adopting DB-PIM would:

* sweep the number of PIM macros,
* sweep the FTA threshold cap (ablation of the φ_th <= 2 design choice),
* sweep the IPU group size,

reporting the hybrid speedup and energy saving over the dense baseline for a
chosen workload.

Run with:  python examples/design_space_exploration.py [model]
           (default: resnet18)
"""

import sys
from dataclasses import replace

from repro.arch.config import DBPIMConfig, MacroConfig
from repro.core.fta import FTAConfig
from repro.sim import CycleModel
from repro.workloads import get_workload, profile_model


def report(tag: str, config: DBPIMConfig, profile) -> None:
    model = CycleModel(config)
    runs = model.run_all_variants(profile)
    base = runs["base"]
    print(
        f"  {tag:<28} speedup {model.speedup(base, runs['hybrid']):5.2f}x   "
        f"energy saving {model.energy_saving(base, runs['hybrid']):6.1%}   "
        f"U_act {runs['hybrid'].actual_utilization:6.1%}"
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "resnet18"
    workload = get_workload(name)
    print(f"workload: {name} ({workload.total_macs / 1e6:.1f} MMACs)")

    print("\nmacro count sweep (hybrid sparsity):")
    profile = profile_model(workload, seed=0)
    for num_macros in (2, 4, 8):
        report(f"{num_macros} macros", DBPIMConfig(num_macros=num_macros), profile)

    print("\nFTA threshold cap sweep (ablation of the φ_th ≤ 2 choice):")
    for cap in (1, 2, 3):
        profile_cap = profile_model(
            workload, seed=0, fta_config=FTAConfig(max_threshold=cap)
        )
        report(f"max φ_th = {cap}", DBPIMConfig(), profile_cap)

    print("\nIPU group size sweep (input-bit skipping granularity):")
    for group in (8, 16, 32):
        profile_group = profile_model(workload, seed=0, input_group=group)
        config = DBPIMConfig(macro=replace(MacroConfig(), input_group=group))
        report(f"group of {group}", config, profile_group)


if __name__ == "__main__":
    main()
