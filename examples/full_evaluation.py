"""Regenerate every table and figure of the paper's evaluation section.

Produces text renderings of Fig. 2(a), Fig. 2(b), Table 1, Fig. 7 (speedup
and energy saving), Table 3 and Table 4.  Table 2 (the accuracy study, which
needs training) is covered separately by ``examples/accuracy_study.py``.

Run with:  python examples/full_evaluation.py
"""

from repro.eval.fig2_sparsity import (
    format_input_sparsity,
    format_weight_sparsity,
    input_sparsity_table,
    weight_sparsity_table,
)
from repro.eval.fig7_speedup_energy import format_table as format_fig7
from repro.eval.fig7_speedup_energy import speedup_energy_table
from repro.eval.table1_related import format_table as format_table1
from repro.eval.table1_related import related_work_table
from repro.eval.table3_comparison import comparison_table
from repro.eval.table3_comparison import format_table as format_table3
from repro.eval.table4_area import area_table
from repro.eval.table4_area import format_table as format_table4


def main() -> None:
    print("=== Fig. 2(a): zero-bit ratio in weights ===")
    print(format_weight_sparsity(weight_sparsity_table()))
    print("\n=== Fig. 2(b): all-zero bit columns in input feature groups ===")
    print(format_input_sparsity(input_sparsity_table()))
    print("\n=== Table 1: sparsity exploitation comparison ===")
    print(format_table1(related_work_table()))
    print("\n=== Fig. 7: speedup and energy saving over the dense baseline ===")
    print(format_fig7(speedup_energy_table()))
    print("\n=== Table 3: comparison with prior works ===")
    print(format_table3(comparison_table()))
    print("\n=== Table 4: area breakdown ===")
    print(format_table4(area_table()))


if __name__ == "__main__":
    main()
