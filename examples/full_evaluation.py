"""Regenerate every table and figure of the paper's evaluation section.

Produces text renderings of Fig. 2(a), Fig. 2(b), Table 1, Fig. 7 (speedup
and energy saving), Table 3 and Table 4 through the ``repro.api`` façade.
Table 2 (the accuracy study, which needs training) is covered separately by
``examples/accuracy_study.py``.

Equivalent CLI:  repro run fig2a && repro run fig2b && ... && repro run table4
or, in parallel with caching:  repro sweep --max-workers 4 --cache-dir .cache

Run with:  python examples/full_evaluation.py
"""

from repro.api import Experiment, format_result, get_experiment_spec


def main() -> None:
    session = Experiment(config="paper-28nm", seed=0)
    for experiment in ("fig2a", "fig2b", "table1", "fig7", "table3", "table4"):
        spec = get_experiment_spec(experiment)
        result = session.run(experiment)
        print(f"=== {spec.reference}: {spec.title} ===")
        print(format_result(result))
        print()


if __name__ == "__main__":
    main()
