"""Quickstart: the DB-PIM pipeline on a single layer.

Walks the core flow of the paper end to end on one small fully connected
layer:

1. quantize float weights to INT8,
2. run the FTA algorithm (CSD encoding + per-filter thresholds),
3. compress the filters into dyadic-block values + sign/index metadata,
4. execute the layer bit-exactly on the functional DB-PIM macro model and on
   the dense baseline through the ``repro.api`` façade, and
5. compare cycles, utilisation and energy.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.api import Experiment
from repro.compiler import compress_layer
from repro.core import approximate_layer, quantize_weights


def main() -> None:
    rng = np.random.default_rng(0)

    # A small fully connected layer: 12 filters, 96 inputs.
    float_weights = rng.normal(0.0, 0.05, size=(12, 96))
    float_weights[rng.random(float_weights.shape) < 0.05] *= 8  # a few outliers
    inputs = rng.integers(0, 128, size=96)

    # 1. INT8 quantization (per output channel).
    int_weights, params = quantize_weights(float_weights)
    print(f"quantized weights to INT8, per-channel scales ~{params.scale.mean():.4f}")

    # 2. FTA: fixed per-filter thresholds on the CSD representation.
    fta = approximate_layer(int_weights)
    print(f"FTA thresholds per filter: {fta.thresholds.tolist()}")
    print(f"mean |approximation error| = {np.abs(fta.approximated - int_weights).mean():.3f}")

    # 3. Compile to dyadic-block values + metadata.
    compressed = compress_layer(int_weights)
    print(
        f"compressed storage: {compressed.total_value_bytes} value bytes + "
        f"{compressed.total_metadata_bytes} metadata bytes "
        f"(dense: {compressed.dense_value_bytes()} bytes, "
        f"{compressed.compression_ratio:.2f}x compression)"
    )

    # 4. Execute on the DB-PIM macro model and on the dense baseline.  The
    #    Experiment façade dispatches to the functional accelerator with the
    #    session config switched to the requested sparsity variant.
    session = Experiment(config="paper-28nm", seed=0)
    sparse = session.execute_linear(int_weights, inputs, variant="hybrid")
    dense = session.execute_linear(int_weights, inputs, variant="base")
    reference = fta.approximated @ inputs
    assert np.array_equal(sparse.outputs, reference), "macro output mismatch"

    # 5. Compare.
    print(f"dense baseline : {dense.cycles:5d} cycles, "
          f"U_act {dense.stats.actual_utilization:.1%}, "
          f"{dense.energy.total_pj:8.1f} pJ")
    print(f"DB-PIM (hybrid): {sparse.cycles:5d} cycles, "
          f"U_act {sparse.stats.actual_utilization:.1%}, "
          f"{sparse.energy.total_pj:8.1f} pJ")
    print(f"speedup {dense.cycles / sparse.cycles:.2f}x, "
          f"energy saving {1 - sparse.energy.total_pj / dense.energy.total_pj:.1%}")


if __name__ == "__main__":
    main()
