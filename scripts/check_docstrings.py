"""Fail if any public API of ``repro.api`` / ``repro.sim`` /
``repro.compiler`` / ``repro.workloads`` / ``repro.serve`` /
``repro.store`` / ``repro.dist`` lacks a docstring.

Run as part of the ``docs`` CI job (and locally before sending a PR):

    PYTHONPATH=src python scripts/check_docstrings.py

Walks every public module, class, function, method and property of the two
documented packages and reports each member whose docstring is missing or
empty.  Exits non-zero when anything is undocumented, so the generated API
reference can never silently grow blank entries.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from typing import Iterator, List, Tuple

PACKAGES = (
    "repro.api",
    "repro.sim",
    "repro.sim.engines",
    "repro.compiler",
    "repro.workloads",
    "repro.serve",
    "repro.store",
    "repro.dist",
)

#: Public symbols that must exist *and* be documented -- the load-bearing
#: surface of the sweep service and the vectorized batch kernel.  Walking
#: the packages above already checks whatever exists; this list turns a
#: silent rename/removal of a contracted entry point into a CI failure.
REQUIRED_SYMBOLS = (
    "repro.api.sweep.ShardPlanner",
    "repro.api.sweep.ShardPlan",
    "repro.api.sweep.SweepShard",
    "repro.api.sweep.SweepJournal",
    "repro.api.sweep.SweepPointError",
    "repro.api.sweep.run_shard",
    "repro.api.sweep.run_sweep",
    "repro.api.sweep.EXECUTORS",
    "repro.api.results.SweepStats",
    "repro.api.experiment.Experiment.run_sweep",
    "repro.sim.vectorized.simulate_jobs",
    "repro.sim.vectorized.concatenate_batches",
    "repro.sim.vectorized.profile_arrays",
    "repro.sim.vectorized.invalidate_profile_arrays",
    "repro.api.sweep.SweepJournalLockedError",
    "repro.api.sweep.SweepJournal.acquire",
    "repro.api.sweep.SweepJournal.release",
    "repro.serve.service.ExperimentService",
    "repro.serve.service.ServiceRuntime",
    "repro.serve.service.ServeConfig",
    "repro.serve.service.RunRequest",
    "repro.serve.service.RunOutcome",
    "repro.serve.cache.HotResultCache",
    "repro.serve.metrics.MetricsRegistry",
    "repro.serve.http.make_server",
    "repro.serve.http.ServeHTTPServer",
    "repro.sim.engines.EngineSpec",
    "repro.sim.engines.EngineOutcome",
    "repro.sim.engines.register_engine",
    "repro.sim.engines.unregister_engine",
    "repro.sim.engines.temporary_engine",
    "repro.sim.engines.get_engine",
    "repro.sim.engines.resolve_cycle_model_engine",
    "repro.sim.engines.list_engines",
    "repro.sim.vectorized.simulate_grid",
    "repro.sim.vectorized.config_knobs",
    "repro.sim.cycle_model.CycleModel.prime",
    "repro.sim.engines.register_absent_engine",
    "repro.sim.engines.absent_engines",
    "repro.sim.engines.jit.register_jit_engine",
    "repro.sim.engines.jit.NUMBA_AVAILABLE",
    "repro.sim.engines.jit.JIT_CACHE_TOKEN",
    "repro.sim.engines.conformance.assert_conformance",
    "repro.sim.engines.conformance.conformance_mismatches",
    "repro.sim.engines.conformance.verify_engine",
    "repro.sim.engines.conformance.ConformanceError",
    "repro.workloads.fuzz.fuzz_graph",
    "repro.workloads.fuzz.fuzz_workload",
    "repro.workloads.fuzz.fuzz_corpus",
    "repro.workloads.fuzz.graph_fingerprint",
    "repro.store.PackedResultStore",
    "repro.store.PackedResultStore.probe",
    "repro.store.PackedResultStore.locate",
    "repro.store.PackedResultStore.get_many",
    "repro.store.PackedResultStore.append_many",
    "repro.store.PackedResultStore.rebuild_index",
    "repro.store.PackedResultStore.ingest_files",
    "repro.store.PackedStoreError",
    "repro.store.PackedStoreLockedError",
    "repro.store.migrate_files_to_packed",
    "repro.api.sweep.CACHE_BACKENDS",
    "repro.api.sweep.cache_keys_for_grid",
    "repro.api.sweep.SweepPoint.cache_key",
    "repro.api.sweep.DEFAULT_TRANSPORT",
    "repro.dist.locks.PidFileLock",
    "repro.dist.locks.PidFileLock.acquire",
    "repro.dist.locks.PidFileLock.release",
    "repro.dist.locks.PidFileLockError",
    "repro.dist.locks.pid_alive",
    "repro.dist.transport.ShardTransport",
    "repro.dist.transport.ShardTransport.lease",
    "repro.dist.transport.ShardTransport.complete",
    "repro.dist.transport.ShardTransport.requeue",
    "repro.dist.transport.ShardLease",
    "repro.dist.transport.TransportSpec",
    "repro.dist.transport.TransportError",
    "repro.dist.transport.WorkerLostError",
    "repro.dist.transport.SerialTransport",
    "repro.dist.transport.ThreadTransport",
    "repro.dist.transport.ProcessTransport",
    "repro.dist.transport.register_transport",
    "repro.dist.transport.unregister_transport",
    "repro.dist.transport.get_transport",
    "repro.dist.transport.list_transports",
    "repro.dist.transport.transport_names",
    "repro.dist.broker.DirectoryBroker",
    "repro.dist.broker.BrokerTransport",
    "repro.dist.broker.SweepManifestError",
    "repro.dist.worker.WorkerConfig",
    "repro.dist.worker.run_worker",
)


def _iter_modules(package_name: str) -> Iterator[object]:
    package = importlib.import_module(package_name)
    yield package
    for info in pkgutil.iter_modules(package.__path__, prefix=f"{package_name}."):
        if info.name.rsplit(".", 1)[-1].startswith("_"):
            continue
        yield importlib.import_module(info.name)


def _public_members(owner: object) -> Iterator[Tuple[str, object]]:
    for name, member in vars(owner).items():
        if not name.startswith("_"):
            yield name, member


def _missing_in_class(cls: type, prefix: str) -> Iterator[str]:
    for name, member in _public_members(cls):
        qualified = f"{prefix}.{name}"
        if isinstance(member, property):
            if not (member.fget and inspect.getdoc(member.fget)):
                yield qualified
        elif inspect.isfunction(member) or isinstance(
            member, (classmethod, staticmethod)
        ):
            func = member.__func__ if not inspect.isfunction(member) else member
            if not inspect.getdoc(func):
                yield qualified


def find_missing() -> List[str]:
    """Qualified names of all undocumented public members."""
    missing: List[str] = []
    for package_name in PACKAGES:
        for module in _iter_modules(package_name):
            if not inspect.getdoc(module):
                missing.append(module.__name__)
            for name, member in _public_members(module):
                if getattr(member, "__module__", None) != module.__name__:
                    continue  # re-exports are documented at their origin
                qualified = f"{module.__name__}.{name}"
                if inspect.isclass(member):
                    if not inspect.getdoc(member):
                        missing.append(qualified)
                    missing.extend(_missing_in_class(member, qualified))
                elif inspect.isfunction(member):
                    if not inspect.getdoc(member):
                        missing.append(qualified)
    return missing


def _resolve(qualified: str):
    """Import the longest module prefix of ``qualified``, then getattr the
    rest.  Returns the member, or ``None`` when anything is missing."""
    parts = qualified.split(".")
    for split in range(len(parts), 0, -1):
        try:
            member = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        for name in parts[split:]:
            member = getattr(member, name, None)
            if member is None:
                return None
        return member
    return None


def check_required() -> List[str]:
    """Required symbols that are absent or undocumented (see
    :data:`REQUIRED_SYMBOLS`)."""
    problems: List[str] = []
    for qualified in REQUIRED_SYMBOLS:
        member = _resolve(qualified)
        if member is None:
            problems.append(f"{qualified} (missing)")
        elif not isinstance(
            member, (int, float, str, tuple, frozenset)
        ) and not inspect.getdoc(member):
            # Plain data constants carry their docs in module comments;
            # everything callable/classy must have a docstring.
            problems.append(f"{qualified} (undocumented)")
    return problems


def main() -> int:
    """Entry point; prints offenders and returns the exit code."""
    missing = find_missing() + check_required()
    if missing:
        print("undocumented public members:")
        for name in sorted(set(missing)):
            print(f"  {name}")
        return 1
    count = sum(1 for pkg in PACKAGES for _ in _iter_modules(pkg))
    print(f"docstring check OK ({count} modules across {', '.join(PACKAGES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
