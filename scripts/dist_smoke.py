"""End-to-end smoke test of the distributed sweep fabric (CI ``dist-smoke``).

Runs the whole thing through the real CLI: a serial reference sweep, then
the same grid under ``repro sweep --transport broker`` with two
``repro worker`` subprocesses attached -- one of which is SIGKILLed the
moment it claims a shard lease.  The coordinator must detect the dead
lease, requeue the shard, finish the sweep, and print a ``--json -``
payload **byte-identical** to the serial reference.  Run locally with::

    PYTHONPATH=src python scripts/dist_smoke.py

Exit code 0 means every probe passed; any assertion prints the offending
state and exits non-zero.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

TIMEOUT_S = 300
MODELS = ["alexnet", "mobilenetv2", "resnet18"]
SHARDS = "3"


def _sweep_args(extra: list) -> list:
    return [
        sys.executable, "-m", "repro.api.cli", "sweep",
        "--experiments", "fig7", "--models", *MODELS,
        "--shards", SHARDS, "--quiet", "--json", "-", *extra,
    ]


def _wait_for_victim_lease(sweep_dir: str, worker_id: str) -> None:
    """Block until a lease held by ``worker_id`` appears."""
    leases = os.path.join(sweep_dir, "leases")
    deadline = time.monotonic() + TIMEOUT_S
    while time.monotonic() < deadline:
        if os.path.isdir(leases):
            for name in os.listdir(leases):
                try:
                    with open(os.path.join(leases, name)) as stream:
                        if json.load(stream).get("worker") == worker_id:
                            return
                except (OSError, ValueError):
                    continue
        time.sleep(0.01)
    raise AssertionError(f"{worker_id} never claimed a lease")


def main() -> int:
    """Run the smoke sequence; returns the process exit code."""
    serial = subprocess.run(
        _sweep_args(["--transport", "serial"]),
        capture_output=True, text=True, timeout=TIMEOUT_S,
    )
    assert serial.returncode == 0, serial.stderr
    print(f"serial reference OK ({len(serial.stdout)} bytes of JSON)")

    with tempfile.TemporaryDirectory(prefix="dist-smoke-") as sweep_dir:
        worker_cmd = [sys.executable, "-m", "repro.api.cli", "worker",
                      sweep_dir, "--attach-timeout", "120"]
        victim = subprocess.Popen(
            worker_cmd + ["--worker-id", "victim"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        coordinator = subprocess.Popen(
            _sweep_args(
                ["--transport", "broker", "--sweep-dir", sweep_dir]
            ),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        survivor = None
        try:
            # Kill the victim the instant it claims a shard -- guaranteed
            # mid-shard, long before a fig7 point finishes -- then reap it
            # so the coordinator's PID probe sees a dead holder, not a
            # zombie.
            _wait_for_victim_lease(sweep_dir, "victim")
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=TIMEOUT_S)
            assert victim.returncode == -signal.SIGKILL, victim.returncode
            print("victim worker SIGKILLed mid-shard")

            survivor = subprocess.Popen(
                worker_cmd + ["--worker-id", "survivor"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            )
            stdout, stderr = coordinator.communicate(timeout=TIMEOUT_S)
            assert coordinator.returncode == 0, stderr
            assert "lost its worker" in stderr, stderr
            print("coordinator recovered the lost shard (requeue warning seen)")

            assert stdout == serial.stdout, (
                "distributed JSON differs from the serial reference"
            )
            print("distributed result is byte-identical to serial")

            survivor_out, _ = survivor.communicate(timeout=TIMEOUT_S)
            assert survivor.returncode == 0, survivor_out
            print(f"survivor worker exited cleanly: {survivor_out.strip()!r}")
        finally:
            for process in (victim, survivor, coordinator):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait()

    print("dist smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
