"""End-to-end smoke test of the ``repro serve`` daemon (CI ``serve-smoke``).

Starts the daemon as a real subprocess on an ephemeral port, exercises the
whole HTTP surface -- ``/v1/health``, ``/v1/run`` (cold + hot-cache repeat),
``/v1/sweep``, ``/v1/metrics`` -- and finishes with a SIGTERM, asserting the
daemon drains and exits 0.  Run locally with::

    PYTHONPATH=src python scripts/serve_smoke.py

Exit code 0 means every probe passed; any assertion prints the offending
payload and exits non-zero.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request

TIMEOUT_S = 120


def _post(url: str, path: str, payload: dict) -> tuple:
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=TIMEOUT_S) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str, path: str) -> tuple:
    with urllib.request.urlopen(url + path, timeout=TIMEOUT_S) as response:
        return response.status, json.loads(response.read())


def main() -> int:
    """Run the smoke sequence; returns the process exit code."""
    env = dict(os.environ)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.api.cli", "serve", "--port", "0"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = daemon.stdout.readline().strip()
        assert "listening on http://" in banner, banner
        url = banner.rsplit(" ", 1)[-1]
        print(f"daemon up at {url}")

        status, body = _get(url, "/v1/health")
        assert status == 200 and body["status"] == "ok", (status, body)
        print("health OK")

        status, body = _post(
            url, "/v1/run", {"experiment": "fig7", "models": ["alexnet"]}
        )
        assert status == 200, (status, body)
        assert body["result"]["experiment"] == "fig7", body
        assert len(body["result"]["rows"]) == 1, body
        cold_latency = body["outcome"]["latency_s"]
        print(f"run OK ({cold_latency * 1e3:.1f} ms cold)")

        status, body = _post(
            url, "/v1/run", {"experiment": "fig7", "models": ["alexnet"]}
        )
        assert status == 200 and body["outcome"]["cache_hit"], (status, body)
        print(f"hot-cache repeat OK ({body['outcome']['latency_s'] * 1e3:.2f} ms)")

        status, body = _post(url, "/v1/run", {"experiment": "nope"})
        assert status == 400, (status, body)
        print("validation error mapping OK (400)")

        status, body = _post(
            url,
            "/v1/sweep",
            {"experiments": ["fig7"], "models": ["alexnet", "mobilenetv2"]},
        )
        assert status == 200 and len(body["sweep"]["results"]) == 2, (
            status,
            body,
        )
        print("sweep OK")

        status, body = _get(url, "/v1/metrics")
        assert status == 200, (status, body)
        counters = body["counters"]
        assert counters["requests_total"] >= 3, counters
        assert counters["cache_hits"] >= 1, counters
        assert body["derived"]["errors_total"] == 1, body["derived"]
        print(f"metrics OK: {body['derived']}")

        daemon.send_signal(signal.SIGTERM)
        output, _ = daemon.communicate(timeout=60)
        assert "drained and stopped" in output, output
        assert daemon.returncode == 0, daemon.returncode
        print("SIGTERM drain OK (exit 0)")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
