"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that editable installs
work in fully offline environments where the ``wheel`` package may be
unavailable (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
