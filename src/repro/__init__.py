"""DB-PIM reproduction library.

Reproduction of "Towards Efficient SRAM-PIM Architecture Design by
Exploiting Unstructured Bit-Level Sparsity" (DAC 2024): the FTA algorithm
and dyadic-block sparsity pattern (``repro.core``), a numpy NN substrate for
the accuracy experiments (``repro.nn``), functional and analytical models of
the DB-PIM architecture (``repro.arch``), the offline compiler
(``repro.compiler``), workload descriptors and sparsity profiles
(``repro.workloads``), the cycle-level performance simulator (``repro.sim``)
and the experiment drivers that regenerate every table and figure
(``repro.eval``).

The canonical entry point is the :mod:`repro.api` façade: a config registry
of named frozen presets, the :class:`~repro.api.Experiment` /
:class:`~repro.api.Session` object with uniform methods over the whole
stack, a typed JSON-round-trippable result schema
(:class:`~repro.api.ExperimentResult`, :class:`~repro.api.SweepResult`), a
sharded sweep service (:func:`~repro.api.run_sweep`: cache-state shard
planning, process/thread/serial executor backends, on-disk result cache and
a resumable JSONL run journal) and the ``repro`` console script.  The
historical ``repro.eval.*`` driver functions remain as thin wrappers over
the façade.  Future scaling work (batching, async serving, multi-backend
dispatch) should build on :mod:`repro.api` rather than adding new bespoke
entry points.

Quickstart::

    from repro import Experiment

    session = Experiment(config="paper-28nm", seed=0)
    result = session.run("fig7", models=["resnet18"])
    print(result.to_json())
"""

from . import api, arch, compiler, core, eval, nn, sim, workloads
from .api import (
    Experiment,
    ExperimentResult,
    Session,
    SweepResult,
    get_config,
    list_configs,
    list_experiments,
    run_sweep,
)

__version__ = "1.7.0"

__all__ = [
    "api",
    "arch",
    "compiler",
    "core",
    "eval",
    "nn",
    "sim",
    "workloads",
    "Experiment",
    "Session",
    "ExperimentResult",
    "SweepResult",
    "run_sweep",
    "get_config",
    "list_configs",
    "list_experiments",
    "__version__",
]
