"""DB-PIM reproduction library.

Reproduction of "Towards Efficient SRAM-PIM Architecture Design by
Exploiting Unstructured Bit-Level Sparsity" (DAC 2024): the FTA algorithm
and dyadic-block sparsity pattern (``repro.core``), a numpy NN substrate for
the accuracy experiments (``repro.nn``), functional and analytical models of
the DB-PIM architecture (``repro.arch``), the offline compiler
(``repro.compiler``), workload descriptors and sparsity profiles
(``repro.workloads``), the cycle-level performance simulator (``repro.sim``)
and the experiment drivers that regenerate every table and figure
(``repro.eval``).
"""

from . import arch, compiler, core, eval, nn, sim, workloads

__version__ = "1.0.0"

__all__ = [
    "arch",
    "compiler",
    "core",
    "eval",
    "nn",
    "sim",
    "workloads",
    "__version__",
]
