"""Unified experiment façade over the DB-PIM reproduction stack.

This package is the canonical entry point for running the paper's
experiments programmatically:

* :mod:`repro.api.configs` -- named, frozen hardware presets
  (``"paper-28nm"``, ``"dense-baseline"``, ...) plus validated builder
  helpers (:func:`build_dbpim_config`, :func:`build_fta_config`);
* :class:`Experiment` / :class:`Session` -- one object with uniform methods
  (``run_layer``, ``run_model``, ``run_variants``, ``accuracy``, ``area``,
  ``comparison``, ``run``) dispatching to the functional accelerator, the
  analytical cycle model, the compiler and the NN/QAT pipeline, all driven
  by a single ``seed``;
* :mod:`repro.api.results` -- the typed result schema
  (:class:`ExperimentResult`, :class:`SweepResult`) with lossless
  ``to_json()`` / ``from_json()`` round-trips;
* :func:`run_sweep` -- the sharded sweep service: a :class:`ShardPlanner`
  partitioning grids by cache state, pluggable shard transports
  (``thread`` / ``process`` / ``serial`` local pools plus the distributed
  ``broker`` fabric driving ``repro worker`` fleets; see
  :mod:`repro.dist`), an on-disk JSON result cache keyed by configuration
  content hashes, and a resumable append-only JSONL run journal
  (:class:`SweepJournal`);
* :mod:`repro.api.cli` -- the ``repro`` console script built on all of the
  above.

Quickstart::

    from repro.api import Experiment

    session = Experiment(config="paper-28nm", seed=0)
    for row in session.speedup_energy(["resnet18"]):
        print(row.model, row.speedup["hybrid"])
"""

from .configs import (
    DEFAULT_CONFIG,
    build_dbpim_config,
    build_fta_config,
    config_digest,
    config_name,
    config_to_dict,
    get_config,
    list_configs,
    register_config,
)
from .experiment import (
    DEFAULT_ENGINE,
    DEFAULT_SEED,
    ENGINES,
    EXPERIMENTS,
    Experiment,
    ExperimentSpec,
    Session,
    get_experiment_spec,
    list_experiments,
)
from .formatting import format_result, format_sweep
from .results import (
    AccuracyRow,
    AreaRow,
    ComparisonColumn,
    ExperimentResult,
    GraphRow,
    InputSparsityRow,
    ProgramRow,
    SparsityBenefitRow,
    SparsitySupportRow,
    SweepResult,
    SweepStats,
    WeightSparsityRow,
)
from .sweep import (
    CACHE_BACKENDS,
    DEFAULT_CACHE_BACKEND,
    DEFAULT_EXECUTOR,
    DEFAULT_TRANSPORT,
    EXECUTORS,
    ShardPlan,
    ShardPlanner,
    SweepJournal,
    SweepJournalLockedError,
    SweepPoint,
    SweepPointError,
    SweepShard,
    build_grid,
    cache_keys_for_grid,
    run_point,
    run_shard,
    run_sweep,
    transport_names,
)

__all__ = [
    # configs
    "DEFAULT_CONFIG",
    "register_config",
    "get_config",
    "list_configs",
    "config_name",
    "config_to_dict",
    "config_digest",
    "build_dbpim_config",
    "build_fta_config",
    # experiment façade
    "DEFAULT_SEED",
    "ENGINES",
    "DEFAULT_ENGINE",
    "EXPERIMENTS",
    "ExperimentSpec",
    "Experiment",
    "Session",
    "get_experiment_spec",
    "list_experiments",
    # results
    "ExperimentResult",
    "SweepResult",
    "SweepStats",
    "WeightSparsityRow",
    "InputSparsityRow",
    "ProgramRow",
    "GraphRow",
    "SparsityBenefitRow",
    "SparsitySupportRow",
    "AccuracyRow",
    "ComparisonColumn",
    "AreaRow",
    # formatting
    "format_result",
    "format_sweep",
    # sweep service
    "EXECUTORS",
    "DEFAULT_EXECUTOR",
    "DEFAULT_TRANSPORT",
    "transport_names",
    "CACHE_BACKENDS",
    "DEFAULT_CACHE_BACKEND",
    "SweepPoint",
    "SweepShard",
    "ShardPlan",
    "ShardPlanner",
    "SweepJournal",
    "SweepJournalLockedError",
    "SweepPointError",
    "build_grid",
    "cache_keys_for_grid",
    "run_point",
    "run_shard",
    "run_sweep",
]
