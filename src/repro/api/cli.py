"""The ``repro`` command-line interface.

The subcommands map the whole evaluation section onto the façade:

* ``repro list`` -- registered experiments, workloads and config presets;
* ``repro run fig7 --models resnet18 vgg19 --json out.json`` -- run one
  experiment and print its table (optionally dumping the typed result);
  ``repro run program --engine trace`` compiles whole-model programs and
  replays them on the trace simulator, cross-checked against the
  analytical model;
* ``repro sweep --experiments fig7 --transport process --shards 4
  --cache-dir .cache --journal sweep.jsonl`` -- fan a grid out over the
  sharded sweep service (thread/process/serial local transports plus the
  distributed ``broker`` fabric via ``--transport broker --sweep-dir``;
  on-disk result caching, append-only JSONL run journal); re-invoking
  with ``--resume`` restores journaled points instead of recomputing
  them.  ``--executor`` remains as a deprecated alias of ``--transport``;
* ``repro worker SWEEP_DIR`` -- attach a stateless worker process to a
  broker-transport sweep: lease cold shards, execute them, stream the
  results back as journal fragments; start any number, kill any of them
  mid-shard, and the coordinator's lease-and-requeue recovery still
  reproduces the serial result byte-for-byte.

Unknown experiment/workload/preset/transport names exit with code 2 and a
"did you mean" suggestion from the registry instead of a traceback.

Installed as a console script via the packaging metadata; also runnable as
``python -m repro.api.cli``.
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
from typing import Any, Dict, Iterable, Optional, Sequence

from ..sim.cycle_model import DEFAULT_ENGINE
from ..sim.engines import (
    absent_engines,
    engine_names,
    get_engine,
    list_engines,
)
from .configs import list_configs
from .experiment import (
    EXPERIMENTS,
    Experiment,
    get_experiment_spec,
    list_experiments,
)
from ..dist.transport import list_transports, transport_names
from .formatting import format_result, format_sweep
from .sweep import (
    CACHE_BACKENDS,
    DEFAULT_CACHE_BACKEND,
    DEFAULT_TRANSPORT,
    EXECUTORS,
    run_sweep,
)

__all__ = ["CLIError", "TRACE_ENGINE", "build_parser", "main"]

#: Pseudo-engine accepted by ``repro run program``: the experiment replays
#: the compiled program on the trace simulator (its analytical comparison
#: columns use the default cycle-model engine).
TRACE_ENGINE = "trace"


class CLIError(Exception):
    """A user-input problem (unknown experiment/workload/preset, bad flag
    combination).  Only these are reported as one-line ``repro: error``
    messages; genuine internal failures keep their tracebacks."""


def _validate(call, *args, **kwargs):
    """Run a *validation* callable, converting its expected rejection
    exceptions into :class:`CLIError`."""
    try:
        return call(*args, **kwargs)
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else str(error)
        raise CLIError(message) from error


def _check_name(kind: str, name: str, candidates: Iterable[str]) -> None:
    """Reject an unknown registry name with a "did you mean" hint.

    Exits through :class:`CLIError` (process code 2) instead of letting a
    raw ``KeyError`` traceback escape; close registry entries are suggested
    and the full candidate list is printed.
    """
    choices = list(candidates)
    if name in choices:
        return
    close = difflib.get_close_matches(name, choices, n=3, cutoff=0.5)
    hint = f" -- did you mean: {', '.join(close)}?" if close else ""
    raise CLIError(
        f"unknown {kind} {name!r}{hint} (available: {', '.join(choices)})"
    )


def _check_experiment(name: str) -> None:
    """Validate an experiment id (case-insensitive, with suggestions)."""
    _check_name("experiment", name.lower(), EXPERIMENTS)


def _check_workloads(models: Optional[Sequence[str]]) -> None:
    """Validate workload names (case-insensitive, with suggestions)."""
    if models is None:
        return
    from ..workloads.models import list_workloads

    known = list_workloads(family=None)
    for model in models:
        _check_name("workload", str(model).lower(), known)


def _check_configs(configs: Optional[Sequence[str]]) -> None:
    """Validate config preset names (with suggestions)."""
    if configs is None:
        return
    for config in configs:
        _check_name("config preset", config, list_configs())


def _check_engine(engine: str, cycle_model_only: bool = False) -> None:
    """Validate an engine name against the registry (with suggestions).

    Known-but-uninstalled engines (optional extras probed at import, e.g.
    the numba-backed ``jit`` tier) exit 2 with the exact install command
    instead of a spelling suggestion.

    Args:
        engine: the requested engine name.
        cycle_model_only: restrict the candidates to cycle-model-capable
            engines (the sweep grid cannot run the trace simulator).
    """
    absent = absent_engines()
    if engine in absent:
        raise CLIError(
            f"engine {engine!r} is not installed in this environment; "
            f"enable it with: {absent[engine]}"
        )
    candidates = engine_names(cycle_model=True if cycle_model_only else None)
    _check_name("engine", engine, candidates)


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser (``list`` / ``run`` / ``sweep`` /
    ``serve``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the DB-PIM (DAC 2024) evaluation: every paper "
            "table/figure behind one uniform interface."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list experiments, workloads and config presets"
    )
    list_parser.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its table"
    )
    run_parser.add_argument(
        "experiment",
        help="experiment id (fig2a, fig2b, fig7, table1..table4, program, "
        "graph)",
    )
    run_parser.add_argument(
        "--models", "--workload", "--workloads", nargs="+", default=None,
        dest="models", metavar="MODEL",
        help="workloads to run (default: all five paper models; transformer "
        "workloads such as vit_tiny by explicit name -- see 'repro list')",
    )
    run_parser.add_argument(
        "--config", default=None, metavar="PRESET",
        help="config preset name (default: paper-28nm)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    run_parser.add_argument(
        "--engine", default=DEFAULT_ENGINE, metavar="ENGINE",
        help="registered engine (see 'repro list'): vectorized NumPy batch "
        "kernel or the scalar per-layer reference (identical numbers); "
        "'trace' replays the compiled whole-model program and is only "
        "valid for the 'program' experiment. Unknown names exit 2 with a "
        "suggestion from the engine registry",
    )
    run_parser.add_argument(
        "--epochs", type=int, default=None,
        help="pre-training epochs (table2 only)",
    )
    run_parser.add_argument(
        "--qat-epochs", type=int, default=None,
        help="FTA-aware QAT fine-tuning epochs (table2 only)",
    )
    run_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the typed result as JSON ('-' for stdout)",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress the formatted table"
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a grid of experiments in parallel, with caching"
    )
    sweep_parser.add_argument(
        "--experiments", nargs="+", default=None, metavar="ID",
        help="experiment ids (default: every non-training experiment)",
    )
    sweep_parser.add_argument(
        "--models", nargs="+", default=None, metavar="MODEL",
        help="workloads for the model-parameterised experiments",
    )
    sweep_parser.add_argument(
        "--configs", nargs="+", default=["paper-28nm"], metavar="PRESET",
        help="config preset names",
    )
    sweep_parser.add_argument(
        "--seeds", nargs="+", type=int, default=[0], metavar="SEED",
        help="RNG seeds",
    )
    sweep_parser.add_argument(
        "--engine", default=DEFAULT_ENGINE, metavar="ENGINE",
        help="registered cycle-model engine for every grid point (part of "
        "the cache key); unknown names exit 2 with a suggestion from the "
        "engine registry",
    )
    sweep_parser.add_argument(
        "--max-workers", type=int, default=None,
        help="worker threads/processes (default: one per shard, capped at CPUs)",
    )
    sweep_parser.add_argument(
        "--transport", default=None, metavar="NAME",
        help="shard transport executing the sweep (default: "
        f"{DEFAULT_TRANSPORT}): 'process' for cold CPU-bound grids "
        "(bypasses the GIL), 'thread' for warm-cache/I/O-bound re-runs, "
        "'serial' for debugging, 'broker' to coordinate 'repro worker' "
        "processes over --sweep-dir; every transport produces identical "
        "results. Unknown names exit 2 with a suggestion from the "
        "transport registry",
    )
    sweep_parser.add_argument(
        "--sweep-dir", default=None, metavar="DIR",
        help="shared coordination directory of a distributed transport "
        "(required by --transport broker; attach workers with "
        "'repro worker DIR')",
    )
    sweep_parser.add_argument(
        "--executor", choices=EXECUTORS, default=None,
        help="deprecated alias of --transport (local backends only)",
    )
    sweep_parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="target shard count (default: twice the worker count)",
    )
    sweep_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append-only JSONL run journal (one result per line, flushed "
        "per shard); enables --resume",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="restore finished points from --journal instead of recomputing "
        "them (the completed sweep is identical to an uninterrupted run)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk JSON result cache directory",
    )
    sweep_parser.add_argument(
        "--cache-backend", choices=CACHE_BACKENDS,
        default=DEFAULT_CACHE_BACKEND,
        help="result cache layout inside --cache-dir: 'files' is one JSON "
        "file per point (legacy), 'packed' is the append-only single-"
        "artifact store (batched warm path; migrate an existing directory "
        "with repro.store.migrate_files_to_packed)",
    )
    sweep_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the sweep result as JSON ('-' for stdout)",
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="suppress the formatted tables"
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="start the long-lived HTTP experiment daemon (repro.serve)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (0 picks a free port and prints it)",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="admission bound: queued requests beyond this are rejected "
        "with 503",
    )
    serve_parser.add_argument(
        "--batch-window-ms", type=float, default=5.0, metavar="MS",
        help="how long the batcher collects compatible requests before "
        "dispatching one coalesced simulator pass",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="default per-request deadline",
    )
    serve_parser.add_argument(
        "--hot-cache-size", type=int, default=256, metavar="N",
        help="in-memory result cache capacity (0 disables)",
    )
    serve_parser.add_argument(
        "--hot-cache-ttl", type=float, default=300.0, metavar="SECONDS",
        help="in-memory result cache TTL (0 disables expiry)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk JSON result cache shared with 'repro sweep'",
    )
    serve_parser.add_argument(
        "--cache-backend", choices=CACHE_BACKENDS,
        default=DEFAULT_CACHE_BACKEND,
        help="layout of --cache-dir: 'files' (one JSON per point) or "
        "'packed' (append-only store; the hot-cache miss path reads it in "
        "batch)",
    )
    serve_parser.add_argument(
        "--allow-heavy", action="store_true",
        help="admit training experiments (table2; minutes-scale runs)",
    )

    worker_parser = subparsers.add_parser(
        "worker",
        help="attach a sweep worker to a broker-transport sweep directory",
    )
    worker_parser.add_argument(
        "sweep_dir", metavar="SWEEP_DIR",
        help="shared sweep directory published by 'repro sweep --transport "
        "broker --sweep-dir SWEEP_DIR' (workers may be started first; they "
        "wait for the manifest)",
    )
    worker_parser.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="identifier recorded in leases and result fragments "
        "(default: worker-<host>-<pid>)",
    )
    worker_parser.add_argument(
        "--heartbeat", type=float, default=2.0, metavar="SECONDS",
        help="lease heartbeat period while executing a shard; keep it "
        "well under the coordinator's lease TTL",
    )
    worker_parser.add_argument(
        "--attach-timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long to wait for the sweep manifest to appear",
    )
    worker_parser.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="exit after executing N shards (default: run until the sweep "
        "completes)",
    )
    worker_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-shard progress lines",
    )
    return parser


def _emit_json(payload: str, destination: str) -> None:
    if destination == "-":
        print(payload)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")


def _workload_entries() -> list:
    """One descriptor per registered workload, graph structure included."""
    from ..workloads.models import get_workload, list_workloads, workload_family

    entries = []
    for name in list_workloads(family=None):
        workload = get_workload(name)
        graph = workload.graph
        entries.append(
            {
                "name": name,
                "family": workload_family(name),
                "layers": len(workload.layers),
                "graph_nodes": len(graph) if graph is not None else None,
                "joins": len(graph.join_nodes()) if graph is not None else 0,
            }
        )
    return entries


def _command_list(args: argparse.Namespace) -> int:
    specs = list_experiments()
    workloads = _workload_entries()
    if args.json:
        payload: Dict[str, Any] = {
            "experiments": [
                {
                    "id": spec.id,
                    "reference": spec.reference,
                    "title": spec.title,
                    "takes_models": spec.takes_models,
                    "heavy": spec.heavy,
                }
                for spec in specs
            ],
            "workloads": [entry["name"] for entry in workloads],
            "graphs": workloads,
            "configs": list_configs(),
            "engines": [
                {
                    "name": engine.name,
                    "title": engine.title,
                    "cycle_model": engine.cycle_model,
                    "batch": engine.batch,
                    "trace_class": engine.trace_class,
                    "available": True,
                }
                for engine in list_engines()
            ]
            + [
                {
                    "name": name,
                    "available": False,
                    "install_hint": hint,
                }
                for name, hint in sorted(absent_engines().items())
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("experiments:")
    for spec in specs:
        flags = " (trains networks)" if spec.heavy else ""
        print(f"  {spec.id:<8} {spec.reference:<10} {spec.title}{flags}")
    print("workloads:")
    for entry in workloads:
        structure = (
            f"{entry['graph_nodes']} nodes, {entry['layers']} layers, "
            f"{entry['joins']} joins"
            if entry["graph_nodes"] is not None
            else f"{entry['layers']} layers (linear)"
        )
        print(f"  {entry['name']:<18} {entry['family']:<12} {structure}")
    print("engines:")
    for engine in list_engines():
        kind = "cycle-model" if engine.cycle_model else "program-trace"
        print(f"  {engine.name:<12} {kind:<13} {engine.title}")
    for name, hint in sorted(absent_engines().items()):
        print(f"  {name:<12} {'unavailable':<13} ({hint})")
    print(f"configs:   {' '.join(list_configs())}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    _check_experiment(args.experiment)
    spec = get_experiment_spec(args.experiment)
    if args.config is not None:
        _check_configs([args.config])
    params: Dict[str, Any] = {}
    if args.models is not None:
        if not spec.takes_models:
            raise CLIError(f"experiment {spec.id!r} does not take --models")
        _check_workloads(args.models)
        params["models"] = args.models
    for name, value in (("epochs", args.epochs), ("qat_epochs", args.qat_epochs)):
        if value is not None:
            if name not in spec.default_params:
                raise CLIError(
                    f"experiment {spec.id!r} does not take --{name.replace('_', '-')}"
                )
            params[name] = value
    engine = args.engine
    _check_engine(engine)
    if not get_engine(engine).cycle_model:
        if spec.id != "program":
            raise CLIError(
                f"--engine {engine} replays the compiled program and is "
                "only valid for the 'program' experiment"
            )
        # The program experiment always runs the trace simulator; its
        # analytical comparison columns use the default cycle-model engine.
        engine = DEFAULT_ENGINE
    session = _validate(
        Experiment, config=args.config, seed=args.seed, engine=engine
    )
    if "models" in params:
        params["models"] = _validate(session._resolve_models, params["models"])
    result = session.run(spec.id, **params)
    if not args.quiet:
        print(f"=== {spec.reference}: {spec.title} ===")
        print(format_result(result))
    if args.json is not None:
        _emit_json(result.to_json(), args.json)
    return 0


def _check_transport(name: str) -> None:
    """Validate a transport name against the registry (with suggestions)."""
    _check_name("transport", name, transport_names())


def _command_sweep(args: argparse.Namespace) -> int:
    # Validate every grid axis eagerly, before any worker starts.
    if args.experiments is not None:
        for experiment in args.experiments:
            _check_experiment(experiment)
    _check_configs(args.configs)
    _check_workloads(args.models)
    _check_engine(args.engine, cycle_model_only=True)
    if args.transport is not None:
        _check_transport(args.transport)
    if args.executor is not None and args.transport is not None:
        if args.executor != args.transport:
            raise CLIError(
                f"--executor {args.executor} (deprecated) conflicts with "
                f"--transport {args.transport}; pass only --transport"
            )
    transport = args.transport
    if transport is not None and any(
        spec.name == transport and spec.distributed
        for spec in list_transports()
    ):
        if args.sweep_dir is None:
            raise CLIError(
                f"--transport {transport} is distributed and needs "
                "--sweep-dir DIR (the directory 'repro worker' attaches to)"
            )
    elif args.sweep_dir is not None:
        raise CLIError(
            "--sweep-dir only applies to a distributed transport "
            "(e.g. --transport broker)"
        )
    if args.resume and args.journal is None:
        raise CLIError("--resume requires --journal PATH")
    if args.shards is not None and args.shards <= 0:
        raise CLIError("--shards must be positive")
    if args.max_workers is not None and args.max_workers <= 0:
        raise CLIError("--max-workers must be positive")
    sweep = run_sweep(
        experiments=args.experiments,
        models=args.models,
        configs=args.configs,
        seeds=args.seeds,
        max_workers=args.max_workers,
        cache_dir=args.cache_dir,
        engine=args.engine,
        executor=args.executor,
        shards=args.shards,
        journal=args.journal,
        resume=args.resume,
        cache_backend=args.cache_backend,
        transport=transport,
        sweep_dir=args.sweep_dir,
    )
    if not args.quiet:
        print(format_sweep(sweep))
    if args.json is not None:
        _emit_json(sweep.to_json(), args.json)
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    # Imported lazily: the one-shot commands never need the worker loop.
    from ..dist.broker import SweepManifestError
    from ..dist.worker import WorkerConfig, run_worker

    if args.heartbeat <= 0:
        raise CLIError("--heartbeat must be positive")
    if args.attach_timeout < 0:
        raise CLIError("--attach-timeout must be >= 0")
    if args.max_shards is not None and args.max_shards <= 0:
        raise CLIError("--max-shards must be positive")

    def _report(shard: Any, outcomes: Any) -> None:
        print(
            f"repro worker: shard {shard.index} done "
            f"({len(outcomes)} points)",
            flush=True,
        )

    config = WorkerConfig(
        sweep_dir=args.sweep_dir,
        heartbeat_s=args.heartbeat,
        attach_timeout_s=args.attach_timeout,
        max_shards=args.max_shards,
        on_shard=None if args.quiet else _report,
    )
    if args.worker_id is not None:
        config.worker_id = args.worker_id
    try:
        executed = run_worker(config)
    except SweepManifestError as error:
        raise CLIError(str(error)) from error
    if not args.quiet:
        print(f"repro worker: executed {executed} shards", flush=True)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the daemon pulls in asyncio/http plumbing that the
    # one-shot commands never need.
    import signal
    import threading

    from ..serve.http import make_server
    from ..serve.service import ServeConfig

    if args.max_queue <= 0:
        raise CLIError("--max-queue must be positive")
    if args.batch_window_ms < 0:
        raise CLIError("--batch-window-ms must be >= 0")
    if args.timeout <= 0:
        raise CLIError("--timeout must be positive")
    if args.hot_cache_size < 0:
        raise CLIError("--hot-cache-size must be >= 0")
    config = ServeConfig(
        max_queue=args.max_queue,
        batch_window_s=args.batch_window_ms / 1000.0,
        default_timeout_s=args.timeout,
        hot_cache_size=args.hot_cache_size,
        hot_cache_ttl_s=args.hot_cache_ttl if args.hot_cache_ttl > 0 else None,
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
        allow_heavy=args.allow_heavy,
    )
    server = make_server(host=args.host, port=args.port, config=config)
    stopping = threading.Event()

    def _stop(signum: int, frame: Any) -> None:
        # shutdown() blocks until serve_forever() returns, so it must run
        # off the serving thread; the first signal wins.
        if not stopping.is_set():
            stopping.set()
            threading.Thread(
                target=server.shutdown, name="repro-serve-shutdown"
            ).start()

    previous = {
        signum: signal.signal(signum, _stop)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    print(f"repro serve: listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
    print("repro serve: drained and stopped", flush=True)
    return 0


_COMMANDS = {
    "list": _command_list,
    "run": _command_run,
    "sweep": _command_sweep,
    "serve": _command_serve,
    "worker": _command_worker,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except CLIError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
