"""Named, frozen configuration presets and validated builder helpers.

Every entry point of the façade accepts either a :class:`DBPIMConfig`
instance or the *name* of a registered preset, so experiment scripts, the
sweep runner and the ``repro`` CLI can all refer to hardware configurations
by a short stable string.  Presets are frozen dataclasses: they cannot be
mutated in place, only replaced (``dataclasses.replace``) or rebuilt via the
builder helpers below.

The registry also provides :func:`config_digest`, the canonical content hash
used by the sweep runner's on-disk result cache: two configurations with the
same digest are guaranteed to produce identical experiment results (given
the same seed and parameters).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Union

from ..arch.config import BufferConfig, ClockConfig, DBPIMConfig, MacroConfig
from ..core.fta import FTAConfig

__all__ = [
    "DEFAULT_CONFIG",
    "ConfigLike",
    "register_config",
    "get_config",
    "list_configs",
    "config_name",
    "config_to_dict",
    "config_digest",
    "build_dbpim_config",
    "build_fta_config",
]

#: Name of the preset used when no configuration is given.
DEFAULT_CONFIG = "paper-28nm"

#: Anything the façade accepts where a configuration is expected.
ConfigLike = Union[str, DBPIMConfig, None]

_REGISTRY: Dict[str, DBPIMConfig] = {}


def register_config(name: str, config: DBPIMConfig, overwrite: bool = False) -> DBPIMConfig:
    """Register a named preset.

    Args:
        name: registry key (e.g. ``"paper-28nm"``).
        config: the frozen configuration to register.
        overwrite: allow replacing an existing preset of the same name.

    Returns:
        The registered configuration (for chaining).
    """
    if not isinstance(config, DBPIMConfig):
        raise TypeError(f"expected DBPIMConfig, got {type(config).__name__}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"config preset {name!r} already registered")
    _REGISTRY[name] = config
    return config


def get_config(config: ConfigLike = None) -> DBPIMConfig:
    """Resolve a preset name / instance / ``None`` to a :class:`DBPIMConfig`.

    ``None`` resolves to the :data:`DEFAULT_CONFIG` preset; an instance is
    passed through unchanged; a string is looked up in the registry.
    """
    if config is None:
        return _REGISTRY[DEFAULT_CONFIG]
    if isinstance(config, DBPIMConfig):
        return config
    if isinstance(config, str):
        try:
            return _REGISTRY[config]
        except KeyError:
            raise KeyError(
                f"unknown config preset {config!r}; available: {list_configs()}"
            ) from None
    raise TypeError(
        f"config must be a preset name, DBPIMConfig or None, got {type(config).__name__}"
    )


def list_configs() -> List[str]:
    """Names of all registered presets, in registration order."""
    return list(_REGISTRY)


def config_name(config: ConfigLike = None) -> str:
    """The preset name of a configuration, or ``custom-<digest>``.

    Used to label results: if the resolved configuration is identical to a
    registered preset the preset name is returned, otherwise a stable
    content-derived name.
    """
    resolved = get_config(config)
    for name, preset in _REGISTRY.items():
        if preset == resolved:
            return name
    return f"custom-{config_digest(resolved)[:12]}"


def config_to_dict(config: ConfigLike = None) -> Dict[str, Any]:
    """Nested plain-dict form of a configuration (JSON-safe)."""
    return dataclasses.asdict(get_config(config))


def config_digest(config: ConfigLike = None, fta_config: Optional[FTAConfig] = None) -> str:
    """Stable SHA-256 content hash of a configuration (hex digest).

    The digest covers every field of the hardware configuration and, when
    given, the FTA configuration -- it is the cache key component that makes
    the sweep runner's on-disk cache safe across configuration changes.
    """
    payload: Dict[str, Any] = {"dbpim": config_to_dict(config)}
    if fta_config is not None:
        payload["fta"] = dataclasses.asdict(fta_config)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_dbpim_config(
    *,
    num_macros: int = 4,
    weight_sparsity: bool = True,
    input_sparsity: bool = True,
    technology_nm: int = 28,
    frequency_mhz: float = 500.0,
    compartments: int = 16,
    rows: int = 64,
    columns: int = 16,
    weight_bits: int = 8,
    input_bits: int = 8,
    input_group: int = 16,
    buffers: Optional[BufferConfig] = None,
) -> DBPIMConfig:
    """Build a validated :class:`DBPIMConfig` from flat keyword arguments.

    This is the ergonomic front door for design-space exploration: every
    geometry/operating-point knob is a keyword, and validation (positive
    geometry, column/weight-bit divisibility, positive clocks) runs through
    the underlying frozen dataclasses' ``__post_init__`` checks.
    """
    macro = MacroConfig(
        compartments=compartments,
        rows=rows,
        columns=columns,
        weight_bits=weight_bits,
        input_bits=input_bits,
        input_group=input_group,
    )
    clock = ClockConfig(frequency_mhz=frequency_mhz)
    return DBPIMConfig(
        macro=macro,
        buffers=buffers or BufferConfig(),
        clock=clock,
        num_macros=num_macros,
        weight_sparsity=weight_sparsity,
        input_sparsity=input_sparsity,
        technology_nm=technology_nm,
    )


def build_fta_config(
    *,
    width: Optional[int] = None,
    max_threshold: int = 2,
    value_low: int = -128,
    value_high: int = 127,
    table_mode: Optional[str] = None,
) -> FTAConfig:
    """Build a validated :class:`FTAConfig` from flat keyword arguments."""
    kwargs: Dict[str, Any] = {
        "max_threshold": max_threshold,
        "value_low": value_low,
        "value_high": value_high,
    }
    if width is not None:
        kwargs["width"] = width
    if table_mode is not None:
        kwargs["table_mode"] = table_mode
    return FTAConfig(**kwargs)


# ---------------------------------------------------------------------------
# Built-in presets
# ---------------------------------------------------------------------------
#: The paper's evaluated configuration (Section 4.1): 28 nm, 500 MHz, four
#: 16 Kb macros, hybrid sparsity.
register_config(DEFAULT_CONFIG, DBPIMConfig())
#: Identical hardware with all sparsity support disabled (the Fig. 7 "base").
register_config("dense-baseline", DBPIMConfig().dense_baseline())
#: Dyadic-block weight sparsity only (Fig. 7 "weight").
register_config("weight-sparsity-only", DBPIMConfig().weight_sparsity_only())
#: IPU input-bit skipping only (Fig. 7 "input").
register_config("input-sparsity-only", DBPIMConfig().input_sparsity_only())
#: A scaled-up design point used by the design-space examples.
register_config("paper-28nm-8macro", build_dbpim_config(num_macros=8))
