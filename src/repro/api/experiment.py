"""The :class:`Experiment` façade: one object, every experiment.

``Experiment`` (alias :class:`Session`) wraps the whole stack -- the
functional accelerator (``repro.arch``), the analytical cycle model
(``repro.sim``), the offline compiler (``repro.compiler``) and the NN/QAT
accuracy pipeline (``repro.nn``) -- behind one uniform signature: a hardware
configuration (instance or registered preset name), an optional FTA
configuration and a single ``seed`` that deterministically drives workload
profiling, dataset synthesis and weight initialisation.

Every paper table/figure is available twice:

* as a typed-row method (``weight_sparsity()``, ``speedup_energy()``,
  ``accuracy()``, ...) returning the same row records the historical
  ``repro.eval.*`` drivers return, and
* through the generic :meth:`Experiment.run` dispatcher, which wraps the
  rows into a serialisable :class:`~repro.api.results.ExperimentResult` --
  the entry point the sweep runner and the ``repro`` CLI are built on.

Expensive intermediates (model sparsity profiles, the synthetic dataset)
are cached per instance, so running several experiments on one session does
not re-profile the workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..arch.accelerator import DBPIMAccelerator, LayerExecutionResult
from ..arch.area import AreaModel
from ..arch.config import DBPIMConfig
from ..compiler.pipeline import CompiledModel, compile_model
from ..compiler.schedule import (
    plan_elementwise_fusion,
    plan_feature_liveness,
    resident_payload_at,
)
from ..core.fta import FTAConfig
from ..core.quantization import quantize_weights
from ..core.sparsity import analyze_input_sparsity, analyze_weight_sparsity
from ..nn.data import SyntheticImageDataset
from ..nn.models import build_model
from ..nn.qat import apply_weight_override, quantize_model, restore_weights
from ..nn.training import Trainer
from ..sim.cycle_model import (
    CycleModel,
    DEFAULT_ENGINE,
    ENGINES,
    LayerPerformance,
    ModelPerformance,
    SPARSITY_VARIANTS,
)
from ..sim.metrics import SystemMetrics, compute_metrics
from ..sim.trace import ProgramTrace, TraceSimulator, relative_cycle_error
from ..workloads.models import get_workload, list_workloads, workload_family
from ..workloads.profiles import (
    ModelSparsityProfile,
    profile_model,
    synthesize_activations,
    synthesize_layer_weights,
)
from .configs import ConfigLike, config_name, get_config
from .results import (
    PAPER_MODEL_ORDER,
    PRIOR_WORK_COLUMNS,
    PRIOR_WORK_ROWS,
    AccuracyRow,
    AreaRow,
    ComparisonColumn,
    ExperimentResult,
    GraphRow,
    InputSparsityRow,
    ProgramRow,
    SparsityBenefitRow,
    SparsitySupportRow,
    WeightSparsityRow,
)

__all__ = [
    "DEFAULT_SEED",
    "MAX_LAYERS_SAMPLED",
    "ExperimentSpec",
    "EXPERIMENTS",
    "get_experiment_spec",
    "list_experiments",
    "Experiment",
    "Session",
    "ENGINES",
    "DEFAULT_ENGINE",
]

#: The single default seed of the façade (threaded into workload profiling,
#: dataset generation, weight init and training shuffles).
DEFAULT_SEED = 0

#: Layers sampled per model by the Fig. 2 sparsity analyses (keeps the figure
#: regeneration fast while still averaging over early/middle/late layers).
MAX_LAYERS_SAMPLED = 6


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata of one registered experiment.

    Attributes:
        id: short stable identifier (``"fig7"``).
        reference: the paper artefact the experiment reproduces.
        title: one-line human description.
        runner: name of the :class:`Experiment` method that produces the rows.
        takes_models: whether the experiment accepts a ``models`` parameter.
        aggregates_models: True when the experiment's output aggregates
            *across* models (so a sweep must keep the model list together in
            one grid point rather than fanning one point out per model).
        defaults: canonical default parameters (merged under caller-supplied
            parameters so identical runs hash identically in the sweep cache).
        heavy: True when the experiment trains networks (minutes-scale).
    """

    id: str
    reference: str
    title: str
    runner: str
    takes_models: bool = False
    aggregates_models: bool = False
    defaults: Tuple[Tuple[str, Any], ...] = ()
    heavy: bool = False

    @property
    def default_params(self) -> Dict[str, Any]:
        """The canonical default parameters as a fresh mutable dict."""
        return dict(self.defaults)


#: Registry of every reproducible table/figure, in paper order.
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.id: spec
    for spec in (
        ExperimentSpec(
            id="fig2a",
            reference="Fig. 2(a)",
            title="zero-bit ratio of INT8 weights (binary / CSD / CSD+FTA)",
            runner="weight_sparsity",
            takes_models=True,
        ),
        ExperimentSpec(
            id="fig2b",
            reference="Fig. 2(b)",
            title="all-zero bit-column probability of input-feature groups",
            runner="input_sparsity",
            takes_models=True,
            defaults=(("group_sizes", (1, 8, 16)),),
        ),
        ExperimentSpec(
            id="fig7",
            reference="Fig. 7",
            title="speedup and energy saving over the dense PIM baseline",
            runner="speedup_energy",
            takes_models=True,
        ),
        ExperimentSpec(
            id="table1",
            reference="Table 1",
            title="sparsity-exploitation comparison among SRAM-PIM designs",
            runner="related_work",
        ),
        ExperimentSpec(
            id="table2",
            reference="Table 2",
            title="Top-1 accuracy of INT8 models before and after FTA",
            runner="accuracy",
            takes_models=True,
            defaults=(("epochs", 10), ("qat_epochs", 2)),
            heavy=True,
        ),
        ExperimentSpec(
            id="table3",
            reference="Table 3",
            title="detailed comparison with prior SRAM-PIM accelerators",
            runner="comparison",
            takes_models=True,
            aggregates_models=True,
        ),
        ExperimentSpec(
            id="table4",
            reference="Table 4",
            title="area breakdown of DB-PIM",
            runner="area",
        ),
        ExperimentSpec(
            id="program",
            reference="compiled path",
            title="whole-model compiled programs replayed on the trace "
            "simulator vs the analytical cycle model",
            runner="program_report",
            takes_models=True,
        ),
        ExperimentSpec(
            id="graph",
            reference="workload IR",
            title="graph structure of the workloads: nodes, joins, fused "
            "SIMD ops and feature-buffer residency",
            runner="graph_report",
            takes_models=True,
        ),
    )
}


def get_experiment_spec(experiment: str) -> ExperimentSpec:
    """Look an experiment spec up by id (case-insensitive)."""
    key = experiment.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment!r}; available: {list(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiment specs, in paper order."""
    return list(EXPERIMENTS.values())


class Experiment:
    """Uniform façade over the accelerator, simulator and NN pipeline.

    Args:
        config: hardware configuration -- a :class:`DBPIMConfig`, the name of
            a registered preset (see :mod:`repro.api.configs`) or ``None``
            for the paper's default.
        fta_config: FTA algorithm configuration shared by profiling, QAT and
            the functional accelerator (``None`` for the paper default).
        seed: the single RNG seed every stochastic stage derives from.
        input_group: IPU zero-detection group size used when profiling
            input activations (defaults to the configuration's group size).
        engine: registered cycle-model engine (see
            :mod:`repro.sim.engines`) -- ``"vectorized"`` (default, the
            NumPy batch kernel), ``"scalar"`` (the per-layer reference) or
            any backend registered via
            :func:`repro.sim.engines.register_engine`; every cycle-model
            engine is pinned bitwise-identical to the scalar reference by
            the conformance suite.
    """

    def __init__(
        self,
        config: ConfigLike = None,
        fta_config: Optional[FTAConfig] = None,
        seed: int = DEFAULT_SEED,
        input_group: Optional[int] = None,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.config = get_config(config)
        self.config_name = config_name(self.config)
        self.fta_config = fta_config
        self.seed = int(seed)
        if input_group is None:
            input_group = self.config.macro.input_group
        if int(input_group) <= 0:
            raise ValueError("input_group must be positive")
        self.input_group = int(input_group)
        self.cycle_model = CycleModel(self.config, engine=engine)
        self.engine = self.cycle_model.engine
        self.engine_spec = self.cycle_model.engine_spec
        self.area_model = AreaModel()
        self._profiles: Dict[str, ModelSparsityProfile] = {}
        self._dataset: Optional[SyntheticImageDataset] = None
        self._compiled: Dict[Tuple[str, str], CompiledModel] = {}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(config={self.config_name!r}, "
            f"seed={self.seed}, engine={self.engine!r})"
        )

    def with_config(self, config: ConfigLike) -> "Experiment":
        """A new session on another hardware config, sharing this session's
        expensive caches.

        Workload sparsity profiles depend only on (seed, FTA config, IPU
        group size) -- not on macro counts, clocks or sparsity flags -- so a
        design-space sweep over such knobs can reuse one profile cache
        instead of re-profiling per design point.  The clone derives its
        profiling group size from the *new* configuration; the cache is
        shared only when that group size matches this session's (otherwise
        the clone starts with a fresh cache and profiles correctly).
        """
        clone = type(self)(
            config=config,
            fta_config=self.fta_config,
            seed=self.seed,
            engine=self.engine,
        )
        if clone.input_group == self.input_group:
            clone._profiles = self._profiles  # shared mutable cache
        clone._dataset = self._dataset
        return clone

    # ------------------------------------------------------------------
    # Workload helpers
    # ------------------------------------------------------------------
    def _resolve_models(self, models: Optional[Sequence[str]]) -> Tuple[str, ...]:
        """Validate a model list (``None`` means all); caller casing is kept
        so returned rows carry the names the caller asked for."""
        if models is None:
            return tuple(list_workloads())
        names = tuple(str(name) for name in models)
        if not names:
            raise ValueError(
                "empty model list; pass None (or omit the argument) to run "
                f"every workload: {list_workloads()}"
            )
        for name in names:
            get_workload(name)  # raises KeyError with the available names
        return names

    def profile(self, model: str) -> ModelSparsityProfile:
        """The (cached) sparsity profile of one workload."""
        key = str(model).lower()
        if key not in self._profiles:
            self._profiles[key] = profile_model(
                get_workload(key),
                seed=self.seed,
                fta_config=self.fta_config,
                input_group=self.input_group,
            )
        return self._profiles[key]

    def dataset(self) -> SyntheticImageDataset:
        """The (cached) synthetic dataset of the accuracy experiments."""
        if self._dataset is None:
            self._dataset = SyntheticImageDataset.generate(
                num_classes=8,
                samples_per_class=30,
                test_samples_per_class=10,
                seed=self.seed,
            )
        return self._dataset

    def _sampled_layers(self, model: str) -> List:
        """Early/middle/late layer sample used by the Fig. 2 analyses."""
        workload = get_workload(model)
        layers = list(workload.layers)
        if len(layers) <= MAX_LAYERS_SAMPLED:
            return layers
        indices = np.linspace(0, len(layers) - 1, MAX_LAYERS_SAMPLED).astype(int)
        return [layers[i] for i in indices]

    # ------------------------------------------------------------------
    # Uniform low-level entry points
    # ------------------------------------------------------------------
    def run_layer(
        self, model: str, layer: Union[int, str] = 0, variant: str = "hybrid"
    ) -> LayerPerformance:
        """Analytical latency/energy of one layer of a workload.

        Args:
            model: workload name.
            layer: layer index or layer name inside the workload.
            variant: one of :data:`~repro.sim.cycle_model.SPARSITY_VARIANTS`.
        """
        profile = self.profile(model)
        if isinstance(layer, int):
            layer_profile = profile.layers[layer]
        else:
            matches = [p for p in profile.layers if p.layer.name == layer]
            if not matches:
                names = [p.layer.name for p in profile.layers]
                raise KeyError(f"unknown layer {layer!r} of {model!r}; available: {names}")
            layer_profile = matches[0]
        return self.cycle_model.run_layer(layer_profile, variant)

    def run_model(self, model: str, variant: str = "hybrid") -> ModelPerformance:
        """Analytical latency/energy of a whole workload under one variant."""
        return self.cycle_model.run_model(self.profile(model), variant)

    def run_variants(self, model: str) -> Dict[str, ModelPerformance]:
        """All four Fig. 7 variants (base/input/weight/hybrid) of one model.

        With the vectorized engine the four variants are evaluated as one
        batched array pass.
        """
        return self.cycle_model.run_all_variants(self.profile(model))

    def run_batch(
        self,
        models: Optional[Sequence[str]] = None,
        variants: Optional[Sequence[str]] = None,
    ) -> Dict[str, Dict[str, ModelPerformance]]:
        """Evaluate a (models x variants) grid in one vectorized pass.

        The batch-execution front door of the façade: every (model,
        variant) cell of the grid becomes one job of a single
        :meth:`repro.sim.cycle_model.CycleModel.run_batch` call, so an
        entire design-space axis is simulated as one NumPy array pass
        instead of nested per-model / per-variant loops.  (With
        ``engine="scalar"`` the same grid runs through the reference
        per-layer loop.)

        Args:
            models: workload names (``None`` for all five paper models).
            variants: Fig. 7 variant names, in output order (``None`` for
                all of :data:`~repro.sim.cycle_model.SPARSITY_VARIANTS`).

        Returns:
            Nested mapping ``{model: {variant: ModelPerformance}}`` in the
            requested model/variant order.
        """
        names = self._resolve_models(models)
        if variants is None:
            variant_list: Tuple[str, ...] = SPARSITY_VARIANTS
        else:
            variant_list = tuple(str(variant) for variant in variants)
            for variant in variant_list:
                self.cycle_model.variant_config(variant)  # validates eagerly
        jobs = [
            (self.profile(name), variant)
            for name in names
            for variant in variant_list
        ]
        performances = self.cycle_model.run_batch(jobs)
        grid: Dict[str, Dict[str, ModelPerformance]] = {}
        cursor = iter(performances)
        for name in names:
            grid[name] = {variant: next(cursor) for variant in variant_list}
        return grid

    def metrics(self, model: str, variant: str = "hybrid") -> SystemMetrics:
        """Table 3 system metrics of one workload under one variant."""
        return compute_metrics(
            self.run_model(model, variant), self.config, self.area_model
        )

    # ------------------------------------------------------------------
    # Compiled path: whole-model programs + trace simulation
    # ------------------------------------------------------------------
    def compile_model(
        self, model: str, variant: str = "hybrid"
    ) -> CompiledModel:
        """Compile one workload into a whole-model segmented program.

        Runs the pass-based pipeline
        (:func:`repro.compiler.pipeline.compile_model`) on the session's
        cached sparsity profile; results are memoised per (model, variant).

        Args:
            model: workload name.
            variant: one of :data:`~repro.sim.cycle_model.SPARSITY_VARIANTS`.
        """
        key = (str(model).lower(), str(variant))
        if key not in self._compiled:
            self._compiled[key] = compile_model(
                self.profile(model), config=self.config, variant=variant
            )
        return self._compiled[key]

    def trace_model(self, model: str, variant: str = "hybrid") -> ProgramTrace:
        """Compile one workload and replay it on the trace simulator."""
        return TraceSimulator(self.config).run(self.compile_model(model, variant))

    def execute_linear(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        variant: str = "hybrid",
        apply_fta: bool = True,
    ) -> LayerExecutionResult:
        """Bit-exact functional execution of ``weights @ inputs``.

        Dispatches to the functional :class:`DBPIMAccelerator` with the
        session configuration switched to the requested sparsity variant.
        """
        config = self.cycle_model.variant_config(variant)
        accelerator = DBPIMAccelerator(config, fta_config=self.fta_config)
        return accelerator.run_linear(weights, inputs, apply_fta=apply_fta)

    @staticmethod
    def speedup(baseline: ModelPerformance, improved: ModelPerformance) -> float:
        """Cycle-count speedup of ``improved`` over ``baseline``."""
        return CycleModel.speedup(baseline, improved)

    @staticmethod
    def energy_saving(baseline: ModelPerformance, improved: ModelPerformance) -> float:
        """Fractional energy saving of ``improved`` over ``baseline``."""
        return CycleModel.energy_saving(baseline, improved)

    # ------------------------------------------------------------------
    # Fig. 2 -- bit-level sparsity analyses
    # ------------------------------------------------------------------
    def weight_sparsity(
        self, models: Optional[Sequence[str]] = None
    ) -> List[WeightSparsityRow]:
        """Fig. 2(a): per-model zero-bit ratios of the three encodings."""
        rows = []
        for name in self._resolve_models(models):
            workload = get_workload(name)
            quantized_layers = []
            for layer in self._sampled_layers(name):
                float_weights = synthesize_layer_weights(
                    layer, workload.redundancy, self.seed
                )
                int_weights, _ = quantize_weights(float_weights, per_channel=True)
                quantized_layers.append(int_weights)
            report = analyze_weight_sparsity(quantized_layers)
            rows.append(
                WeightSparsityRow(
                    model=name,
                    binary_zero_ratio=report.binary,
                    csd_zero_ratio=report.csd,
                    fta_zero_ratio=report.fta,
                )
            )
        return rows

    def input_sparsity(
        self,
        models: Optional[Sequence[str]] = None,
        group_sizes: Tuple[int, ...] = (1, 8, 16),
    ) -> List[InputSparsityRow]:
        """Fig. 2(b): per-model zero bit-column ratios by group size."""
        rows = []
        for name in self._resolve_models(models):
            workload = get_workload(name)
            activations = np.concatenate(
                [
                    synthesize_activations(
                        layer, workload.activation_density, self.seed
                    )
                    for layer in self._sampled_layers(name)
                ]
            )
            rows.append(
                InputSparsityRow(
                    model=name,
                    zero_column_ratio=analyze_input_sparsity(
                        activations, tuple(group_sizes)
                    ),
                )
            )
        return rows

    # ------------------------------------------------------------------
    # Fig. 7 -- speedup / energy saving
    # ------------------------------------------------------------------
    def speedup_energy(
        self, models: Optional[Sequence[str]] = None
    ) -> List[SparsityBenefitRow]:
        """Fig. 7: per-model speedup and energy saving over the baseline.

        All requested models and all four variants are evaluated in a
        single batched cycle-model pass (see :meth:`run_batch`).
        """
        names = self._resolve_models(models)
        batch = self.run_batch(models=names)
        rows = []
        for name in names:
            runs = batch[name]
            base = runs["base"]
            speedup = {
                variant: self.cycle_model.speedup(base, runs[variant])
                for variant in ("input", "weight", "hybrid")
            }
            saving = {
                variant: self.cycle_model.energy_saving(base, runs[variant])
                for variant in ("input", "weight", "hybrid")
            }
            utilization = {
                variant: runs[variant].actual_utilization for variant in runs
            }
            rows.append(
                SparsityBenefitRow(
                    model=name,
                    speedup=speedup,
                    energy_saving=saving,
                    utilization=utilization,
                )
            )
        return rows

    # ------------------------------------------------------------------
    # Table 1 -- related-work feature matrix
    # ------------------------------------------------------------------
    def related_work_ours(self) -> SparsitySupportRow:
        """Derive the "Ours" column of Table 1 from the live configuration."""
        config = self.config
        targets = []
        removed = []
        if config.weight_sparsity:
            targets.append("W")
            removed.append("Zero W+B")
        if config.input_sparsity:
            targets.append("I")
            removed.append("Zero I+B")
        return SparsitySupportRow(
            design="DB-PIM (Ours)",
            sparsity_type=(
                "bit" if config.weight_sparsity or config.input_sparsity else "none"
            ),
            weight_or_input="+".join(targets) if targets else "-",
            digital=True,
            unstructured=True,
            ineffectual_mac_removed=" and ".join(removed) if removed else "-",
        )

    def related_work(self) -> List[SparsitySupportRow]:
        """Table 1: prior works plus the derived "Ours" row."""
        return list(PRIOR_WORK_ROWS) + [self.related_work_ours()]

    # ------------------------------------------------------------------
    # Table 2 -- accuracy study
    # ------------------------------------------------------------------
    def evaluate_accuracy(
        self,
        model: str,
        epochs: int = 10,
        qat_epochs: int = 2,
        dataset: Optional[SyntheticImageDataset] = None,
    ) -> AccuracyRow:
        """Train one mini model and measure float / INT8 / FTA accuracy.

        Args:
            model: paper model name (``"alexnet"`` ... ``"efficientnetb0"``).
            epochs: float pre-training epochs.
            qat_epochs: FTA-aware QAT fine-tuning epochs (0 disables QAT).
            dataset: synthetic dataset; the session's shared dataset is used
                when omitted.
        """
        dataset = dataset or self.dataset()
        network = build_model(model, num_classes=dataset.num_classes, seed=self.seed)
        trainer = Trainer(network, dataset, batch_size=32, seed=self.seed)
        trainer.train(epochs=epochs)
        if qat_epochs > 0:
            trainer.fine_tune_with_qat(
                epochs=qat_epochs,
                apply_fta=True,
                fta_config=self.fta_config,
                learning_rate=0.01,
            )
        float_accuracy = trainer.evaluate()

        records = quantize_model(network, fta_config=self.fta_config)
        apply_weight_override(records, use_fta=False)
        int8_accuracy = trainer.evaluate()
        restore_weights(records)
        apply_weight_override(records, use_fta=True)
        fta_accuracy = trainer.evaluate()
        restore_weights(records)
        return AccuracyRow(
            model=model,
            float_accuracy=float_accuracy,
            int8_accuracy=int8_accuracy,
            fta_accuracy=fta_accuracy,
        )

    def accuracy(
        self,
        models: Optional[Sequence[str]] = None,
        epochs: int = 10,
        qat_epochs: int = 2,
    ) -> List[AccuracyRow]:
        """Table 2 for a list of models (shared dataset across models)."""
        if models is None:
            models = PAPER_MODEL_ORDER
        names = self._resolve_models(models)
        dataset = self.dataset()
        return [
            self.evaluate_accuracy(
                name, epochs=epochs, qat_epochs=qat_epochs, dataset=dataset
            )
            for name in names
        ]

    # ------------------------------------------------------------------
    # Table 3 -- comparison with prior works
    # ------------------------------------------------------------------
    def ours_column(
        self, models: Optional[Sequence[str]] = None
    ) -> ComparisonColumn:
        """Measure the DB-PIM column of Table 3 from this implementation."""
        config = self.config
        area = self.area_model.breakdown(config)
        utilization: Dict[str, float] = {}
        best_tops_w = 0.0
        peak_tops = 0.0
        peak_per_macro = 0.0
        for name in self._resolve_models(models):
            performance = self.run_model(name, "hybrid")
            metrics = compute_metrics(performance, config)
            utilization[name] = metrics.actual_utilization
            best_tops_w = max(best_tops_w, metrics.tops_per_watt)
            peak_tops = metrics.peak_tops
            peak_per_macro = metrics.peak_gops_per_macro
        return ComparisonColumn(
            design="DB-PIM (this repo)",
            technology_nm=config.technology_nm,
            die_area_mm2=area.total_mm2,
            sram_size_kb=config.buffers.total_sram_bytes / 1024,
            pim_size_kb=config.pim_size_kilobytes,
            num_macros=config.num_macros,
            actual_utilization=utilization,
            peak_throughput_tops=peak_tops,
            peak_gops_per_macro=peak_per_macro,
            energy_efficiency_tops_w=best_tops_w,
            efficiency_per_area=best_tops_w / area.total_mm2,
        )

    def comparison(
        self, models: Optional[Sequence[str]] = None
    ) -> List[ComparisonColumn]:
        """Table 3: literature columns plus the measured DB-PIM column."""
        return list(PRIOR_WORK_COLUMNS) + [self.ours_column(models)]

    # ------------------------------------------------------------------
    # Table 4 -- area breakdown
    # ------------------------------------------------------------------
    def area(self) -> List[AreaRow]:
        """Table 4 rows (plus the total as the last row)."""
        breakdown = self.area_model.breakdown(self.config)
        fractions = breakdown.fractions()
        rows = [
            AreaRow(module=name, area_mm2=value, breakdown=fractions[name])
            for name, value in breakdown.as_dict().items()
        ]
        rows.append(
            AreaRow(module="Total", area_mm2=breakdown.total_mm2, breakdown=1.0)
        )
        return rows

    # ------------------------------------------------------------------
    # "program" -- compiled whole-model programs vs the analytical model
    # ------------------------------------------------------------------
    def program_report(
        self, models: Optional[Sequence[str]] = None
    ) -> List[ProgramRow]:
        """The ``program`` experiment: compile, replay and cross-check.

        For every requested workload and every Fig. 7 variant, compiles the
        whole-model program through the pass pipeline, replays it on the
        trace simulator and compares the traced broadcast cycles against
        the analytical cycle model (evaluated in one batched pass).

        Args:
            models: workload names (``None`` for all five paper models).

        Returns:
            One :class:`~repro.api.results.ProgramRow` per model, carrying
            per-variant instruction/segment counts, traced vs analytical
            cycles, scheduled cycles and the worst relative error.
        """
        names = self._resolve_models(models)
        simulator = TraceSimulator(self.config)
        batch = self.run_batch(models=names)
        rows: List[ProgramRow] = []
        for name in names:
            instructions: Dict[str, int] = {}
            segments: Dict[str, int] = {}
            trace_cycles: Dict[str, float] = {}
            analytical_cycles: Dict[str, float] = {}
            scheduled_cycles: Dict[str, float] = {}
            hidden_fraction: Dict[str, float] = {}
            worst = 0.0
            for variant in SPARSITY_VARIANTS:
                compiled = self.compile_model(name, variant)
                trace = simulator.run(compiled)
                performance = batch[name][variant]
                instructions[variant] = len(compiled.program)
                segments[variant] = len(compiled.program.segments)
                trace_cycles[variant] = trace.compute_cycles
                analytical_cycles[variant] = performance.total_cycles
                scheduled_cycles[variant] = trace.total_cycles
                hidden_fraction[variant] = trace.breakdown.hidden_fraction
                worst = max(worst, relative_cycle_error(trace, performance))
            rows.append(
                ProgramRow(
                    model=name,
                    instructions=instructions,
                    segments=segments,
                    trace_cycles=trace_cycles,
                    analytical_cycles=analytical_cycles,
                    scheduled_cycles=scheduled_cycles,
                    hidden_fraction=hidden_fraction,
                    max_relative_error=worst,
                )
            )
        return rows

    # ------------------------------------------------------------------
    # "graph" -- workload graph-structure report
    # ------------------------------------------------------------------
    def graph_report(
        self, models: Optional[Sequence[str]] = None
    ) -> List[GraphRow]:
        """The ``graph`` experiment: summarise each workload's DAG.

        Reports the node/edge/join structure of every requested workload's
        :class:`~repro.workloads.graph.ModelGraph`, the branch bytes its
        fused joins re-read (multi-producer feature traffic) and the
        worst-case branch residency the liveness planner keeps in the
        feature buffer.  Legacy linear workloads (no graph) degrade to a
        pure chain summary.

        Args:
            models: workload names (``None`` for all five paper models;
                transformer workloads by explicit name, e.g.
                ``models=["vit_tiny"]``).
        """
        rows: List[GraphRow] = []
        for name in self._resolve_models(models):
            workload = get_workload(name)
            graph = workload.graph
            if graph is None:
                rows.append(
                    GraphRow(
                        model=name,
                        family=workload_family(name),
                        nodes=len(workload.layers),
                        weighted_layers=len(workload.layers),
                        simd_ops=0,
                        joins=0,
                        edges=len(workload.layers),
                        total_macs=workload.total_macs,
                        residual_feature_bytes=0,
                        max_resident_feature_bytes=0,
                    )
                )
                continue
            # The same fusion rule the compiler pass applies, so this
            # report can never disagree with CompiledLayerInfo.
            residual = sum(
                decision.residual_bytes
                for decision in plan_elementwise_fusion(graph)
            )
            intervals = plan_feature_liveness(graph)
            layer_count = len(graph.weighted_nodes())
            max_resident = max(
                (
                    resident_payload_at(intervals, position)
                    for position in range(layer_count)
                ),
                default=0,
            )
            rows.append(
                GraphRow(
                    model=name,
                    family=workload_family(name),
                    nodes=len(graph),
                    weighted_layers=layer_count,
                    simd_ops=len(graph.simd_nodes()),
                    joins=len(graph.join_nodes()),
                    edges=len(graph.edges()),
                    total_macs=workload.total_macs,
                    residual_feature_bytes=residual,
                    max_resident_feature_bytes=max_resident,
                )
            )
        return rows

    # ------------------------------------------------------------------
    # Generic dispatch
    # ------------------------------------------------------------------
    def run(self, experiment: str, **params: Any) -> ExperimentResult:
        """Run one registered experiment and wrap it in a typed result.

        Args:
            experiment: experiment id (``"fig2a"`` ... ``"table4"``; see
                :func:`list_experiments`).
            **params: experiment parameters (``models=...`` for the
                model-parameterised experiments, ``epochs=`` /
                ``qat_epochs=`` for the accuracy study).

        Returns:
            An :class:`ExperimentResult` carrying the typed rows plus the
            canonicalised run parameters, seed and configuration name.
        """
        spec = get_experiment_spec(experiment)
        merged = spec.default_params
        merged.update(params)
        allowed = set(spec.default_params) | ({"models"} if spec.takes_models else set())
        unknown = set(merged) - allowed
        if unknown:
            raise TypeError(
                f"experiment {spec.id!r} got unexpected parameters {sorted(unknown)}; "
                f"allowed: {sorted(allowed) or 'none'}"
            )
        if spec.takes_models:
            merged["models"] = self._resolve_models(merged.get("models"))
        rows = getattr(self, spec.runner)(**merged)
        return ExperimentResult(
            experiment=spec.id,
            rows=tuple(rows),
            params=merged,
            seed=self.seed,
            config=self.config_name,
        )


    # ------------------------------------------------------------------
    # Sweep service front door (session-pinned)
    # ------------------------------------------------------------------
    def run_sweep(
        self,
        experiments: Optional[Sequence[str]] = None,
        models: Optional[Sequence[str]] = None,
        *,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Any] = None,
        params_by_experiment: Optional[Mapping[str, Mapping[str, Any]]] = None,
        executor: Optional[str] = None,
        shards: Optional[int] = None,
        journal: Optional[Any] = None,
        resume: bool = False,
        cache_backend: Optional[str] = None,
        transport: Optional[str] = None,
        sweep_dir: Optional[Any] = None,
        transport_options: Optional[Mapping[str, Any]] = None,
    ):
        """Run a sweep grid pinned to this session's config, seed and engine.

        Delegates to :func:`repro.api.sweep.run_sweep` with
        ``configs=(this session's preset,)``, ``seeds=(this session's
        seed,)`` and this session's cycle-model engine, so the shard
        transports (local pools and the distributed broker), the on-disk
        result cache and the resumable JSONL journal are all available
        from a session object.  If the session was built from an
        unregistered configuration instance, it is registered under its
        content-derived ``custom-<digest>`` name first so shard workers
        (including process and ``repro worker`` workers, which receive the
        configuration with the shard) can resolve it.

        Args:
            experiments: experiment ids (default: every non-training
                experiment).
            models: workload names for the model-parameterised experiments.
            max_workers: worker threads/processes.
            cache_dir: directory for the JSON result cache.
            params_by_experiment: extra per-experiment parameters.
            executor: deprecated alias for ``transport`` (see
                :func:`repro.api.sweep.run_sweep`).
            shards: target shard count.
            journal: path of the append-only ``sweep.jsonl`` run journal.
            resume: restore finished points from ``journal``.
            cache_backend: ``"files"`` or ``"packed"`` (``None`` for
                :data:`repro.api.sweep.DEFAULT_CACHE_BACKEND`; see
                :func:`repro.api.sweep.run_sweep`).
            transport: shard transport by registry name (``None`` for
                :data:`repro.api.sweep.DEFAULT_TRANSPORT`; see
                :func:`repro.api.sweep.run_sweep`).
            sweep_dir: shared coordination directory of a distributed
                transport.
            transport_options: extra keyword arguments for the transport
                factory.

        Returns:
            The :class:`~repro.api.results.SweepResult` of the grid.
        """
        from .configs import list_configs, register_config
        from .sweep import DEFAULT_CACHE_BACKEND, run_sweep as _run_sweep

        if cache_backend is None:
            cache_backend = DEFAULT_CACHE_BACKEND
        if self.config_name not in list_configs():
            register_config(self.config_name, self.config)
        return _run_sweep(
            experiments=experiments,
            models=models,
            configs=(self.config_name,),
            seeds=(self.seed,),
            max_workers=max_workers,
            cache_dir=cache_dir,
            params_by_experiment=params_by_experiment,
            engine=self.engine,
            executor=executor,
            shards=shards,
            journal=journal,
            resume=resume,
            cache_backend=cache_backend,
            transport=transport,
            sweep_dir=sweep_dir,
            transport_options=transport_options,
        )


#: An :class:`Experiment` is stateful (profile/dataset caches) and scoped to
#: one (config, seed) pair -- "session" is the name that emphasises reuse
#: across many experiment calls.
Session = Experiment
