"""Text renderers for every table/figure (and for typed results).

These are the aligned-text formatters that used to live in the individual
``repro.eval.*`` driver modules; the eval modules keep re-exporting them
under their historical ``format_table`` names.  :func:`format_result`
dispatches on an :class:`~repro.api.results.ExperimentResult`'s experiment
id, which is what the ``repro`` CLI prints.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..arch.config import SPARSITY_VARIANTS
from .results import (
    AccuracyRow,
    AreaRow,
    ComparisonColumn,
    ExperimentResult,
    GraphRow,
    InputSparsityRow,
    ProgramRow,
    SparsityBenefitRow,
    SparsitySupportRow,
    SweepResult,
    WeightSparsityRow,
)

__all__ = [
    "format_weight_sparsity",
    "format_input_sparsity",
    "format_speedup_energy",
    "format_related_work",
    "format_accuracy",
    "format_comparison",
    "format_area",
    "format_program",
    "format_graph",
    "format_result",
    "format_sweep",
]


def format_weight_sparsity(rows: Sequence[WeightSparsityRow]) -> str:
    """Render Fig. 2(a) as an aligned text table."""
    lines = [f"{'Model':<16}{'Ori_Zero':>10}{'CSD_Zero':>10}{'Ours':>10}"]
    for row in rows:
        lines.append(
            f"{row.model:<16}{row.binary_zero_ratio:>9.1%}"
            f"{row.csd_zero_ratio:>9.1%}{row.fta_zero_ratio:>9.1%}"
        )
    return "\n".join(lines)


def format_input_sparsity(rows: Sequence[InputSparsityRow]) -> str:
    """Render Fig. 2(b) as an aligned text table."""
    if not rows:
        return ""
    group_sizes = sorted(rows[0].zero_column_ratio)
    header = f"{'Model':<16}" + "".join(f"{'group ' + str(g):>12}" for g in group_sizes)
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.model:<16}"
            + "".join(f"{row.zero_column_ratio[g]:>11.1%}" for g in group_sizes)
        )
    return "\n".join(lines)


def format_speedup_energy(rows: Sequence[SparsityBenefitRow]) -> str:
    """Render Fig. 7 as aligned text (speedup / energy-saving per variant)."""
    header = (
        f"{'Model':<16}{'in x':>8}{'wgt x':>8}{'hyb x':>8}"
        f"{'in sav':>9}{'wgt sav':>9}{'hyb sav':>9}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.model:<16}"
            f"{row.speedup['input']:>7.2f}{row.speedup['weight']:>8.2f}"
            f"{row.speedup['hybrid']:>8.2f}"
            f"{row.energy_saving['input']:>8.1%}{row.energy_saving['weight']:>8.1%}"
            f"{row.energy_saving['hybrid']:>8.1%}"
        )
    return "\n".join(lines)


def format_related_work(rows: Sequence[SparsitySupportRow]) -> str:
    """Render Table 1 as aligned text."""
    header = (
        f"{'Design':<18}{'Type':>7}{'W/I':>6}{'D/A':>5}{'U/S':>5}"
        f"  {'Ineffectual MAC removed'}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.design:<18}{row.sparsity_type:>7}{row.weight_or_input:>6}"
            f"{'D' if row.digital else 'A':>5}{'U' if row.unstructured else 'S':>5}"
            f"  {row.ineffectual_mac_removed}"
        )
    return "\n".join(lines)


def format_accuracy(rows: Sequence[AccuracyRow]) -> str:
    """Render Table 2 as aligned text."""
    header = (
        f"{'Model':<16}{'W/I':>8}{'Ori. Accu.':>12}{'FTA Accu.':>12}{'Accu. Drop':>12}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.model:<16}{'8b/8b':>8}{row.int8_accuracy:>11.2%}"
            f"{row.fta_accuracy:>11.2%}{row.accuracy_drop:>11.2%}"
        )
    return "\n".join(lines)


def format_comparison(columns: Sequence[ComparisonColumn]) -> str:
    """Render Table 3 as aligned text (one design per line)."""
    header = (
        f"{'Design':<20}{'nm':>4}{'mm2':>7}{'SRAM KB':>9}{'PIM KB':>8}"
        f"{'macros':>8}{'GOPS/macro':>12}{'TOPS/W':>9}{'eff/mm2':>9}{'  U_act'}"
    )
    lines = [header]
    for column in columns:
        if column.actual_utilization:
            utilization = ", ".join(
                f"{name}={value:.1%}"
                for name, value in column.actual_utilization.items()
            )
        else:
            utilization = "n/a"
        lines.append(
            f"{column.design:<20}{column.technology_nm:>4}{column.die_area_mm2:>7.2f}"
            f"{column.sram_size_kb:>9.0f}{column.pim_size_kb:>8.0f}"
            f"{column.num_macros:>8}{column.peak_gops_per_macro:>12.1f}"
            f"{column.energy_efficiency_tops_w:>9.2f}{column.efficiency_per_area:>9.2f}"
            f"  {utilization}"
        )
    return "\n".join(lines)


def format_area(rows: Sequence[AreaRow]) -> str:
    """Render Table 4 as aligned text."""
    lines = [f"{'Modules':<32}{'Area (mm2)':>12}{'Breakdown':>12}"]
    for row in rows:
        lines.append(f"{row.module:<32}{row.area_mm2:>12.5f}{row.breakdown:>11.2%}")
    return "\n".join(lines)


def format_program(rows: Sequence[ProgramRow]) -> str:
    """Render the compiled-program experiment as aligned text.

    One line per (model, variant): program size, trace vs analytical
    broadcast cycles, the scheduled total and the overlap-hidden fraction;
    the model's worst relative error is printed on its ``hybrid`` line.
    """
    header = (
        f"{'Model':<16}{'variant':>8}{'instr':>9}{'segs':>6}"
        f"{'trace Mcyc':>12}{'model Mcyc':>12}{'sched Mcyc':>12}"
        f"{'hidden':>8}{'max err':>10}"
    )
    lines = [header]
    for row in rows:
        # Canonical variant order regardless of dict key order (JSON
        # round-trips through the sweep cache sort mapping keys).
        variants = [v for v in SPARSITY_VARIANTS if v in row.trace_cycles]
        variants += [v for v in row.trace_cycles if v not in SPARSITY_VARIANTS]
        for variant in variants:
            error = (
                f"{row.max_relative_error:>10.1e}" if variant == "hybrid" else f"{'':>10}"
            )
            lines.append(
                f"{row.model:<16}{variant:>8}{row.instructions[variant]:>9}"
                f"{row.segments[variant]:>6}"
                f"{row.trace_cycles[variant] / 1e6:>12.3f}"
                f"{row.analytical_cycles[variant] / 1e6:>12.3f}"
                f"{row.scheduled_cycles[variant] / 1e6:>12.3f}"
                f"{row.hidden_fraction[variant]:>8.1%}{error}"
            )
    return "\n".join(lines)


def format_graph(rows: Sequence[GraphRow]) -> str:
    """Render the workload graph-structure experiment as aligned text."""
    header = (
        f"{'Model':<18}{'family':>12}{'nodes':>7}{'layers':>8}{'simd':>6}"
        f"{'joins':>7}{'edges':>7}{'MMACs':>9}{'resid KB':>10}{'peak KB':>9}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.model:<18}{row.family:>12}{row.nodes:>7}"
            f"{row.weighted_layers:>8}{row.simd_ops:>6}{row.joins:>7}"
            f"{row.edges:>7}{row.total_macs / 1e6:>9.1f}"
            f"{row.residual_feature_bytes / 1024:>10.1f}"
            f"{row.max_resident_feature_bytes / 1024:>9.1f}"
        )
    return "\n".join(lines)


_FORMATTERS: Dict[str, Callable[[Sequence], str]] = {
    "fig2a": format_weight_sparsity,
    "fig2b": format_input_sparsity,
    "fig7": format_speedup_energy,
    "table1": format_related_work,
    "table2": format_accuracy,
    "table3": format_comparison,
    "table4": format_area,
    "program": format_program,
    "graph": format_graph,
}


def format_result(result: ExperimentResult) -> str:
    """Render an experiment result with the formatter of its experiment id."""
    try:
        formatter = _FORMATTERS[result.experiment]
    except KeyError:
        raise KeyError(
            f"no formatter for experiment {result.experiment!r}; "
            f"available: {sorted(_FORMATTERS)}"
        ) from None
    return formatter(result.rows)


def format_sweep(sweep: SweepResult) -> str:
    """Render every result of a sweep, separated by headers."""
    sections = []
    for result in sweep.results:
        header = (
            f"--- {result.experiment} (config={result.config}, seed={result.seed}, "
            f"params={result.params}) ---"
        )
        sections.append(f"{header}\n{format_result(result)}")
    summary = (
        f"{len(sweep.results)} result(s); cache: {sweep.cache_hits} hit(s), "
        f"{sweep.cache_misses} miss(es)"
    )
    if sweep.stats is not None:
        stats = sweep.stats
        summary += (
            f"; executor={stats.executor} x{stats.max_workers}, "
            f"{stats.shards} shard(s), {stats.journaled_points} journaled, "
            f"{stats.elapsed_s:.2f}s"
        )
    return "\n\n".join(sections + [summary])
