"""Typed result schema of the ``repro.api`` façade.

Two layers live here:

* the **row records** of every paper table/figure (``WeightSparsityRow``,
  ``AccuracyRow``, ``ComparisonColumn``, ...) -- previously scattered across
  the ``repro.eval.*`` driver modules, now centralised so the façade, the
  sweep runner and the CLI all speak one vocabulary.  The eval modules keep
  re-exporting them under their historical names.
* the **result envelopes**: :class:`ExperimentResult` (one experiment run:
  id, parameters, seed, config, typed rows) and :class:`SweepResult` (a
  grid of experiment results plus cache statistics).  Both round-trip
  losslessly through ``to_dict()`` / ``to_json()`` / ``from_json()``, which
  is what the sweep runner's on-disk cache and the CLI's ``--json`` output
  are built on.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "SCHEMA_VERSION",
    "PAPER_MODEL_ORDER",
    "WeightSparsityRow",
    "InputSparsityRow",
    "SparsityBenefitRow",
    "SparsitySupportRow",
    "AccuracyRow",
    "ComparisonColumn",
    "AreaRow",
    "ProgramRow",
    "GraphRow",
    "PRIOR_WORK_ROWS",
    "PRIOR_WORK_COLUMNS",
    "ROW_TYPES",
    "row_to_dict",
    "row_from_dict",
    "ExperimentResult",
    "SweepStats",
    "SweepResult",
]

#: Version stamp embedded in every serialised result; bump when the schema
#: changes incompatibly so stale cache entries are never deserialised.
SCHEMA_VERSION = 1

#: Paper model names in Table 2 order.
PAPER_MODEL_ORDER = ("alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0")


# ---------------------------------------------------------------------------
# Row records (one frozen dataclass per table/figure row)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WeightSparsityRow:
    """One bar group of Fig. 2(a)."""

    model: str
    binary_zero_ratio: float
    csd_zero_ratio: float
    fta_zero_ratio: float


@dataclass(frozen=True)
class InputSparsityRow:
    """One bar group of Fig. 2(b)."""

    model: str
    zero_column_ratio: Dict[int, float]


@dataclass(frozen=True)
class SparsityBenefitRow:
    """Speedups and energy savings of one model (one bar group of Fig. 7)."""

    model: str
    speedup: Dict[str, float]
    energy_saving: Dict[str, float]
    utilization: Dict[str, float]


@dataclass(frozen=True)
class SparsitySupportRow:
    """One column of Table 1 (transposed to a row record here)."""

    design: str
    sparsity_type: str  # "value" or "bit"
    weight_or_input: str  # "W", "I" or "W+I"
    digital: bool
    unstructured: bool
    ineffectual_mac_removed: str


@dataclass(frozen=True)
class AccuracyRow:
    """One row of Table 2."""

    model: str
    float_accuracy: float
    int8_accuracy: float
    fta_accuracy: float

    @property
    def accuracy_drop(self) -> float:
        """Drop of the FTA model relative to the plain INT8 model."""
        return self.int8_accuracy - self.fta_accuracy


@dataclass(frozen=True)
class ComparisonColumn:
    """One design (column) of Table 3."""

    design: str
    technology_nm: int
    die_area_mm2: float
    sram_size_kb: float
    pim_size_kb: float
    num_macros: int
    actual_utilization: Dict[str, float]
    peak_throughput_tops: float
    peak_gops_per_macro: float
    energy_efficiency_tops_w: float
    efficiency_per_area: float


@dataclass(frozen=True)
class AreaRow:
    """One row of Table 4."""

    module: str
    area_mm2: float
    breakdown: float


@dataclass(frozen=True)
class GraphRow:
    """Graph-structure summary of one workload (the ``graph`` experiment).

    Attributes:
        model: workload name.
        family: workload family (``"paper"`` or ``"transformer"``).
        nodes: operator nodes of the graph.
        weighted_layers: macro-mapped layers (the linearized schedule).
        simd_ops: SIMD nodes (add/concat/softmax) fused into epilogues.
        joins: branch merge points -- nodes consuming several produced
            values (add/concat joins and two-operand attention matmuls).
        edges: producer -> consumer edges.
        total_macs: multiply-accumulates of one inference.
        residual_feature_bytes: branch bytes graph joins re-read (the
            multi-producer feature traffic the trace simulator accounts).
        max_resident_feature_bytes: worst-case branch bytes parked in the
            feature buffer across any layer of the schedule.
    """

    model: str
    family: str
    nodes: int
    weighted_layers: int
    simd_ops: int
    joins: int
    edges: int
    total_macs: int
    residual_feature_bytes: int
    max_resident_feature_bytes: int


@dataclass(frozen=True)
class ProgramRow:
    """Compiled-program summary of one workload (the ``program`` experiment).

    Every dict field is keyed by Fig. 7 variant name (``"base"``,
    ``"input"``, ``"weight"``, ``"hybrid"``).

    Attributes:
        model: workload name.
        instructions: encoded instructions of the whole-model program.
        segments: instruction-buffer refills of the program.
        trace_cycles: broadcast cycles measured by replaying the program on
            the trace simulator.
        analytical_cycles: broadcast cycles of the analytical cycle model
            (the cross-check reference).
        scheduled_cycles: trace cycles including the non-hidden
            load/SIMD/write-back work the analytical model does not price.
        hidden_fraction: fraction of serial cycles the overlap scheduler
            hides (double buffering + hoisted prefetch).
        max_relative_error: worst ``|trace - analytical| / analytical``
            over the four variants (contractually below
            :data:`repro.sim.trace.TRACE_TOLERANCE`).
    """

    model: str
    instructions: Dict[str, int]
    segments: Dict[str, int]
    trace_cycles: Dict[str, float]
    analytical_cycles: Dict[str, float]
    scheduled_cycles: Dict[str, float]
    hidden_fraction: Dict[str, float]
    max_relative_error: float


#: Literature rows of Table 1.
PRIOR_WORK_ROWS = (
    SparsitySupportRow("Yue et al. [12]", "value", "W", False, False, "Zero W+V"),
    SparsitySupportRow("SDP [11]", "value", "W", True, False, "Zero W+V"),
    SparsitySupportRow("Liu et al. [13]", "value", "W", True, True, "Zero W+V"),
    SparsitySupportRow("Tu et al. [14]", "bit", "I", True, True, "Zero I+B"),
    SparsitySupportRow("TT@CIM [15]", "bit", "W", True, True, "Zero W+B"),
)

#: Literature columns of Table 3 (numbers as reported in the paper; the
#: utilisation entries are the representative values the paper quotes).
PRIOR_WORK_COLUMNS = (
    ComparisonColumn(
        design="Yue et al. [12]", technology_nm=65, die_area_mm2=12.0,
        sram_size_kb=294, pim_size_kb=8, num_macros=4,
        actual_utilization={"resnet18": 0.3204}, peak_throughput_tops=0.10,
        peak_gops_per_macro=24.69, energy_efficiency_tops_w=2.37,
        efficiency_per_area=2.97,
    ),
    ComparisonColumn(
        design="SDP [11]", technology_nm=28, die_area_mm2=6.07,
        sram_size_kb=384, pim_size_kb=128, num_macros=512,
        actual_utilization={"resnet50": 0.4864}, peak_throughput_tops=26.21,
        peak_gops_per_macro=51.19, energy_efficiency_tops_w=107.60,
        efficiency_per_area=17.73,
    ),
    ComparisonColumn(
        design="Liu et al. [13]", technology_nm=28, die_area_mm2=3.93,
        sram_size_kb=96, pim_size_kb=144, num_macros=96,
        actual_utilization={}, peak_throughput_tops=3.33,
        peak_gops_per_macro=34.68, energy_efficiency_tops_w=25.22,
        efficiency_per_area=6.42,
    ),
    ComparisonColumn(
        design="Tu et al. [14]", technology_nm=28, die_area_mm2=14.36,
        sram_size_kb=192, pim_size_kb=128, num_macros=128,
        actual_utilization={}, peak_throughput_tops=3.55,
        peak_gops_per_macro=27.73, energy_efficiency_tops_w=101.0,
        efficiency_per_area=7.03,
    ),
    ComparisonColumn(
        design="TT@CIM [15]", technology_nm=28, die_area_mm2=8.97,
        sram_size_kb=114, pim_size_kb=128, num_macros=16,
        actual_utilization={"resnet20": 0.50}, peak_throughput_tops=0.40,
        peak_gops_per_macro=25.1, energy_efficiency_tops_w=13.75,
        efficiency_per_area=1.53,
    ),
)


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------
#: Row record type of each experiment id.
ROW_TYPES: Dict[str, type] = {
    "fig2a": WeightSparsityRow,
    "fig2b": InputSparsityRow,
    "fig7": SparsityBenefitRow,
    "table1": SparsitySupportRow,
    "table2": AccuracyRow,
    "table3": ComparisonColumn,
    "table4": AreaRow,
    "program": ProgramRow,
    "graph": GraphRow,
}

#: Row dict fields whose keys are integers (JSON stringifies mapping keys,
#: so these are converted back on deserialisation).
_INT_KEY_FIELDS = frozenset({"zero_column_ratio"})


def _jsonify(value: Any) -> Any:
    """Recursively convert a value to canonical JSON-safe Python types."""
    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        # numpy scalar -> native Python scalar
        return value.item()
    return value


def row_to_dict(row: Any) -> Dict[str, Any]:
    """JSON-safe plain-dict form of one row record."""
    return _jsonify(dataclasses.asdict(row))


def row_from_dict(experiment: str, payload: Mapping[str, Any]) -> Any:
    """Reconstruct the typed row record of ``experiment`` from its dict form."""
    try:
        row_type = ROW_TYPES[experiment]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment!r}; available: {sorted(ROW_TYPES)}"
        ) from None
    kwargs = dict(payload)
    for name in _INT_KEY_FIELDS & kwargs.keys():
        kwargs[name] = {int(key): value for key, value in kwargs[name].items()}
    return row_type(**kwargs)


class _JsonEnvelope:
    """Shared serialisation plumbing: JSON text and atomic file round-trips
    built on the subclass's ``to_dict`` / ``from_dict``."""

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str):
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the envelope to ``path`` as JSON, atomically.

        The payload is written to a uniquely named temporary file in the
        destination directory and moved into place with ``os.replace``, so
        a reader can never observe a truncated file and concurrent writers
        (parallel sweep workers sharing one cache directory) can never
        interleave into a corrupt entry -- the last complete write wins.
        """
        path = Path(path)
        handle, temporary = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(self.to_json())
            os.replace(temporary, path)
        except BaseException:
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path]):
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def __hash__(self) -> int:
        # The generated dataclass hash would choke on dict-typed fields;
        # the canonical JSON form is equality-consistent and hashable.
        return hash(self.to_json())


@dataclass(frozen=True, eq=True)
class ExperimentResult(_JsonEnvelope):
    """Canonical envelope of one experiment run.

    Attributes:
        experiment: experiment id (``"fig7"``, ``"table2"``, ...).
        rows: the typed row records of the table/figure.
        params: the (canonicalised, JSON-safe) parameters of the run.
        seed: the single RNG seed the run was derived from.
        config: name of the hardware configuration preset (or a
            ``custom-<digest>`` tag for unregistered configurations).
        schema_version: serialisation schema version stamp.
    """

    experiment: str
    rows: Tuple[Any, ...]
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    config: str = "paper-28nm"
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(self.rows))
        object.__setattr__(self, "params", _jsonify(dict(self.params)))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # Keep the mixin's JSON-based hash: the dataclass decorator would
    # otherwise generate one that chokes on the dict-typed fields.
    __hash__ = _JsonEnvelope.__hash__

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe, stable key order)."""
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "config": self.config,
            "seed": self.seed,
            "params": self.params,
            "rows": [row_to_dict(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a typed result from its plain-dict form.

        Raises:
            ValueError: if the payload's schema version is unsupported.
        """
        version = payload.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"result schema version {version} is not supported "
                f"(expected {SCHEMA_VERSION})"
            )
        experiment = payload["experiment"]
        return cls(
            experiment=experiment,
            rows=tuple(row_from_dict(experiment, row) for row in payload["rows"]),
            params=dict(payload.get("params", {})),
            seed=int(payload.get("seed", 0)),
            config=payload.get("config", "paper-28nm"),
            schema_version=version,
        )


@dataclass(frozen=True)
class SweepStats:
    """Execution statistics of one sweep invocation.

    Attached to :attr:`SweepResult.stats` by the sweep service for
    observability, but deliberately **excluded** from the serialised
    payload (and from equality): wall time and shard layout depend on the
    machine, the cache state and how a previous run was interrupted, while
    the canonical :class:`SweepResult` payload of a resumed sweep must stay
    byte-identical to an uninterrupted run.

    Attributes:
        executor: backend that ran the shards (``"serial"``, ``"thread"``
            or ``"process"``).
        max_workers: worker count of the executor pool.
        shards: shards the planner produced for this invocation.
        warm_points: points planned as on-disk cache loads.
        cold_points: points planned as simulator executions.
        journaled_points: points restored from the run journal (resume).
        elapsed_s: wall time of the whole sweep, in seconds.
    """

    executor: str
    max_workers: int = 1
    shards: int = 0
    warm_points: int = 0
    cold_points: int = 0
    journaled_points: int = 0
    elapsed_s: float = 0.0


@dataclass(frozen=True, eq=True)
class SweepResult(_JsonEnvelope):
    """The outcome of one sweep: per-point results plus cache statistics.

    Attributes:
        results: per-point experiment results, in grid order.
        cache_hits: points deserialised from the on-disk cache.
        cache_misses: points that executed the simulator.
        schema_version: serialisation schema version stamp.
        stats: executor/shard/timing statistics of the invocation that
            produced this result (see :class:`SweepStats`); ``None`` on
            results rebuilt from JSON.  Not serialised and not compared.
    """

    results: Tuple[ExperimentResult, ...]
    cache_hits: int = 0
    cache_misses: int = 0
    schema_version: int = SCHEMA_VERSION
    stats: Optional[SweepStats] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    __hash__ = _JsonEnvelope.__hash__

    def filter(self, experiment: str) -> List[ExperimentResult]:
        """All point results of one experiment id, in grid order."""
        return [result for result in self.results if result.experiment == experiment]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe, stable key order)."""
        return {
            "schema_version": self.schema_version,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepResult":
        """Rebuild a sweep result (and its per-point results) from a dict."""
        return cls(
            results=tuple(
                ExperimentResult.from_dict(result) for result in payload["results"]
            ),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_misses=int(payload.get("cache_misses", 0)),
            schema_version=payload.get("schema_version", SCHEMA_VERSION),
        )
