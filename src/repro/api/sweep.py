"""Sharded, process-parallel sweep service with resumable JSONL journaling.

Regenerating the paper's whole evaluation section -- or a design-space grid
of it -- is a fan-out of independent experiment points.  This module turns
that fan-out into a small *service*:

* :func:`build_grid` expands (experiments x models x configs x seeds) into
  :class:`SweepPoint` s, splitting the model-parameterised experiments into
  one point per model so the fan-out is maximally parallel;
* :class:`ShardPlanner` partitions the grid into :class:`SweepShard` s keyed
  by **cache state**: points whose on-disk cache entry already exists land
  in cheap warm (I/O-bound) shards, cold points are grouped by
  (config, seed, engine) -- so one worker session amortises configuration
  construction and profile caching across a whole shard -- and chunked to
  the requested shard count;
* :func:`run_shard` executes one shard: cached points are deserialised,
  cold single-model points of the same experiment are merged into **one
  batched** ``Experiment.run`` call that rides the vectorized engine's
  :func:`repro.sim.vectorized.simulate_jobs` shard-sized kernel, and the
  per-point results are split back out (bitwise identical to point-at-a-time
  execution -- the vectorized kernel is elementwise per layer);
* :func:`run_sweep` dispatches the shards over a pluggable *shard
  transport* (:mod:`repro.dist`) -- ``"process"``
  (:class:`~concurrent.futures.ProcessPoolExecutor`, the fast path for
  cold CPU-bound sweeps: the cycle model holds the GIL in pure-Python
  mapping code, so threads serialise), ``"thread"`` (warm-cache /
  I/O-bound sweeps; keeps user-registered presets visible without
  shipping them), ``"serial"``, or ``"broker"`` (a distributed
  lease-and-requeue fabric coordinating ``repro worker`` processes over a
  shared ``sweep_dir``; every transport produces byte-identical results;
  the historical ``executor=`` knob remains as a deprecated alias) --
  and, when a ``journal`` path is given, streams every finished shard to
  an append-only ``sweep.jsonl`` (:class:`SweepJournal`).  An
  interrupted sweep re-invoked with
  ``resume=True`` restores journaled points without recomputing them and
  reproduces the uninterrupted run's ``results`` byte-for-byte (the whole
  serialised :class:`~repro.api.results.SweepResult` when journaling
  without a pre-populated cache; the hit/miss counters report the work
  each invocation actually performed).

The on-disk point cache is keyed by a content hash of the point (experiment
id, canonical parameters, seed, engine, schema/package versions and the full
hardware configuration digest); entries are written atomically (unique temp
file + ``os.replace``) and unreadable entries are treated as misses with a
warning instead of poisoning later runs.

Example::

    from repro.api import run_sweep

    sweep = run_sweep(experiments=("fig7",), transport="process",
                      cache_dir=".repro-cache", journal="sweep.jsonl")
    for result in sweep.filter("fig7"):
        print(result.params["models"], result.rows[0].speedup["hybrid"])
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..arch.config import DBPIMConfig, SPARSITY_VARIANTS
from ..dist.locks import PidFileLock, pid_alive
from ..dist.transport import (
    DEFAULT_TRANSPORT,
    ShardTransport,
    get_transport,
    transport_names,
)
from ..sim.cycle_model import DEFAULT_ENGINE
from ..sim.engines import get_engine, resolve_cycle_model_engine
from ..store import PackedResultStore, PackedStoreLockedError
from .configs import config_digest, get_config, register_config
from .experiment import EXPERIMENTS, Experiment, get_experiment_spec
from .results import (
    SCHEMA_VERSION,
    ExperimentResult,
    SweepResult,
    SweepStats,
    _jsonify,
)

__all__ = [
    "DEFAULT_SWEEP_EXPERIMENTS",
    "EXECUTORS",
    "DEFAULT_EXECUTOR",
    "DEFAULT_TRANSPORT",
    "CACHE_BACKENDS",
    "DEFAULT_CACHE_BACKEND",
    "SweepPoint",
    "SweepShard",
    "ShardPlan",
    "ShardPlanner",
    "SweepJournal",
    "SweepJournalLockedError",
    "SweepPointError",
    "build_grid",
    "cache_keys_for_grid",
    "run_point",
    "run_shard",
    "run_sweep",
]

#: Experiments included in a sweep by default: everything except the
#: training-based accuracy study (minutes-scale; opt in explicitly).
DEFAULT_SWEEP_EXPERIMENTS = (
    "fig2a",
    "fig2b",
    "fig7",
    "table1",
    "table3",
    "table4",
    "program",
    "graph",
)

#: The historical executor backends, kept as the accepted values of the
#: deprecated ``executor=`` knob.  Each name is also a registered shard
#: transport (see :mod:`repro.dist.transport`); new callers should pass
#: ``transport=`` instead, which additionally accepts distributed
#: transports such as ``"broker"``.
EXECUTORS = ("serial", "thread", "process")

#: Backend used when none is requested (the value the deprecated
#: ``executor=`` knob defaulted to; identical to
#: :data:`repro.dist.transport.DEFAULT_TRANSPORT`).  ``"thread"`` is the
#: conservative default (warm caches deserialise I/O-bound,
#: user-registered presets stay visible without shipping); pass
#: ``transport="process"`` for cold CPU-bound grids on multi-core
#: machines.
DEFAULT_EXECUTOR = "thread"

#: Selectable sweep cache backends: ``"files"`` is the legacy layout (one
#: atomic ``{cache_key}.json`` per point), ``"packed"`` is the append-only
#: single-artifact store (:class:`repro.store.PackedResultStore`) whose
#: warm path is one index probe plus one batched sequential read for the
#: whole grid.  Both are keyed by the same content-hash cache keys, so a
#: directory can be migrated in place
#: (:func:`repro.store.migrate_files_to_packed`) and the backends produce
#: byte-identical :class:`~repro.api.results.SweepResult` s.
CACHE_BACKENDS = ("files", "packed")

#: Cache backend used when none is requested (the legacy per-file layout).
DEFAULT_CACHE_BACKEND = "files"


@dataclass(frozen=True)
class SweepPoint:
    """One independent cell of a sweep grid.

    Attributes:
        experiment: experiment id (``"fig7"``, ``"table4"``, ...).
        config: registered hardware preset name.
        seed: RNG seed of the point.
        params: extra experiment parameters (canonicalised to JSON types).
        engine: registered cycle-model engine evaluating the point
            (``"vectorized"``, ``"scalar"``, or any backend registered via
            :func:`repro.sim.engines.register_engine`).
    """

    experiment: str
    config: str = "paper-28nm"
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    engine: str = DEFAULT_ENGINE

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _jsonify(dict(self.params)))
        resolve_cycle_model_engine(self.engine)

    def describe(self) -> str:
        """One-line human identification of the point (used by errors)."""
        return (
            f"experiment={self.experiment!r} config={self.config!r} "
            f"seed={self.seed} engine={self.engine!r} params={self.params!r}"
        )

    def cache_key(self) -> str:
        """Content hash identifying this point's result in the cache.

        Covers the experiment id, canonical parameters, seed, the engine's
        registered cache token (:attr:`repro.sim.engines.EngineSpec.cache_token`,
        the engine name by default -- so historical keys are byte-for-byte
        stable, pinned by ``tests/engines/test_cache_keys.py``), the full
        configuration contents (not just the preset name), the result
        schema version and the package version -- so renaming a preset is
        harmless while changing its contents, switching engines, bumping an
        engine's cache token, or upgrading to a release whose simulator
        produces different numbers, invalidates the cached entries.  (The
        engines are pinned numerically identical, but keying them
        separately keeps the cache trustworthy even while one of them is
        being modified.)

        The key is memoized on the instance after the first call (the
        point is frozen, so it can never change): the planner, cache path
        and journal all ask for it, and re-hashing the full configuration
        digest each time dominated the warm path.  Grids compute keys in
        one batch via :func:`cache_keys_for_grid`.
        """
        memo = self.__dict__.get("_cache_key")
        if memo is None:
            from .. import __version__

            payload = {
                "schema_version": SCHEMA_VERSION,
                "version": __version__,
                "experiment": self.experiment,
                "params": self.params,
                "seed": self.seed,
                "engine": get_engine(self.engine).cache_token,
                "config_digest": config_digest(get_config(self.config)),
            }
            canonical = json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )
            memo = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_cache_key", memo)
        return memo


class SweepPointError(RuntimeError):
    """One grid point failed; carries the offending :class:`SweepPoint`.

    Raised by :func:`run_shard` / :func:`run_sweep` instead of letting an
    anonymous worker traceback surface after the whole grid drains: the
    message identifies the failing (experiment, config, seed, engine,
    params) cell and chains the original exception, and outstanding shard
    futures are cancelled.
    """

    def __init__(self, message: str, point: Optional[SweepPoint] = None) -> None:
        super().__init__(message)
        self.point = point

    def __reduce__(self):
        """Preserve the ``point`` attribute across process boundaries."""
        return (type(self), (self.args[0], self.point))


def build_grid(
    experiments: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    configs: Sequence[str] = ("paper-28nm",),
    seeds: Sequence[int] = (0,),
    params_by_experiment: Optional[Mapping[str, Mapping[str, Any]]] = None,
    engine: str = DEFAULT_ENGINE,
) -> List[SweepPoint]:
    """Expand a sweep request into independent grid points.

    Model-parameterised experiments become one point per model (so five
    models of Fig. 7 fan out to five workers); model-free experiments
    (Table 1, Table 4) contribute a single point per (config, seed).

    Args:
        experiments: experiment ids (default: every non-training experiment).
        models: workload names (default: all five paper models).
        configs: registered preset names.
        seeds: RNG seeds.
        params_by_experiment: extra per-experiment parameters, e.g.
            ``{"table2": {"epochs": 4}}``.
        engine: cycle-model engine evaluating every point (part of each
            point's cache key).
    """
    ids = tuple(experiments) if experiments is not None else DEFAULT_SWEEP_EXPERIMENTS
    extra = dict(params_by_experiment or {})
    resolve_cycle_model_engine(engine)  # validate eagerly, with suggestions
    if models is not None:
        if not models:
            raise ValueError(
                "empty model list; pass None (or omit the argument) to sweep "
                "every workload"
            )
        for model in models:
            _get_workload(model)  # validate eagerly, before any worker starts
    points: List[SweepPoint] = []
    for config in configs:
        get_config(config)  # validate eagerly, before any worker starts
        for seed in seeds:
            for experiment in ids:
                spec = get_experiment_spec(experiment)
                overrides = dict(extra.get(spec.id, {}))
                model_list = tuple(models) if models is not None else _all_models()
                if spec.takes_models and not spec.aggregates_models:
                    for model in model_list:
                        points.append(
                            SweepPoint(
                                experiment=spec.id,
                                config=config,
                                seed=int(seed),
                                params={**overrides, "models": [model]},
                                engine=engine,
                            )
                        )
                elif spec.takes_models:
                    # Experiments that aggregate across models (e.g. the
                    # Table 3 DB-PIM column) keep the list in one point so
                    # sweep results match a direct `Experiment.run`.
                    points.append(
                        SweepPoint(
                            experiment=spec.id,
                            config=config,
                            seed=int(seed),
                            params={**overrides, "models": list(model_list)},
                            engine=engine,
                        )
                    )
                else:
                    points.append(
                        SweepPoint(
                            experiment=spec.id,
                            config=config,
                            seed=int(seed),
                            params=overrides,
                            engine=engine,
                        )
                    )
    return points


def cache_keys_for_grid(points: Sequence[SweepPoint]) -> Tuple[str, ...]:
    """Compute every point's :meth:`~SweepPoint.cache_key` in one batch.

    Byte-identical to calling ``point.cache_key()`` per point (pinned by
    the goldens in ``tests/engines/test_cache_keys.py``), but the shared
    payload pieces are canonicalised **once per distinct value** instead of
    once per point: the engine cache token, the experiment id and -- the
    expensive one -- the full configuration digest
    (:func:`repro.api.configs.config_digest` serialises the entire nested
    configuration) are each JSON-encoded once per (engine, experiment,
    config) seen in the grid, and the canonical payload is assembled by
    string splicing in the exact key order ``json.dumps(...,
    sort_keys=True)`` would produce.  Each computed key is memoized on its
    (frozen) point, so later ``point.cache_key()`` calls are lookups.
    """
    from .. import __version__

    dumps = json.dumps
    # json.dumps(payload, sort_keys=True, separators=(",", ":")) emits the
    # keys alphabetically: config_digest < engine < experiment < params <
    # schema_version < seed < version.  The splice below reproduces that
    # byte stream exactly; scalar/string fragments need no separators.
    schema_seed = ',"schema_version":' + dumps(SCHEMA_VERSION) + ',"seed":'
    version_tail = ',"version":' + dumps(__version__) + "}"
    engine_memo: Dict[str, str] = {}
    config_memo: Dict[str, str] = {}
    experiment_memo: Dict[str, str] = {}
    keys: List[str] = []
    for point in points:
        memo = point.__dict__.get("_cache_key")
        if memo is not None:
            keys.append(memo)
            continue
        engine_json = engine_memo.get(point.engine)
        if engine_json is None:
            engine_json = dumps(get_engine(point.engine).cache_token)
            engine_memo[point.engine] = engine_json
        digest_json = config_memo.get(point.config)
        if digest_json is None:
            digest_json = dumps(config_digest(get_config(point.config)))
            config_memo[point.config] = digest_json
        experiment_json = experiment_memo.get(point.experiment)
        if experiment_json is None:
            experiment_json = dumps(point.experiment)
            experiment_memo[point.experiment] = experiment_json
        canonical = (
            '{"config_digest":'
            + digest_json
            + ',"engine":'
            + engine_json
            + ',"experiment":'
            + experiment_json
            + ',"params":'
            + dumps(point.params, sort_keys=True, separators=(",", ":"))
            + schema_seed
            + dumps(point.seed)
            + version_tail
        )
        key = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        object.__setattr__(point, "_cache_key", key)
        keys.append(key)
    return tuple(keys)


def _all_models() -> Tuple[str, ...]:
    from ..workloads.models import list_workloads

    return tuple(list_workloads())


def _get_workload(name: str):
    from ..workloads.models import get_workload

    return get_workload(name)


# ---------------------------------------------------------------------------
# Point cache (atomic writes, corruption-tolerant reads)
# ---------------------------------------------------------------------------
def _cache_path(point: SweepPoint, cache_dir: Union[str, Path]) -> Path:
    """On-disk location of one point's cached result."""
    return Path(cache_dir) / f"{point.cache_key()}.json"


def _load_cached(
    point: SweepPoint, cache_dir: Optional[Union[str, Path]]
) -> Optional[ExperimentResult]:
    """Deserialise a point's cached result, or ``None`` on a miss.

    A truncated or otherwise unreadable entry must never brick the sweep:
    it is reported with a :class:`RuntimeWarning` and treated as a miss, so
    the point is recomputed and the entry atomically overwritten.  The
    entry is opened directly -- no ``exists()`` pre-check -- so a hit costs
    one filesystem lookup instead of two and there is no window for the
    entry to vanish between the check and the open.
    """
    if cache_dir is None:
        return None
    path = _cache_path(point, cache_dir)
    try:
        return ExperimentResult.load(path)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError) as error:
        warnings.warn(
            f"ignoring unreadable sweep-cache entry {path} "
            f"({type(error).__name__}: {error}); recomputing the point",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def _store_cached(
    point: SweepPoint,
    result: ExperimentResult,
    cache_dir: Optional[Union[str, Path]],
) -> None:
    """Write a point's result to the cache (atomic temp-file + replace).

    The cache directory is created lazily, only when a write actually
    fails for lack of it: :func:`run_sweep` creates the directory once up
    front, so the per-point write path stays a single temp-file+replace
    instead of paying an extra ``mkdir`` stat per point.
    """
    if cache_dir is None:
        return
    path = _cache_path(point, cache_dir)
    try:
        result.save(path)
    except FileNotFoundError:
        path.parent.mkdir(parents=True, exist_ok=True)
        result.save(path)


def run_point(
    point: SweepPoint, cache_dir: Optional[Union[str, Path]] = None
) -> Tuple[ExperimentResult, bool]:
    """Execute (or load) one grid point.

    Returns:
        ``(result, cache_hit)`` -- ``cache_hit`` is True when the result was
        deserialised from the on-disk cache without running any simulation.
    """
    cached = _load_cached(point, cache_dir)
    if cached is not None:
        return cached, True
    session = Experiment(
        config=point.config, seed=point.seed, engine=point.engine
    )
    result = session.run(point.experiment, **point.params)
    _store_cached(point, result, cache_dir)
    return result, False


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepShard:
    """A contiguous batch of grid points executed by one worker.

    Attributes:
        index: shard sequence number (stable across identical plans).
        indices: positions of the shard's points in the original grid.
        points: the grid points, in grid order.
        warm: True when every point had an on-disk cache entry at planning
            time (the shard is expected to be I/O-bound deserialisation).
        configs: the resolved ``(preset name, configuration)`` pairs of the
            shard's points.  Shipped with the shard so a process worker --
            whose fresh interpreter only knows the built-in presets -- can
            register user-defined presets before executing.
    """

    index: int
    indices: Tuple[int, ...]
    points: Tuple[SweepPoint, ...]
    warm: bool = False
    configs: Tuple[Tuple[str, DBPIMConfig], ...] = ()

    def __len__(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class ShardPlan:
    """The output of :meth:`ShardPlanner.plan`.

    Attributes:
        shards: the shards to execute, in planning order.
        journaled: grid indices whose results were restored from the run
            journal (excluded from every shard).
        cache_keys: the content hash of every grid point, in grid order
            (computed once here so execution and journaling reuse them).
    """

    shards: Tuple[SweepShard, ...]
    journaled: Tuple[int, ...]
    cache_keys: Tuple[str, ...]

    @property
    def cold_points(self) -> int:
        """Points that will run the simulator (no cache entry at plan time)."""
        return sum(len(s) for s in self.shards if not s.warm)

    @property
    def warm_points(self) -> int:
        """Points expected to deserialise from the on-disk cache."""
        return sum(len(s) for s in self.shards if s.warm)


class ShardPlanner:
    """Partition a sweep grid into executable shards keyed by cache state.

    The planner is deterministic: the same grid, cache state and journal
    state always produce an identical :class:`ShardPlan` (pinned by the
    service tests), which is what makes interrupted sweeps resumable.

    Points are partitioned in three steps:

    1. points already present in the run journal are set aside (their
       results are restored without touching a worker);
    2. the remainder is split by cache state -- *warm* points (cache entry
       exists) are grouped separately from *cold* points, so a mostly-warm
       re-run does not occupy process workers with deserialisation;
    3. within each temperature, points are grouped by ``(seed, engine)``
       -- configurations deliberately stay *mixed* inside one group, so
       cold points that differ only in config can ride the config-fused
       grid kernel (:func:`repro.sim.vectorized.simulate_grid`) of one
       worker, sharing one workload-profile cache across the per-config
       sessions -- and each group is chunked into shards of roughly
       ``total / shards`` points, preserving grid order.

    The warm/cold split costs ONE batched cache probe for the whole grid,
    not one ``stat`` per point: the packed backend intersects the grid's
    keys with the store's in-memory index
    (:meth:`repro.store.PackedResultStore.probe`), the per-file backend
    lists the cache directory once and matches key stems against it.

    Args:
        cache_dir: the sweep's on-disk result cache (``None`` disables the
            warm/cold split; every point plans as cold).
        shards: target shard count per temperature (default: twice the
            worker count, so the pool stays busy while shards finish at
            different speeds).
        max_workers: the worker count the sweep will run with (used only to
            derive the default shard count).
        cache_backend: ``"files"`` (legacy per-file cache) or ``"packed"``
            (append-only :class:`repro.store.PackedResultStore`); see
            :data:`CACHE_BACKENDS`.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        cache_backend: str = DEFAULT_CACHE_BACKEND,
    ) -> None:
        if shards is not None and shards <= 0:
            raise ValueError("shards must be positive")
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if cache_backend not in CACHE_BACKENDS:
            raise ValueError(
                f"unknown cache backend {cache_backend!r}; expected one of "
                f"{CACHE_BACKENDS}"
            )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.shards = shards
        self.max_workers = max_workers
        self.cache_backend = cache_backend
        self.store: Optional[PackedResultStore] = (
            PackedResultStore(self.cache_dir)
            if cache_backend == "packed" and self.cache_dir is not None
            else None
        )

    def _probe_cache(self, keys: Sequence[str]) -> frozenset:
        """The subset of ``keys`` with a cache entry -- one batched probe."""
        if self.cache_dir is None:
            return frozenset()
        if self.store is not None:
            return self.store.probe(keys)
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return frozenset()
        stems = {name[:-5] for name in names if name.endswith(".json")}
        return frozenset(key for key in keys if key in stems)

    def _target_shards(self) -> int:
        """The shard count used when none was requested explicitly."""
        if self.shards is not None:
            return self.shards
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, workers * 2)

    def plan(
        self,
        grid: Sequence[SweepPoint],
        journaled_keys: Optional[Sequence[str]] = None,
    ) -> ShardPlan:
        """Partition ``grid`` into shards.

        Args:
            grid: the sweep points, in grid order (see :func:`build_grid`).
            journaled_keys: cache keys already present in the run journal;
                matching points are excluded from every shard and reported
                via :attr:`ShardPlan.journaled`.
        """
        keys = cache_keys_for_grid(grid)
        known = frozenset(journaled_keys or ())
        present = self._probe_cache(keys)
        journaled: List[int] = []
        # (warm, seed, engine) -> [(grid index, point)]; configs mix inside
        # a group so one worker can fuse the config axis.
        groups: Dict[Tuple[bool, int, str], List[Tuple[int, SweepPoint]]] = {}
        totals = {True: 0, False: 0}
        for index, (point, key) in enumerate(zip(grid, keys)):
            if key in known:
                journaled.append(index)
                continue
            warm = key in present
            group_key = (warm, point.seed, point.engine)
            groups.setdefault(group_key, []).append((index, point))
            totals[warm] += 1

        target = self._target_shards()
        chunk_sizes = {
            warm: max(1, -(-total // target)) for warm, total in totals.items()
        }
        shards: List[SweepShard] = []
        for (warm, _seed, _engine), members in groups.items():
            size = chunk_sizes[warm]
            for start in range(0, len(members), size):
                chunk = members[start : start + size]
                resolved: Dict[str, DBPIMConfig] = {}
                for _, point in chunk:
                    if point.config not in resolved:
                        resolved[point.config] = get_config(point.config)
                shards.append(
                    SweepShard(
                        index=len(shards),
                        indices=tuple(i for i, _ in chunk),
                        points=tuple(p for _, p in chunk),
                        warm=warm,
                        configs=tuple(resolved.items()),
                    )
                )
        return ShardPlan(
            shards=tuple(shards),
            journaled=tuple(journaled),
            cache_keys=keys,
        )


# ---------------------------------------------------------------------------
# Shard execution (runs inside worker threads / processes)
# ---------------------------------------------------------------------------
#: Experiments whose single-model points may be merged into one batched
#: ``Experiment.run`` call inside a shard: per-model rows are computed
#: independently (and, on the vectorized engine, elementwise per layer), so
#: the merged run is bitwise identical to point-at-a-time execution.  The
#: training-based experiments are excluded defensively.
_MERGEABLE_EXPERIMENTS = frozenset(
    spec.id
    for spec in EXPERIMENTS.values()
    if spec.takes_models and not spec.aggregates_models and not spec.heavy
)


def _session_key(point: SweepPoint) -> Tuple[str, int, str]:
    """The (config, seed, engine) triple one worker session is built from."""
    return (point.config, point.seed, point.engine)


#: Experiments whose runner consumes ``CycleModel.run_batch`` over the full
#: Fig. 7 variant set per model -- the shape the cross-config fused prime
#: pass precomputes.  Priming any other experiment would burn cycles on
#: results its runner never asks the cycle model for.
_PRIMEABLE_EXPERIMENTS = frozenset({"fig7"})


def _prime_key(point: SweepPoint) -> Optional[Tuple[str, str, str, int, str]]:
    """Cross-config fuse bucket of a point, or ``None`` when not fusible.

    Points that share everything *except* the hardware configuration --
    same primeable experiment, same single model, same non-model
    parameters, same seed, same batch-capable engine -- evaluate one
    workload profile under many configs, which is exactly the shape
    :func:`repro.sim.vectorized.simulate_grid` fuses into one pass.
    """
    if point.experiment not in _PRIMEABLE_EXPERIMENTS:
        return None
    merged = _merge_key(point)
    if merged is None:
        return None
    if not get_engine(point.engine).batch:
        return None
    return (
        point.experiment,
        merged[1],
        str(point.params["models"][0]),
        point.seed,
        point.engine,
    )


def _merge_key(point: SweepPoint) -> Optional[Tuple[str, str]]:
    """Batch-merge bucket of a point, or ``None`` when not mergeable.

    Mergeable points are single-model points of a mergeable experiment;
    the bucket key includes every non-model parameter so only runs with
    identical extra parameters are batched together.
    """
    if point.experiment not in _MERGEABLE_EXPERIMENTS:
        return None
    models = point.params.get("models")
    if not isinstance(models, list) or len(models) != 1:
        return None
    rest = {k: v for k, v in point.params.items() if k != "models"}
    canonical = json.dumps(rest, sort_keys=True, separators=(",", ":"))
    return (point.experiment, canonical)


def _run_single(
    session: Experiment,
    index: int,
    point: SweepPoint,
    cache_dir: Optional[Union[str, Path]],
) -> Tuple[int, ExperimentResult, bool]:
    """Execute one cold point on an existing session, wrapping failures."""
    try:
        result = session.run(point.experiment, **point.params)
    except Exception as error:
        raise SweepPointError(
            f"sweep point failed: {point.describe()}: "
            f"{type(error).__name__}: {error}",
            point,
        ) from error
    _store_cached(point, result, cache_dir)
    return (index, result, False)


def _run_merged(
    session: Experiment,
    members: Sequence[Tuple[int, SweepPoint]],
    cache_dir: Optional[Union[str, Path]],
) -> List[Tuple[int, ExperimentResult, bool]]:
    """Execute a bucket of mergeable single-model points as one batch.

    The models are concatenated into one ``Experiment.run`` call (one
    vectorized cycle-model pass for the whole bucket) and the returned rows
    are split back into per-point results identical to individual runs.
    Any failure falls back to point-at-a-time execution so the offending
    point is identified precisely.
    """
    first = members[0][1]
    models = [point.params["models"][0] for _, point in members]
    try:
        merged_params = dict(first.params)
        merged_params["models"] = models
        combined = session.run(first.experiment, **merged_params)
        if len(combined.rows) != len(members):
            raise ValueError(
                f"merged run returned {len(combined.rows)} rows for "
                f"{len(members)} points"
            )
    except Exception:
        # Localise the failure (and keep healthy points progressing).
        return [
            _run_single(session, index, point, cache_dir)
            for index, point in members
        ]
    outcomes: List[Tuple[int, ExperimentResult, bool]] = []
    for (index, point), row in zip(members, combined.rows):
        params = dict(combined.params)
        params["models"] = list(point.params["models"])
        result = ExperimentResult(
            experiment=combined.experiment,
            rows=(row,),
            params=params,
            seed=combined.seed,
            config=combined.config,
        )
        _store_cached(point, result, cache_dir)
        outcomes.append((index, result, False))
    return outcomes


def _prime_sessions(
    pending: Sequence[Tuple[int, SweepPoint]],
    get_session,
) -> None:
    """Precompute cross-config cycle-model results through the fused grid.

    Cold points that differ only in hardware configuration (see
    :func:`_prime_key`) evaluate one workload profile under many configs.
    Instead of letting each per-config session recompute its slice, a
    single :meth:`~repro.sim.cycle_model.CycleModel.run_batch` call with an
    explicit cross-config grid rides
    :func:`repro.sim.vectorized.simulate_grid` -- one fused 2-D pass, no
    per-config profile copies -- and each session is primed with its slice
    (served, byte-identically, when the point later runs).  Any failure
    here is non-fatal: priming is a pure performance hint, the normal
    per-point path recomputes whatever was not primed.
    """
    groups: Dict[Tuple, List[SweepPoint]] = {}
    for _, point in pending:
        key = _prime_key(point)
        if key is not None:
            groups.setdefault(key, []).append(point)
    for (_, _, model, seed, engine), points in groups.items():
        config_names: List[str] = []
        for point in points:
            if point.config not in config_names:
                config_names.append(point.config)
        if len(config_names) < 2:
            continue
        try:
            sessions = [
                get_session(name, seed, engine) for name in config_names
            ]
            base = sessions[0]
            # Sessions profiling with a different IPU group size own a
            # different profile object; priming them from the base profile
            # would never be served (identity-checked), so skip them.
            sessions = [
                session
                for session in sessions
                if session.input_group == base.input_group
            ]
            if len(sessions) < 2:
                continue
            profile = base.profile(model)
            jobs = [
                (profile, variant)
                for _ in sessions
                for variant in SPARSITY_VARIANTS
            ]
            configs = [
                session.config
                for session in sessions
                for _ in SPARSITY_VARIANTS
            ]
            performances = base.cycle_model.run_batch(jobs, configs=configs)
            stride = len(SPARSITY_VARIANTS)
            for position, session in enumerate(sessions):
                start = position * stride
                session.cycle_model.prime(
                    jobs[start : start + stride],
                    performances[start : start + stride],
                )
        except Exception:
            continue  # priming is best-effort; points recompute normally


def run_shard(
    shard: SweepShard, cache_dir: Optional[Union[str, Path]] = None
) -> List[Tuple[int, ExperimentResult, bool]]:
    """Execute one shard in the current process.

    This is the worker entry point of every executor backend (it is a
    module-level function so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it).  Cached points are deserialised first; the remaining
    cold points are grouped by (config, seed, engine) onto one
    :class:`~repro.api.experiment.Experiment` session each -- same-(seed,
    engine) sessions cloned via
    :meth:`~repro.api.experiment.Experiment.with_config` so they share one
    workload-profile cache -- and mergeable single-model points ride one
    batched vectorized call per experiment (see
    :func:`repro.sim.vectorized.simulate_jobs`).  Before the per-session
    loop, points differing only in configuration are precomputed together
    through the config-fused grid kernel
    (:func:`repro.sim.vectorized.simulate_grid`) and their sessions primed
    with the byte-identical slices (see :func:`_prime_sessions`).

    Args:
        shard: the shard to execute (see :class:`ShardPlanner`).
        cache_dir: the sweep's on-disk result cache (``None`` disables it).

    Returns:
        ``(grid index, result, cache_hit)`` triples, sorted by grid index.

    Raises:
        SweepPointError: when a point fails; identifies the offending point.
    """
    for name, config in shard.configs:
        try:
            known = get_config(name)
        except KeyError:
            known = None
        if known != config:
            # A fresh worker interpreter only knows the built-in presets;
            # materialise the parent's registration (including presets the
            # parent overrode, which a spawn-started worker would otherwise
            # silently resolve to the built-in contents).
            register_config(name, config, overwrite=True)
    outcomes: List[Tuple[int, ExperimentResult, bool]] = []
    pending: List[Tuple[int, SweepPoint]] = []
    for index, point in zip(shard.indices, shard.points):
        cached = _load_cached(point, cache_dir)
        if cached is not None:
            outcomes.append((index, cached, True))
        else:
            pending.append((index, point))

    sessions: Dict[Tuple[str, int, str], List[Tuple[int, SweepPoint]]] = {}
    for index, point in pending:
        sessions.setdefault(_session_key(point), []).append((index, point))

    # One Experiment per (config, seed, engine); same-(seed, engine)
    # sessions are cloned via with_config so they share one profile cache.
    session_cache: Dict[Tuple[str, int, str], Experiment] = {}

    def _get_session(config: str, seed: int, engine: str) -> Experiment:
        key = (config, seed, engine)
        session = session_cache.get(key)
        if session is None:
            for (_, other_seed, other_engine), other in session_cache.items():
                if other_seed == seed and other_engine == engine:
                    session = other.with_config(config)
                    break
            else:
                session = Experiment(config=config, seed=seed, engine=engine)
            session_cache[key] = session
        return session

    _prime_sessions(pending, _get_session)
    for (config, seed, engine), members in sessions.items():
        session = _get_session(config, seed, engine)
        buckets: Dict[Optional[Tuple[str, str]], List[Tuple[int, SweepPoint]]] = {}
        for index, point in members:
            buckets.setdefault(_merge_key(point), []).append((index, point))
        for merge_key, bucket in buckets.items():
            if merge_key is not None and len(bucket) > 1:
                outcomes.extend(_run_merged(session, bucket, cache_dir))
            else:
                for index, point in bucket:
                    outcomes.append(
                        _run_single(session, index, point, cache_dir)
                    )
    outcomes.sort(key=lambda outcome: outcome[0])
    return outcomes


# ---------------------------------------------------------------------------
# Run journal (append-only JSONL, flushed per shard)
# ---------------------------------------------------------------------------
class SweepJournalLockedError(RuntimeError):
    """Another live sweep holds the journal's exclusive lock.

    Two concurrent sweeps appending to one ``sweep.jsonl`` would interleave
    their shard writes into a journal neither run could resume from, so
    :meth:`SweepJournal.acquire` fails fast with this error instead.  The
    message names the lock file and the PID of the holder; if that process
    is genuinely gone the lock is stale and is reclaimed automatically.
    """


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe of another process on this host.

    Thin wrapper over the shared :func:`repro.dist.locks.pid_alive` (kept
    under the historical private name).
    """
    return pid_alive(pid)


class SweepJournal:
    """Append-only JSONL journal making sweeps resumable.

    The journal is a plain-text ``sweep.jsonl``: a header line followed by
    one JSON object per finished grid point, appended (and flushed +
    fsynced) per completed *shard*.  Each point line carries::

        {"kind": "point", "schema_version": 1, "cache_key": "...",
         "experiment": "...", "config": "...", "seed": 0,
         "engine": "...", "params": {...}, "cache_hit": false,
         "result": {... ExperimentResult.to_dict() ...}}

    When the sweep runs on the packed cache backend, the result payload --
    by far the largest part of every line, and already durable in the
    store the moment the shard finished -- is replaced by a slim
    ``"kind": "point-ref"`` record carrying the record's store location::

        {"kind": "point-ref", "schema_version": 1, "cache_key": "...",
         "experiment": "...", "config": "...", "seed": 0,
         "engine": "...", "params": {...}, "cache_hit": false,
         "store": {"offset": 1234, "length": 567}}

    Resume resolves every ref through **one** batched store read
    (:meth:`load` with ``store=``); a ref whose record has since been
    damaged or dropped is skipped with a warning and the point recomputes,
    so the completed resume still matches an uninterrupted run.

    Points are keyed by their content-hash cache key, so a journal can only
    ever resume points whose experiment, parameters, seed, engine,
    configuration contents and package version all match -- a grid change
    simply journals the new points alongside the stale ones.  Unreadable
    lines (e.g. the torn tail of a killed run) are skipped with a warning.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        # The exclusive lock is the shared PID-sentinel implementation;
        # the message templates reproduce this journal's historical
        # wording byte-for-byte (pinned by the service tests).
        self._lock = PidFileLock(
            self.lock_path,
            error=SweepJournalLockedError,
            contended=(
                f"journal {self.path} is locked by a running sweep "
                "(pid {holder}, lock file {path}); two concurrent "
                "sweeps must not share one journal"
            ),
            stale=(
                "reclaiming stale sweep-journal lock {path} (holder pid "
                "{holder} is gone)"
            ),
            exhausted=(
                "could not acquire journal lock {path}: another sweep "
                "keeps re-creating it"
            ),
        )

    @property
    def lock_path(self) -> Path:
        """The sidecar PID-sentinel file guarding exclusive journal access."""
        return Path(f"{self.path}.lock")

    def acquire(self) -> None:
        """Take the journal's exclusive lock (PID sentinel, O_EXCL create).

        Creates ``<journal>.lock`` atomically; the file holds this
        process's PID.  If the lock already exists and its PID belongs to a
        live process, the journal is in use by a concurrent sweep and a
        :class:`SweepJournalLockedError` is raised *before* any journal
        bytes are written -- two interleaved appenders would corrupt the
        journal for both runs.  A lock whose PID is dead (a killed sweep)
        is reclaimed with a :class:`RuntimeWarning`.  (The mechanics are
        the shared :class:`repro.dist.locks.PidFileLock`.)

        Raises:
            SweepJournalLockedError: when a live process holds the lock.
        """
        self._lock.acquire(stacklevel=3)

    def _lock_holder(self) -> Optional[int]:
        """PID recorded in the lock file (``None`` when unreadable)."""
        return self._lock.holder()

    def release(self) -> None:
        """Drop the exclusive lock taken by :meth:`acquire` (idempotent)."""
        self._lock.release()

    def load(
        self, store: Optional[PackedResultStore] = None
    ) -> Dict[str, Tuple[ExperimentResult, bool]]:
        """Read the journal into ``{cache_key: (result, cache_hit)}``.

        Missing files load as empty; malformed or torn lines are skipped
        with a :class:`RuntimeWarning`.  Later entries for the same key win
        (harmless: identical keys imply identical results).

        Args:
            store: the packed result store slim ``"point-ref"`` records
                resolve against, in one batched
                :meth:`~repro.store.PackedResultStore.get_many` read.
                Refs that cannot be resolved (no store given, or the
                record is gone/damaged) are skipped with a warning -- the
                points simply recompute.
        """
        entries: Dict[str, Tuple[Optional[ExperimentResult], bool]] = {}
        refs: set = set()
        if not self.path.exists():
            return {}
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    warnings.warn(
                        f"skipping unreadable journal line {number} of "
                        f"{self.path} (torn write?)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                kind = payload.get("kind")
                if kind == "point":
                    try:
                        result = ExperimentResult.from_dict(payload["result"])
                        key = str(payload["cache_key"])
                    except (KeyError, TypeError, ValueError) as error:
                        warnings.warn(
                            f"skipping invalid journal entry at line "
                            f"{number} of {self.path} "
                            f"({type(error).__name__}: {error})",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        continue
                    entries[key] = (result, bool(payload.get("cache_hit")))
                    refs.discard(key)
                elif kind == "point-ref":
                    key = payload.get("cache_key")
                    if not isinstance(key, str):
                        warnings.warn(
                            f"skipping invalid journal ref at line {number} "
                            f"of {self.path} (missing cache_key)",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        continue
                    entries[key] = (None, bool(payload.get("cache_hit")))
                    refs.add(key)
        if refs:
            fetched = store.get_many(refs) if store is not None else {}
            for key in refs:
                result = fetched.get(key)
                if result is None:
                    warnings.warn(
                        f"journal {self.path} references packed store "
                        f"record {key} that cannot be read"
                        + ("" if store is not None else " (no store given)")
                        + "; the point will be recomputed",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    del entries[key]
                else:
                    entries[key] = (result, entries[key][1])
        return {
            key: (result, hit)
            for key, (result, hit) in entries.items()
            if result is not None
        }

    def start(self, resume: bool = False) -> None:
        """Begin a journaled run: truncate (fresh run) or touch (resume)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            return
        from .. import __version__

        header = {
            "kind": "header",
            "journal": "repro.api.sweep",
            "schema_version": SCHEMA_VERSION,
            "version": __version__,
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(
        self,
        entries: Sequence[Tuple[SweepPoint, str, ExperimentResult, bool]],
        locations: Optional[Mapping[str, Tuple[int, int]]] = None,
    ) -> None:
        """Append one shard's ``(point, cache_key, result, hit)`` outcomes.

        All lines of the shard are written in one call, then flushed and
        fsynced, so a kill can only ever tear the final line -- which
        :meth:`load` skips -- never a finished shard.

        Args:
            locations: packed-store ``{cache_key: (offset, length)}``
                record locations.  Entries whose key appears here are
                journaled as slim ``"point-ref"`` records (the result
                payload already being durable in the store); entries whose
                key is absent -- e.g. a store append skipped because a
                concurrent writer held the pack lock -- fall back to full
                ``"point"`` records, so the journal stays self-sufficient
                for exactly the points the store does not hold.
        """
        if not entries:
            return
        locations = locations or {}
        lines = []
        for point, key, result, hit in entries:
            payload = {
                "kind": "point",
                "schema_version": SCHEMA_VERSION,
                "cache_key": key,
                "experiment": point.experiment,
                "config": point.config,
                "seed": point.seed,
                "engine": point.engine,
                "params": point.params,
                "cache_hit": bool(hit),
            }
            location = locations.get(key)
            if location is not None:
                payload["kind"] = "point-ref"
                payload["store"] = {
                    "offset": int(location[0]),
                    "length": int(location[1]),
                }
            else:
                payload["result"] = result.to_dict()
            lines.append(json.dumps(payload, sort_keys=True) + "\n")
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("".join(lines))
            handle.flush()
            os.fsync(handle.fileno())


# ---------------------------------------------------------------------------
# The sweep service front door
# ---------------------------------------------------------------------------
def _resolve_transport_name(
    transport: Optional[str], executor: Optional[str], stacklevel: int = 3
) -> str:
    """Fold the deprecated ``executor=`` alias into the transport name.

    ``executor=`` keeps its historical contract exactly -- only the three
    local backend names are accepted, unknown names raise the pinned
    ``"unknown executor"`` :class:`ValueError` -- but now warns with a
    :class:`DeprecationWarning` and maps onto the equally-named transport.
    Passing both knobs with different values is a :class:`ValueError`
    (silently preferring either would surprise someone mid-migration).
    """
    if executor is not None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        warnings.warn(
            "executor= is deprecated; pass transport= instead (the "
            "executor names map one-to-one onto the local transports)",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        if transport is not None and transport != executor:
            raise ValueError(
                f"conflicting execution backends: transport={transport!r} "
                f"vs deprecated executor={executor!r}; pass only transport="
            )
        return executor
    return transport if transport is not None else DEFAULT_TRANSPORT


def _create_transport(
    transport_name: str,
    sweep_dir: Optional[Union[str, Path]],
    transport_options: Optional[Mapping[str, Any]],
) -> ShardTransport:
    """Instantiate the named transport with the sweep's transport knobs.

    Raises:
        ValueError: unknown transport name (the message lists the
            registered names), or options the transport rejects (e.g.
            ``sweep_dir=`` with a local transport).
    """
    try:
        spec = get_transport(transport_name)
    except KeyError as error:
        raise ValueError(str(error.args[0])) from None
    options: Dict[str, Any] = dict(transport_options or {})
    if sweep_dir is not None:
        options.setdefault("sweep_dir", sweep_dir)
    return spec.create(**options)


def run_sweep(
    experiments: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    configs: Sequence[str] = ("paper-28nm",),
    seeds: Sequence[int] = (0,),
    max_workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    params_by_experiment: Optional[Mapping[str, Mapping[str, Any]]] = None,
    engine: str = DEFAULT_ENGINE,
    executor: Optional[str] = None,
    shards: Optional[int] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    cache_backend: str = DEFAULT_CACHE_BACKEND,
    transport: Optional[str] = None,
    sweep_dir: Optional[Union[str, Path]] = None,
    transport_options: Optional[Mapping[str, Any]] = None,
) -> SweepResult:
    """Run a grid of experiment points as a sharded, journaled sweep.

    The grid is expanded by :func:`build_grid`, partitioned into shards by
    :class:`ShardPlanner` (journal-restored points excluded, warm and cold
    points separated, cold points grouped per worker session) and executed
    by the selected backend; each finished shard is streamed to the JSONL
    run journal, so killing the sweep loses at most the in-flight shards.

    Args:
        experiments: experiment ids (default: every non-training experiment).
        models: workload names for the model-parameterised experiments.
        configs: registered configuration preset names.
        seeds: RNG seeds.
        max_workers: worker threads/processes (default: one per shard,
            capped at the CPU count; ``1`` forces in-process execution for
            the ``thread`` backend).
        cache_dir: directory for the JSON result cache (``None`` disables
            caching).
        params_by_experiment: extra per-experiment parameters.
        engine: cycle-model engine evaluating every point (``"vectorized"``
            by default; part of each point's cache key).
        executor: deprecated alias for ``transport`` (the historical knob;
            accepts exactly the three local backend names and emits a
            :class:`DeprecationWarning`).
        shards: target shard count (default: twice the worker count).
        journal: path of the append-only ``sweep.jsonl`` run journal
            (``None`` disables journaling).
        resume: restore finished points from ``journal`` instead of
            recomputing them.  Requires ``journal``.  The completed sweep's
            ``results`` are always byte-identical to an uninterrupted run;
            when journaling without a pre-populated ``cache_dir`` the whole
            serialised payload is byte-identical.  (The cache hit/miss
            counters always report the work *this* invocation performed, so
            a point the killed run cached but did not journal legitimately
            counts as a hit on resume.)
        cache_backend: ``"files"`` (the legacy one-JSON-file-per-point
            cache) or ``"packed"`` (the append-only
            :class:`repro.store.PackedResultStore`: one batched index
            probe plans the grid, one batched sequential read restores
            every warm point, one locked batch append per shard persists
            cold results, and the journal switches to slim store-ref
            records).  Both backends produce byte-identical results; an
            existing per-file directory converts in place via
            :func:`repro.store.migrate_files_to_packed`.  Ignored without
            ``cache_dir``.
        transport: shard transport executing the sweep, by registry name
            (see :func:`repro.dist.transport.register_transport`):
            ``"thread"`` (default; warm-cache / I/O-bound re-runs),
            ``"process"`` (:class:`~concurrent.futures.ProcessPoolExecutor`;
            the fast path for cold CPU-bound grids -- the mapping
            equations hold the GIL, so threads serialise), ``"serial"``
            (in-process, for debugging) or ``"broker"`` (the distributed
            shared-directory fabric ``repro worker`` processes attach to;
            requires ``sweep_dir``).  Every transport produces a
            byte-identical :class:`SweepResult`.
        sweep_dir: shared coordination directory of a distributed
            transport (workers attach with ``repro worker <sweep_dir>``).
        transport_options: extra keyword arguments for the transport
            factory (e.g. the broker's ``lease_ttl_s`` / ``poll_s`` /
            ``max_attempts`` / ``coordinator_executes``).

    Returns:
        A :class:`SweepResult` with the per-point results in grid order,
        cache hit/miss counts, and (non-serialised) transport/shard/timing
        statistics in :attr:`~repro.api.results.SweepResult.stats`.

    Raises:
        ValueError: on an unknown executor or transport, invalid transport
            options, or ``resume`` without a journal.
        SweepPointError: when a grid point fails (identifies the point).
        repro.dist.WorkerLostError: a distributed shard exhausted its
            retry budget (its workers kept dying).
    """
    transport_name = _resolve_transport_name(transport, executor)
    transport_obj = _create_transport(
        transport_name, sweep_dir, transport_options
    )
    if cache_backend not in CACHE_BACKENDS:
        raise ValueError(
            f"unknown cache backend {cache_backend!r}; expected one of "
            f"{CACHE_BACKENDS}"
        )
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    if max_workers is not None and max_workers <= 0:
        raise ValueError("max_workers must be positive")
    started = time.perf_counter()
    grid = build_grid(
        experiments=experiments,
        models=models,
        configs=configs,
        seeds=seeds,
        params_by_experiment=params_by_experiment,
        engine=engine,
    )
    run_journal = SweepJournal(journal) if journal is not None else None
    if run_journal is not None:
        # Exclusive PID-sentinel lock: a second sweep pointed at the same
        # journal fails fast instead of interleaving shard appends.
        run_journal.acquire()
    try:
        return _run_sweep_locked(
            grid=grid,
            run_journal=run_journal,
            resume=resume,
            cache_dir=cache_dir,
            shards=shards,
            max_workers=max_workers,
            transport_obj=transport_obj,
            transport_name=transport_name,
            started=started,
            cache_backend=cache_backend,
        )
    finally:
        if run_journal is not None:
            run_journal.release()


def _run_sweep_locked(
    grid: List[SweepPoint],
    run_journal: Optional[SweepJournal],
    resume: bool,
    cache_dir: Optional[Union[str, Path]],
    shards: Optional[int],
    max_workers: Optional[int],
    transport_obj: ShardTransport,
    transport_name: str,
    started: float,
    cache_backend: str = DEFAULT_CACHE_BACKEND,
) -> SweepResult:
    """Body of :func:`run_sweep`, run while holding the journal lock."""
    planner = ShardPlanner(
        cache_dir=cache_dir,
        shards=shards,
        max_workers=max_workers,
        cache_backend=cache_backend,
    )
    store = planner.store
    restored: Dict[str, Tuple[ExperimentResult, bool]] = {}
    if run_journal is not None and resume:
        restored = run_journal.load(store=store)
    plan = planner.plan(grid, journaled_keys=restored.keys())

    outcomes: List[Optional[Tuple[ExperimentResult, bool]]] = [None] * len(grid)
    for index in plan.journaled:
        outcomes[index] = restored[plan.cache_keys[index]]
    if run_journal is not None:
        run_journal.start(resume=resume)
    if cache_dir is not None and store is None:
        # Per-file backend: create the cache directory once up front so the
        # per-point write path stays mkdir-free (see _store_cached).
        Path(cache_dir).mkdir(parents=True, exist_ok=True)

    # Distributed transports run their workers cache-less (the cache
    # directory may not even exist on the worker's host, and the packed
    # backend has a single-writer rule); the coordinator persists merged
    # results itself.  For the per-file backend that means writing each
    # cold result here in _finish; the packed backend already persists
    # coordinator-side via store.append_many.
    persist_files = (
        transport_obj.distributed and store is None and cache_dir is not None
    )

    def _finish(
        points_by_index: Mapping[int, SweepPoint],
        batch_outcomes: Sequence[Tuple[int, ExperimentResult, bool]],
        label: str,
    ) -> None:
        """Record one finished batch: fill outcomes, persist, journal.

        A "batch" is one executed shard -- or, on the packed backend, the
        whole warm restore at once, so 10k warm points cost one store
        append (a no-op), one ``locate`` and ONE fsynced journal write
        instead of one per shard.
        """
        for index, result, hit in batch_outcomes:
            outcomes[index] = (result, hit)
        if persist_files:
            for index, result, hit in batch_outcomes:
                if not hit:
                    _store_cached(points_by_index[index], result, cache_dir)
        locations = None
        if store is not None:
            fresh = [
                (plan.cache_keys[index], result)
                for index, result, hit in batch_outcomes
                if not hit
            ]
            try:
                store.append_many(fresh)
            except PackedStoreLockedError as error:
                # Caching is best-effort: a concurrent writer holding the
                # pack lock must not fail the sweep.  The journal falls
                # back to full records for exactly these points.
                warnings.warn(
                    f"skipping packed-store append for {label} "
                    f"({error}); journaling the results in full instead",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if run_journal is not None:
                locations = store.locate(
                    plan.cache_keys[index] for index, _, _ in batch_outcomes
                )
        if run_journal is not None:
            run_journal.append(
                [
                    (
                        points_by_index[index],
                        plan.cache_keys[index],
                        result,
                        hit,
                    )
                    for index, result, hit in batch_outcomes
                ],
                locations=locations,
            )

    def _finish_shard(
        shard: SweepShard,
        shard_outcomes: Sequence[Tuple[int, ExperimentResult, bool]],
    ) -> None:
        _finish(
            dict(zip(shard.indices, shard.points)),
            shard_outcomes,
            f"shard {shard.index}",
        )

    if store is not None:
        # Packed backend: the parent restores every warm point through ONE
        # batched sequential store read; only cold shards go to workers,
        # and they run cache-less (the parent owns the single pack writer).
        exec_shards = tuple(s for s in plan.shards if not s.warm)
        worker_cache_dir: Optional[Union[str, Path]] = None
        warm_shards = [s for s in plan.shards if s.warm]
        if warm_shards:
            warm_points: Dict[int, SweepPoint] = {
                index: point
                for shard in warm_shards
                for index, point in zip(shard.indices, shard.points)
            }
            fetched = store.get_many(
                plan.cache_keys[index] for index in warm_points
            )
            hits: List[Tuple[int, ExperimentResult, bool]] = []
            lost: List[Tuple[int, SweepPoint]] = []
            for index, point in warm_points.items():
                result = fetched.get(plan.cache_keys[index])
                if result is None:
                    lost.append((index, point))
                else:
                    hits.append((index, result, True))
            _finish(warm_points, hits, "warm restore")
            if lost:
                # Records damaged (or truncated away) between planning and
                # restore recompute exactly like cold points.
                resolved: Dict[str, DBPIMConfig] = {}
                for _, point in lost:
                    if point.config not in resolved:
                        resolved[point.config] = get_config(point.config)
                recovery = SweepShard(
                    index=len(plan.shards),
                    indices=tuple(index for index, _ in lost),
                    points=tuple(point for _, point in lost),
                    warm=False,
                    configs=tuple(resolved.items()),
                )
                _finish_shard(recovery, run_shard(recovery, None))
    else:
        exec_shards = plan.shards
        worker_cache_dir = cache_dir
        if transport_obj.distributed:
            # Workers may live on other hosts: they run cache-less and
            # the coordinator persists (persist_files above).  Warm
            # shards would be pointless network round-trips -- their
            # results already sit in the local cache -- so the
            # coordinator restores them inline, exactly like the packed
            # backend's warm path.
            worker_cache_dir = None
            if cache_dir is not None:
                exec_shards = tuple(s for s in plan.shards if not s.warm)
                for shard in (s for s in plan.shards if s.warm):
                    _finish_shard(shard, run_shard(shard, cache_dir))

    workers = max_workers or max(1, min(len(exec_shards), os.cpu_count() or 1))
    # The transport owns the execution strategy (inline, pool, or a worker
    # fleet over a shared directory); run_shard with the worker cache dir
    # bound is the runner every backend executes (partial keeps it
    # picklable for the process transport's pool).
    transport_obj.run(
        exec_shards,
        partial(run_shard, cache_dir=worker_cache_dir),
        _finish_shard,
        workers,
    )

    completed = [outcome for outcome in outcomes if outcome is not None]
    if len(completed) != len(grid):  # pragma: no cover - defensive
        raise RuntimeError("sweep finished with unexecuted grid points")
    hits = sum(1 for _, hit in completed if hit)
    stats = SweepStats(
        executor=transport_name,
        max_workers=workers,
        shards=len(plan.shards),
        warm_points=plan.warm_points,
        cold_points=plan.cold_points,
        journaled_points=len(plan.journaled),
        elapsed_s=time.perf_counter() - started,
    )
    return SweepResult(
        results=tuple(result for result, _ in completed),
        cache_hits=hits,
        cache_misses=len(completed) - hits,
        stats=stats,
    )
