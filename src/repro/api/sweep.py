"""Parallel, cached sweep runner over (experiment x model x config) grids.

Regenerating the paper's whole evaluation section -- or a design-space grid
of it -- is a fan-out of independent experiment points, so this module turns
it into exactly that:

* :func:`build_grid` expands (experiments x models x configs x seeds) into
  :class:`SweepPoint` s, splitting the model-parameterised experiments into
  one point per model so the fan-out is maximally parallel;
* :func:`run_sweep` executes the grid over ``concurrent.futures`` workers
  (a thread pool: numpy releases the GIL in the hot kernels, points are
  I/O-bound on a warm cache, and threads keep user-registered config
  presets visible; process-based execution is a future scaling step) with
  an on-disk JSON result cache keyed by a content hash of the point
  (experiment id, canonical parameters, seed, schema version, package
  version and the full hardware/FTA configuration digest).  A warm-cache
  re-run deserialises every point without re-executing any simulation.

Example::

    from repro.api import run_sweep

    sweep = run_sweep(experiments=("fig7",), max_workers=4,
                      cache_dir=".repro-cache")
    for result in sweep.filter("fig7"):
        print(result.params["models"], result.rows[0].speedup["hybrid"])
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..sim.cycle_model import DEFAULT_ENGINE, ENGINES
from .configs import config_digest, get_config
from .experiment import Experiment, get_experiment_spec
from .results import SCHEMA_VERSION, ExperimentResult, SweepResult, _jsonify

__all__ = [
    "DEFAULT_SWEEP_EXPERIMENTS",
    "SweepPoint",
    "build_grid",
    "run_point",
    "run_sweep",
]

#: Experiments included in a sweep by default: everything except the
#: training-based accuracy study (minutes-scale; opt in explicitly).
DEFAULT_SWEEP_EXPERIMENTS = (
    "fig2a",
    "fig2b",
    "fig7",
    "table1",
    "table3",
    "table4",
    "program",
    "graph",
)


@dataclass(frozen=True)
class SweepPoint:
    """One independent cell of a sweep grid.

    Attributes:
        experiment: experiment id (``"fig7"``, ``"table4"``, ...).
        config: registered hardware preset name.
        seed: RNG seed of the point.
        params: extra experiment parameters (canonicalised to JSON types).
        engine: cycle-model engine evaluating the point (``"vectorized"``
            or ``"scalar"``).
    """

    experiment: str
    config: str = "paper-28nm"
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    engine: str = DEFAULT_ENGINE

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _jsonify(dict(self.params)))
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )

    def cache_key(self) -> str:
        """Content hash identifying this point's result in the cache.

        Covers the experiment id, canonical parameters, seed, the engine,
        the full configuration contents (not just the preset name), the
        result schema version and the package version -- so renaming a
        preset is harmless while changing its contents, switching engines,
        or upgrading to a release whose simulator produces different
        numbers, invalidates the cached entries.  (The engines are pinned
        numerically identical, but keying them separately keeps the cache
        trustworthy even while one of them is being modified.)
        """
        from .. import __version__

        payload = {
            "schema_version": SCHEMA_VERSION,
            "version": __version__,
            "experiment": self.experiment,
            "params": self.params,
            "seed": self.seed,
            "engine": self.engine,
            "config_digest": config_digest(get_config(self.config)),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_grid(
    experiments: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    configs: Sequence[str] = ("paper-28nm",),
    seeds: Sequence[int] = (0,),
    params_by_experiment: Optional[Mapping[str, Mapping[str, Any]]] = None,
    engine: str = DEFAULT_ENGINE,
) -> List[SweepPoint]:
    """Expand a sweep request into independent grid points.

    Model-parameterised experiments become one point per model (so five
    models of Fig. 7 fan out to five workers); model-free experiments
    (Table 1, Table 4) contribute a single point per (config, seed).

    Args:
        experiments: experiment ids (default: every non-training experiment).
        models: workload names (default: all five paper models).
        configs: registered preset names.
        seeds: RNG seeds.
        params_by_experiment: extra per-experiment parameters, e.g.
            ``{"table2": {"epochs": 4}}``.
        engine: cycle-model engine evaluating every point (part of each
            point's cache key).
    """
    ids = tuple(experiments) if experiments is not None else DEFAULT_SWEEP_EXPERIMENTS
    extra = dict(params_by_experiment or {})
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if models is not None:
        if not models:
            raise ValueError(
                "empty model list; pass None (or omit the argument) to sweep "
                "every workload"
            )
        for model in models:
            _get_workload(model)  # validate eagerly, before any worker starts
    points: List[SweepPoint] = []
    for config in configs:
        get_config(config)  # validate eagerly, before any worker starts
        for seed in seeds:
            for experiment in ids:
                spec = get_experiment_spec(experiment)
                overrides = dict(extra.get(spec.id, {}))
                model_list = tuple(models) if models is not None else _all_models()
                if spec.takes_models and not spec.aggregates_models:
                    for model in model_list:
                        points.append(
                            SweepPoint(
                                experiment=spec.id,
                                config=config,
                                seed=int(seed),
                                params={**overrides, "models": [model]},
                                engine=engine,
                            )
                        )
                elif spec.takes_models:
                    # Experiments that aggregate across models (e.g. the
                    # Table 3 DB-PIM column) keep the list in one point so
                    # sweep results match a direct `Experiment.run`.
                    points.append(
                        SweepPoint(
                            experiment=spec.id,
                            config=config,
                            seed=int(seed),
                            params={**overrides, "models": list(model_list)},
                            engine=engine,
                        )
                    )
                else:
                    points.append(
                        SweepPoint(
                            experiment=spec.id,
                            config=config,
                            seed=int(seed),
                            params=overrides,
                            engine=engine,
                        )
                    )
    return points


def _all_models() -> Tuple[str, ...]:
    from ..workloads.models import list_workloads

    return tuple(list_workloads())


def _get_workload(name: str):
    from ..workloads.models import get_workload

    return get_workload(name)


def run_point(
    point: SweepPoint, cache_dir: Optional[Union[str, Path]] = None
) -> Tuple[ExperimentResult, bool]:
    """Execute (or load) one grid point.

    Returns:
        ``(result, cache_hit)`` -- ``cache_hit`` is True when the result was
        deserialised from the on-disk cache without running any simulation.
    """
    cache_path: Optional[Path] = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / f"{point.cache_key()}.json"
        if cache_path.exists():
            try:
                return ExperimentResult.load(cache_path), True
            except (OSError, ValueError, KeyError, TypeError):
                # A truncated/corrupted entry must not brick the sweep:
                # treat it as a miss and overwrite it below.
                pass
    session = Experiment(
        config=point.config, seed=point.seed, engine=point.engine
    )
    result = session.run(point.experiment, **point.params)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        result.save(cache_path)
    return result, False


def run_sweep(
    experiments: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    configs: Sequence[str] = ("paper-28nm",),
    seeds: Sequence[int] = (0,),
    max_workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    params_by_experiment: Optional[Mapping[str, Mapping[str, Any]]] = None,
    engine: str = DEFAULT_ENGINE,
) -> SweepResult:
    """Run a grid of experiment points in parallel, with result caching.

    Args:
        experiments: experiment ids (default: every non-training experiment).
        models: workload names for the model-parameterised experiments.
        configs: registered configuration preset names.
        seeds: RNG seeds.
        max_workers: worker threads (default: one per point, capped at the
            CPU count; 1 forces sequential execution).
        cache_dir: directory for the JSON result cache (``None`` disables
            caching).
        params_by_experiment: extra per-experiment parameters.
        engine: cycle-model engine evaluating every point (``"vectorized"``
            by default; part of each point's cache key).

    Returns:
        A :class:`SweepResult` with the per-point results in grid order and
        the cache hit/miss counts.
    """
    grid = build_grid(
        experiments=experiments,
        models=models,
        configs=configs,
        seeds=seeds,
        params_by_experiment=params_by_experiment,
        engine=engine,
    )
    if max_workers is None:
        max_workers = max(1, min(len(grid), os.cpu_count() or 1))
    if max_workers <= 1 or len(grid) <= 1:
        outcomes = [run_point(point, cache_dir) for point in grid]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as executor:
            futures = [
                executor.submit(run_point, point, cache_dir) for point in grid
            ]
            outcomes = [future.result() for future in futures]
    results = tuple(result for result, _ in outcomes)
    hits = sum(1 for _, hit in outcomes if hit)
    return SweepResult(
        results=results, cache_hits=hits, cache_misses=len(outcomes) - hits
    )
