"""Architecture half of the DB-PIM co-design.

Functional (bit-exact) models of the customized PIM macro, the CSD-based
adder tree, the input pre-processing unit and the surrounding buffers / SIMD
core, plus analytical energy and area models calibrated to the paper's
28 nm evaluation.
"""

from .accelerator import DBPIMAccelerator, LayerExecutionResult
from .adder_tree import CSDAdderTree, PostProcessingBank, PostProcessingUnit
from .area import AreaBreakdown, AreaLibrary, AreaModel
from .buffers import Buffer, BufferSet
from .config import BufferConfig, ClockConfig, DBPIMConfig, MacroConfig
from .controller import DispatchSummary, TopController
from .energy import EnergyBreakdown, EnergyLibrary, EnergyModel
from .ipu import BitColumn, InputPreprocessingUnit
from .macro import MacroStats, PIMMacro, StoredBlock
from .simd import SIMDCore

__all__ = [
    "DBPIMAccelerator",
    "LayerExecutionResult",
    "CSDAdderTree",
    "PostProcessingUnit",
    "PostProcessingBank",
    "AreaBreakdown",
    "AreaLibrary",
    "AreaModel",
    "Buffer",
    "BufferSet",
    "BufferConfig",
    "ClockConfig",
    "DBPIMConfig",
    "MacroConfig",
    "TopController",
    "DispatchSummary",
    "EnergyBreakdown",
    "EnergyLibrary",
    "EnergyModel",
    "BitColumn",
    "InputPreprocessingUnit",
    "MacroStats",
    "PIMMacro",
    "StoredBlock",
    "SIMDCore",
]
