"""Functional execution of NN layers on the DB-PIM accelerator.

This module ties the pieces together for *functional verification*: a layer
(matrix multiply / convolution expressed as a matrix multiply) is tiled onto
the PIM macros, executed bit-serially through the dyadic-block path and the
result is compared against a plain integer reference.  It also produces the
activity counters (cycles, cell activations, utilisation, buffer traffic)
that feed the energy model -- the same accounting the faster analytical
cycle model in :mod:`repro.sim` uses for full-size networks.

The dense baseline is the same engine with ``weight_sparsity`` disabled: the
macros store plain 8-bit weights and the IPU broadcasts every bit column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.fta import FTAConfig, approximate_layer
from .buffers import BufferSet
from .config import DBPIMConfig
from .energy import EnergyBreakdown, EnergyModel
from .ipu import InputPreprocessingUnit
from .macro import MacroStats, PIMMacro
from .simd import SIMDCore

__all__ = ["LayerExecutionResult", "DBPIMAccelerator"]


@dataclass
class LayerExecutionResult:
    """Outputs and activity of one layer executed on the accelerator."""

    outputs: np.ndarray
    stats: MacroStats
    energy: EnergyBreakdown
    tiles: int = 0
    utilization: float = field(default=0.0)

    @property
    def cycles(self) -> int:
        return self.stats.broadcast_cycles


class DBPIMAccelerator:
    """Functional model of the full accelerator (PIM core + IPU + SIMD)."""

    def __init__(
        self,
        config: Optional[DBPIMConfig] = None,
        fta_config: Optional[FTAConfig] = None,
    ) -> None:
        self.config = config or DBPIMConfig()
        self.fta_config = fta_config or FTAConfig()
        self.buffers = BufferSet(self.config.buffers)
        self.simd = SIMDCore()
        self.energy_model = EnergyModel()
        self.ipu = InputPreprocessingUnit(
            self.config.macro.input_bits, self.config.macro.input_group
        )

    # ------------------------------------------------------------------
    # Layer execution
    # ------------------------------------------------------------------
    def run_linear(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        apply_fta: bool = True,
    ) -> LayerExecutionResult:
        """Execute ``outputs = weights @ inputs`` on the PIM core.

        Args:
            weights: integer filter-major matrix ``(num_filters, num_inputs)``
                (INT8 range).  When weight sparsity is enabled and
                ``apply_fta`` is True the weights are first passed through
                the FTA algorithm (as the compiler would have done offline).
            inputs: unsigned integer activation vector ``(num_inputs,)``.

        Returns:
            A :class:`LayerExecutionResult`; ``outputs`` is exact for the
            weights actually stored (FTA-approximated when applicable).
        """
        weights = np.asarray(weights, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64).reshape(-1)
        if weights.ndim != 2:
            raise ValueError("weights must be a 2-D filter-major matrix")
        if weights.shape[1] != inputs.size:
            raise ValueError("weights and inputs disagree on the input size")

        sparse = self.config.weight_sparsity
        skip_inputs = self.config.input_sparsity
        if sparse and apply_fta:
            weights = approximate_layer(weights, self.fta_config).approximated

        macro_config = self.config.macro
        if sparse:
            thresholds = [
                max(filter_result.threshold, 1)
                for filter_result in approximate_layer(weights, self.fta_config).filters
            ]
            allocation = max(thresholds)
            filters_per_tile = macro_config.sparse_filters_per_macro(allocation)
        else:
            allocation = macro_config.weight_bits
            filters_per_tile = macro_config.dense_filters_per_macro
        inputs_per_tile = macro_config.rows

        total_stats = MacroStats()
        total_energy = EnergyBreakdown()
        outputs = np.zeros(weights.shape[0], dtype=np.int64)
        tiles = 0
        utilization_sum = 0.0

        # Vectorised tile accounting: the (filter x input) tile grid and its
        # per-tile buffer traffic are pure shape arithmetic, so they are
        # recorded in one batched pass before the functional execution loop.
        filter_counts = self._tile_counts(weights.shape[0], filters_per_tile)
        input_counts = self._tile_counts(inputs.size, inputs_per_tile)
        self._account_buffer_traffic_batch(filter_counts, input_counts, sparse)

        for filter_start in range(0, weights.shape[0], filters_per_tile):
            filter_stop = min(filter_start + filters_per_tile, weights.shape[0])
            for input_start in range(0, inputs.size, inputs_per_tile):
                input_stop = min(input_start + inputs_per_tile, inputs.size)
                tile_weights = weights[filter_start:filter_stop, input_start:input_stop]
                tile_inputs = inputs[input_start:input_stop]
                macro = PIMMacro(macro_config)
                if sparse:
                    macro.load_weights_sparse(tile_weights, allocation=allocation)
                else:
                    macro.load_weights_dense(tile_weights)
                tile_outputs, stats = macro.matvec(
                    tile_inputs, skip_zero_columns=skip_inputs
                )
                outputs[filter_start:filter_stop] += tile_outputs
                total_stats.merge(stats)
                utilization_sum += macro.storage_utilization
                tiles += 1
                total_energy.merge(self._tile_energy(stats, tile_weights, sparse))

        result = LayerExecutionResult(
            outputs=outputs,
            stats=total_stats,
            energy=total_energy,
            tiles=tiles,
            utilization=utilization_sum / max(tiles, 1),
        )
        return result

    def run_conv2d(
        self,
        weights: np.ndarray,
        feature_map: np.ndarray,
        stride: int = 1,
        padding: int = 0,
        apply_fta: bool = True,
    ) -> LayerExecutionResult:
        """Execute an integer convolution by lowering it to matrix multiplies.

        Args:
            weights: ``(Cout, Cin, K, K)`` integer weights.
            feature_map: ``(Cin, H, W)`` unsigned integer activations.
        """
        weights = np.asarray(weights, dtype=np.int64)
        feature_map = np.asarray(feature_map, dtype=np.int64)
        if weights.ndim != 4 or feature_map.ndim != 3:
            raise ValueError("expected 4-D weights and a 3-D feature map")
        out_channels, in_channels, kernel, _ = weights.shape
        if feature_map.shape[0] != in_channels:
            raise ValueError("channel mismatch between weights and feature map")
        padded = np.pad(
            feature_map, ((0, 0), (padding, padding), (padding, padding))
        )
        height, width = padded.shape[1:]
        out_h = (height - kernel) // stride + 1
        out_w = (width - kernel) // stride + 1
        weight_matrix = weights.reshape(out_channels, -1)

        combined: Optional[LayerExecutionResult] = None
        outputs = np.zeros((out_channels, out_h, out_w), dtype=np.int64)
        for oy in range(out_h):
            for ox in range(out_w):
                patch = padded[
                    :,
                    oy * stride : oy * stride + kernel,
                    ox * stride : ox * stride + kernel,
                ].reshape(-1)
                result = self.run_linear(weight_matrix, patch, apply_fta=apply_fta)
                outputs[:, oy, ox] = result.outputs
                if combined is None:
                    combined = result
                else:
                    combined.stats.merge(result.stats)
                    combined.energy.merge(result.energy)
                    combined.tiles += result.tiles
                    combined.utilization = (
                        combined.utilization + result.utilization
                    ) / 2
        assert combined is not None
        combined.outputs = outputs
        return combined

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _tile_counts(extent: int, tile: int) -> np.ndarray:
        """Per-tile element counts of one tiled dimension (last tile short)."""
        starts = np.arange(0, extent, tile, dtype=np.int64)
        return np.minimum(tile, extent - starts)

    def _account_buffer_traffic_batch(
        self,
        filter_counts: np.ndarray,
        input_counts: np.ndarray,
        sparse: bool,
    ) -> None:
        """Record the buffer traffic of a whole (filter x input) tile grid.

        One vectorised pass over the per-tile filter/input element counts,
        equivalent to the historical per-tile accounting calls: every tile
        reads its inputs from the feature buffer and its weights (plus
        sign/index metadata when weight sparsity is enabled) from the weight
        path, then writes its INT32 partial sums to the output RF.
        """
        tile_weight_sizes = np.multiply.outer(filter_counts, input_counts).ravel()
        num_filter_tiles = filter_counts.size
        self.buffers.feature.read_batch(np.tile(input_counts, num_filter_tiles))
        if sparse:
            # Values are packed as dyadic blocks (at most 2 per weight in the
            # evaluated configuration) plus sign+index metadata.
            self.buffers.weight.read_batch(tile_weight_sizes)
            self.buffers.meta.read_batch(tile_weight_sizes)
            self.buffers.meta_rf.read_batch(tile_weight_sizes)
        else:
            self.buffers.weight.read_batch(tile_weight_sizes)
        self.buffers.output_rf.write_batch(
            np.repeat(filter_counts * 4, input_counts.size)
        )

    def _tile_energy(
        self, stats: MacroStats, tile_weights: np.ndarray, sparse: bool
    ) -> EnergyBreakdown:
        """Energy of one tile from its macro activity."""
        meta_bytes = tile_weights.size if sparse else 0
        buffer_bytes = tile_weights.size + tile_weights.shape[1]
        return self.energy_model.layer_energy(
            cycles=stats.broadcast_cycles,
            cell_activations=stats.cell_activations,
            adder_tree_ops=stats.adder_tree_operations,
            post_processing_ops=stats.broadcast_cycles * tile_weights.shape[0],
            ipu_bits=tile_weights.shape[1] * self.config.macro.input_bits,
            meta_rf_bytes=meta_bytes,
            buffer_bytes=buffer_bytes,
        )
