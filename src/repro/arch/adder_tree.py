"""CSD-based adder tree and post-processing units.

A conventional digital PIM adder tree sums bit-wise AND results whose bit
significance is fixed by the physical column a cell sits in.  DB-PIM breaks
that assumption: a cell holds a dyadic block whose significance (block
index) and polarity (sign) are *metadata*, not position.  The CSD-based
adder tree therefore:

1. converts every AND result into a signed contribution
   ``sign * (and_result << bit_position)`` using the block metadata
   (the negate-and-add-one muxes of Fig. 5), and
2. reduces the contributions of all blocks belonging to the same filter,
3. after which the post-processing unit shifts the per-column partial sum by
   the input bit position and accumulates it into the running Psum
   (shift-and-add over the bit-serial input stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["CSDAdderTree", "PostProcessingUnit", "PostProcessingBank"]


class CSDAdderTree:
    """Accumulate dyadic-block AND results guided by sign/index metadata."""

    @staticmethod
    def reduce(
        and_results: Sequence[int],
        signs: Sequence[int],
        bit_positions: Sequence[int],
    ) -> int:
        """Sum the signed, shifted contributions of a set of blocks.

        Args:
            and_results: per-block bitwise AND result (0 or 1 per stored bit;
                the DBMU produces the pair ``Q & I`` / ``Q̄ & I`` of which
                exactly one line carries the block's magnitude bit).
            signs: per-block sign (+1 / -1) from the metadata RF.
            bit_positions: per-block absolute digit position (0..7).

        Returns:
            The signed partial sum contributed by these blocks for a single
            input bit column.
        """
        if not (len(and_results) == len(signs) == len(bit_positions)):
            raise ValueError("metadata arrays must have the same length")
        total = 0
        for and_result, sign, position in zip(and_results, signs, bit_positions):
            if and_result not in (0, 1):
                raise ValueError("AND results must be single bits (0 or 1)")
            if sign not in (-1, 1):
                raise ValueError("block signs must be +1 or -1")
            if position < 0:
                raise ValueError("bit positions must be non-negative")
            total += sign * (and_result << position)
        return total

    @staticmethod
    def reduce_array(
        and_results: np.ndarray,
        signs: np.ndarray,
        bit_positions: np.ndarray,
        axis: int = -1,
    ) -> np.ndarray:
        """Vectorised :meth:`reduce` along ``axis``."""
        and_results = np.asarray(and_results, dtype=np.int64)
        signs = np.asarray(signs, dtype=np.int64)
        bit_positions = np.asarray(bit_positions, dtype=np.int64)
        contributions = signs * (and_results << bit_positions)
        return contributions.sum(axis=axis)


@dataclass
class PostProcessingUnit:
    """Shift-and-add accumulator of one filter's partial sums.

    One post-processing unit exists per concurrently-processed filter (up to
    16 per macro in DB-PIM, versus 2 in the dense baseline -- the area cost
    quantified in Table 4).
    """

    accumulator: int = 0
    shift_add_operations: int = field(default=0)

    def accumulate(self, partial_sum: int, input_bit_position: int) -> int:
        """Add a partial sum weighted by the current input bit position."""
        if input_bit_position < 0:
            raise ValueError("input bit position must be non-negative")
        self.accumulator += int(partial_sum) << input_bit_position
        self.shift_add_operations += 1
        return self.accumulator

    def reset(self) -> int:
        """Read out and clear the accumulator (write-back to the output RF)."""
        value = self.accumulator
        self.accumulator = 0
        return value


class PostProcessingBank:
    """A vectorised bank of :class:`PostProcessingUnit` s.

    The macro drives one post-processing unit per concurrently-processed
    filter; accumulating them one Python call at a time (per filter, per
    bit column) dominates the functional model's runtime.  The bank holds
    all accumulators in one integer array and applies a whole block of
    bit columns -- ``(columns, filters)`` partial sums, shifted by their
    per-column input bit position -- in a single array operation, while
    keeping the same shift-and-add operation count the scalar units would
    have recorded.
    """

    def __init__(self, num_filters: int) -> None:
        if num_filters <= 0:
            raise ValueError("num_filters must be positive")
        self.num_filters = num_filters
        self.accumulators = np.zeros(num_filters, dtype=np.int64)
        self.shift_add_operations = 0

    def accumulate(self, partial_sums: np.ndarray, input_bit_position: int) -> None:
        """Accumulate one bit column's per-filter partial sums.

        Args:
            partial_sums: integer array of length ``num_filters``.
            input_bit_position: bit significance of the column.
        """
        self.accumulate_columns(
            np.asarray(partial_sums, dtype=np.int64).reshape(1, -1),
            np.array([input_bit_position], dtype=np.int64),
        )

    def accumulate_columns(
        self, partial_sums: np.ndarray, input_bit_positions: np.ndarray
    ) -> None:
        """Accumulate a block of bit columns in one vectorised step.

        Args:
            partial_sums: integer array ``(num_columns, num_filters)`` with
                the adder-tree output of every (column, filter) pair.
            input_bit_positions: per-column bit significance
                (``num_columns``, non-negative).
        """
        partial_sums = np.asarray(partial_sums, dtype=np.int64)
        positions = np.asarray(input_bit_positions, dtype=np.int64)
        if partial_sums.ndim != 2 or partial_sums.shape[1] != self.num_filters:
            raise ValueError(
                f"expected partial sums of shape (columns, {self.num_filters})"
            )
        if positions.shape != (partial_sums.shape[0],):
            raise ValueError("one bit position is required per column")
        if positions.size and positions.min() < 0:
            raise ValueError("input bit positions must be non-negative")
        self.accumulators += (partial_sums << positions[:, None]).sum(axis=0)
        self.shift_add_operations += partial_sums.shape[0] * self.num_filters

    def reset(self) -> np.ndarray:
        """Read out and clear every accumulator (output-RF write-back)."""
        values = self.accumulators.copy()
        self.accumulators[:] = 0
        return values
