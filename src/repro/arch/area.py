"""Analytical area model (Table 4 of the paper).

The total DB-PIM die area of 1.15453 mm^2 decomposes into the dense digital
PIM baseline plus the logic added by the co-design: metadata register files,
the extra post-processing units (one per concurrently-processed filter
instead of one per stored 8-bit filter), the extra DFFs / routing inside the
macro, and the (negligible) input-sparsity support in the IPU.

The model is parameterised by unit-area constants calibrated so the default
configuration reproduces the paper's breakdown; changing the configuration
(e.g. more macros, larger meta RFs, more parallel filters) scales the
corresponding components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .config import DBPIMConfig

__all__ = ["AreaLibrary", "AreaBreakdown", "AreaModel"]


@dataclass(frozen=True)
class AreaLibrary:
    """Unit areas in mm^2, calibrated to the paper's 28 nm results."""

    #: Dense digital PIM baseline (buffers + 4 macros + SIMD + controller).
    pim_baseline_mm2: float = 1.00809
    #: One 6 KB metadata register file.
    meta_rf_mm2: float = 0.07829 / 4
    #: One extra post-processing unit (DB-PIM needs 16 per macro, the
    #: baseline only 2, so 14 extra per macro → 56 extra in total).
    post_processing_unit_mm2: float = 0.06259 / 56
    #: Extra DFFs and routing per macro.
    dff_routing_per_macro_mm2: float = 0.00550 / 4
    #: Input-sparsity (zero-detection + leading-one) logic in the IPU.
    input_sparsity_mm2: float = 0.00007


@dataclass
class AreaBreakdown:
    """Component areas in mm^2 (the rows of Table 4)."""

    pim_baseline: float
    meta_rfs: float
    extra_post_processing: float
    dffs_and_routing: float
    input_sparsity: float

    @property
    def total_mm2(self) -> float:
        return (
            self.pim_baseline
            + self.meta_rfs
            + self.extra_post_processing
            + self.dffs_and_routing
            + self.input_sparsity
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "PIM Baseline": self.pim_baseline,
            "Meta-RFs": self.meta_rfs,
            "Extra Post-processing Units": self.extra_post_processing,
            "DFFs and Routing Resources": self.dffs_and_routing,
            "Input Sparsity Support": self.input_sparsity,
        }

    def fractions(self) -> Dict[str, float]:
        """Per-component share of the total area (the Breakdown column)."""
        total = self.total_mm2
        return {name: value / total for name, value in self.as_dict().items()}


@dataclass
class AreaModel:
    """Compute the area breakdown of a configuration."""

    library: AreaLibrary = field(default_factory=AreaLibrary)

    def breakdown(self, config: DBPIMConfig) -> AreaBreakdown:
        """Area breakdown for a DB-PIM (or baseline) configuration."""
        lib = self.library
        base_macros = 4  # the calibration point of the library constants
        macro_scale = config.num_macros / base_macros
        baseline_area = lib.pim_baseline_mm2 * macro_scale
        if not config.weight_sparsity:
            # The dense baseline has no metadata path and only the standard
            # two post-processing units per macro.
            input_area = lib.input_sparsity_mm2 if config.input_sparsity else 0.0
            return AreaBreakdown(
                pim_baseline=baseline_area,
                meta_rfs=0.0,
                extra_post_processing=0.0,
                dffs_and_routing=0.0,
                input_sparsity=input_area,
            )
        dense_filters = config.macro.dense_filters_per_macro
        sparse_filters = config.macro.sparse_filters_per_macro(1)
        extra_ppus = max(sparse_filters - dense_filters, 0) * config.num_macros
        return AreaBreakdown(
            pim_baseline=baseline_area,
            meta_rfs=lib.meta_rf_mm2 * config.buffers.num_meta_rfs,
            extra_post_processing=lib.post_processing_unit_mm2 * extra_ppus,
            dffs_and_routing=lib.dff_routing_per_macro_mm2 * config.num_macros,
            input_sparsity=lib.input_sparsity_mm2 if config.input_sparsity else 0.0,
        )
