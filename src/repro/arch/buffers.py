"""On-chip buffer and register-file models.

Buffers are modelled at the level the evaluation needs: capacity checking
and access counting (reads/writes in bytes), from which the energy model
derives buffer access energy.  No cycle-level banking model is attempted --
the paper's speedups come from the macro/IPU compute path, not from buffer
bandwidth, and the same buffers are present in the dense baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .config import BufferConfig

__all__ = ["Buffer", "BufferSet"]


@dataclass
class Buffer:
    """A simple capacity-checked, access-counted SRAM buffer."""

    name: str
    capacity_bytes: int
    bytes_read: int = 0
    bytes_written: int = 0
    peak_occupancy: int = field(default=0)
    _occupancy: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")

    def write(self, num_bytes: int) -> None:
        """Record a write of ``num_bytes`` (occupancy grows, capped checks)."""
        if num_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self.bytes_written += num_bytes
        self._occupancy = min(self._occupancy + num_bytes, self.capacity_bytes)
        self.peak_occupancy = max(self.peak_occupancy, self._occupancy)

    def read(self, num_bytes: int) -> None:
        """Record a read of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self.bytes_read += num_bytes

    def read_batch(self, byte_counts: np.ndarray) -> None:
        """Record many reads in one vectorised step.

        Equivalent to calling :meth:`read` once per entry of
        ``byte_counts`` (reads do not move occupancy, so only the total
        matters), without the per-access Python overhead.
        """
        counts = np.asarray(byte_counts, dtype=np.int64)
        if counts.size and counts.min() < 0:
            raise ValueError("byte counts must be non-negative")
        self.bytes_read += int(counts.sum())

    def write_batch(self, byte_counts: np.ndarray) -> None:
        """Record many writes in one vectorised step.

        Equivalent to calling :meth:`write` once per entry of
        ``byte_counts`` when no :meth:`free` interleaves the writes: the
        occupancy of such a monotone write sequence is the capacity-capped
        running total, so its peak equals the capped grand total.
        """
        counts = np.asarray(byte_counts, dtype=np.int64)
        if counts.size and counts.min() < 0:
            raise ValueError("byte counts must be non-negative")
        total = int(counts.sum())
        self.bytes_written += total
        self._occupancy = min(self._occupancy + total, self.capacity_bytes)
        self.peak_occupancy = max(self.peak_occupancy, self._occupancy)

    def free(self, num_bytes: int) -> None:
        """Release occupancy after data is consumed."""
        if num_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self._occupancy = max(self._occupancy - num_bytes, 0)

    def fits(self, num_bytes: int) -> bool:
        """Whether a tile of ``num_bytes`` fits in the buffer at once."""
        return num_bytes <= self.capacity_bytes

    @property
    def total_accesses_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


class BufferSet:
    """The accelerator's buffers, built from a :class:`BufferConfig`."""

    def __init__(self, config: BufferConfig) -> None:
        self.config = config
        self.feature = Buffer("feature_buffer", config.feature_buffer)
        self.weight = Buffer("weight_buffer", config.weight_buffer)
        self.meta = Buffer("meta_buffer", config.meta_buffer)
        self.instruction = Buffer("instruction_buffer", config.instruction_buffer)
        self.meta_rf = Buffer("meta_rf", config.meta_rf * config.num_meta_rfs)
        self.output_rf = Buffer("output_rf", config.output_rf)

    def all(self) -> Dict[str, Buffer]:
        """Name → buffer mapping for reporting."""
        return {
            buffer.name: buffer
            for buffer in (
                self.feature,
                self.weight,
                self.meta,
                self.instruction,
                self.meta_rf,
                self.output_rf,
            )
        }

    def total_access_bytes(self) -> int:
        return sum(buffer.total_accesses_bytes for buffer in self.all().values())
