"""Hardware configuration of the DB-PIM accelerator and its dense baseline.

The numbers default to the paper's evaluated configuration (Section 4.1):
28 nm, 500 MHz, four 16 Kb PIM macros, a 128 KB feature buffer, 32 KB weight
buffer, 96 KB meta buffer, 16 KB instruction buffer and four 6 KB metadata
register files.

The geometry model of one macro follows Fig. 3 / Fig. 5:

* a macro contains 16 *compartments*;
* each compartment is a 64 x 16 array of 6T cells plus its local processing
  units, i.e. 64 rows (one row per input element of the current input-channel
  window) and 16 cell columns;
* in the **dense baseline** a weight occupies 8 binary cells of a row, so a
  row holds 2 filters (the "two 8-bit precision filters" of Section 4.4);
* in **DB-PIM** a weight occupies ``φ_th`` dyadic-block cells, so a row holds
  ``16 / φ_th`` filters -- 16 filters for ``φ_th = 1`` and 8 for ``φ_th = 2``.

Inputs stream bit-serially (8 bit positions per pass); the IPU can skip bit
positions whose 16-input broadcast group is entirely zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = [
    "SPARSITY_VARIANTS",
    "MacroConfig",
    "BufferConfig",
    "ClockConfig",
    "DBPIMConfig",
]

#: The four sparsity configurations of Fig. 7, in plotting order (the
#: canonical definition; :mod:`repro.sim.cycle_model` re-exports it).
SPARSITY_VARIANTS = ("base", "input", "weight", "hybrid")


@dataclass(frozen=True)
class MacroConfig:
    """Geometry of one PIM macro.

    Attributes:
        compartments: number of compartments per macro.
        rows: input-element rows per compartment.
        columns: 6T cell columns per row.
        weight_bits: bit width of a dense (baseline) weight.
        input_bits: bit width of the bit-serial input stream.
        input_group: number of inputs sharing one IPU zero-detection group.
    """

    compartments: int = 16
    rows: int = 64
    columns: int = 16
    weight_bits: int = 8
    input_bits: int = 8
    input_group: int = 16

    def __post_init__(self) -> None:
        if min(self.compartments, self.rows, self.columns) <= 0:
            raise ValueError("macro geometry must be positive")
        if min(self.weight_bits, self.input_bits, self.input_group) <= 0:
            raise ValueError("bit widths and input_group must be positive")
        if self.columns % self.weight_bits != 0:
            raise ValueError("columns must be a multiple of weight_bits")

    @property
    def cells(self) -> int:
        """Total 6T cells in the macro."""
        return self.compartments * self.rows * self.columns

    @property
    def size_kilobits(self) -> float:
        """Macro storage capacity in Kb (one bit per 6T cell)."""
        return self.cells / 1024

    @property
    def dense_filters_per_macro(self) -> int:
        """Filters processed in parallel by the dense baseline (= 2)."""
        return self.columns // self.weight_bits

    def sparse_filters_per_macro(self, threshold: int) -> int:
        """Filters processed in parallel by DB-PIM for a given ``φ_th``."""
        if threshold <= 0:
            # An all-zero filter needs no compute; treat it like φ_th = 1 for
            # mapping purposes (it still occupies a filter slot).
            threshold = 1
        return max(self.columns // threshold, 1)

    @property
    def input_positions(self) -> int:
        """Input elements consumed per macro pass (rows x compartments)."""
        return self.rows * self.compartments


@dataclass(frozen=True)
class BufferConfig:
    """On-chip buffer capacities in bytes (paper Section 4.1)."""

    feature_buffer: int = 128 * 1024
    weight_buffer: int = 32 * 1024
    meta_buffer: int = 96 * 1024
    instruction_buffer: int = 16 * 1024
    meta_rf: int = 6 * 1024
    output_rf: int = 2 * 1024 // 8
    num_meta_rfs: int = 4

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ValueError(f"buffer size {name} must be positive")

    @property
    def total_sram_bytes(self) -> int:
        """All buffer + RF capacity (the "SRAM Size" row of Table 3)."""
        return (
            self.feature_buffer
            + self.weight_buffer
            + self.meta_buffer
            + self.instruction_buffer
            + self.meta_rf * self.num_meta_rfs
            + self.output_rf
        )


@dataclass(frozen=True)
class ClockConfig:
    """Operating point of the accelerator."""

    frequency_mhz: float = 500.0
    supply_voltage: float = 0.9
    voltage_range: Tuple[float, float] = (0.72, 0.90)

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0 or self.supply_voltage <= 0:
            raise ValueError("clock parameters must be positive")

    @property
    def cycle_time_ns(self) -> float:
        return 1000.0 / self.frequency_mhz


@dataclass(frozen=True)
class DBPIMConfig:
    """Full accelerator configuration.

    Attributes:
        macro: per-macro geometry.
        buffers: buffer capacities.
        clock: operating point.
        num_macros: PIM macros in the PIM core (4 in the paper).
        weight_sparsity: enable the dyadic-block weight-sparsity support.
        input_sparsity: enable the IPU block-wise input-bit skipping.
        technology_nm: process node (28 nm).
    """

    macro: MacroConfig = field(default_factory=MacroConfig)
    buffers: BufferConfig = field(default_factory=BufferConfig)
    clock: ClockConfig = field(default_factory=ClockConfig)
    num_macros: int = 4
    weight_sparsity: bool = True
    input_sparsity: bool = True
    technology_nm: int = 28

    def __post_init__(self) -> None:
        if self.num_macros <= 0:
            raise ValueError("num_macros must be positive")

    @property
    def pim_size_kilobytes(self) -> float:
        """Total PIM macro capacity in KB (the "PIM Size" row of Table 3)."""
        return self.num_macros * self.macro.size_kilobits / 8

    def dense_baseline(self) -> "DBPIMConfig":
        """The dense digital PIM baseline: identical hardware, no sparsity."""
        return replace(self, weight_sparsity=False, input_sparsity=False)

    def weight_sparsity_only(self) -> "DBPIMConfig":
        """DB-PIM with the IPU's input-bit skipping disabled."""
        return replace(self, weight_sparsity=True, input_sparsity=False)

    def input_sparsity_only(self) -> "DBPIMConfig":
        """Baseline macro mapping but with IPU input-bit skipping enabled."""
        return replace(self, weight_sparsity=False, input_sparsity=True)

    def for_variant(self, variant: str) -> "DBPIMConfig":
        """This configuration with one Fig. 7 variant's sparsity flags.

        Args:
            variant: one of :data:`SPARSITY_VARIANTS` (``"hybrid"`` returns
                the configuration unchanged).

        Raises:
            ValueError: for an unknown variant name.
        """
        if variant == "base":
            return self.dense_baseline()
        if variant == "input":
            return self.input_sparsity_only()
        if variant == "weight":
            return self.weight_sparsity_only()
        if variant == "hybrid":
            return self
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {SPARSITY_VARIANTS}"
        )
