"""Top controller: executes compiled instruction streams.

The top controller of the paper fetches instructions from the instruction
buffer and dispatches control signals to the IPU, the PIM core and the SIMD
core.  This functional model consumes a :class:`repro.compiler.isa.Program`,
checks it against the instruction buffer capacity, tallies the work each
unit is asked to perform and produces the cycle estimate implied by the
stream -- the link between the compiler's static schedule and the
cycle-level performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..compiler.isa import Opcode, Program
from .config import DBPIMConfig

__all__ = ["DispatchSummary", "TopController"]


@dataclass
class DispatchSummary:
    """Work dispatched while executing one program."""

    instructions: int = 0
    broadcast_cycles: int = 0
    macro_invocations: int = 0
    weight_loads: int = 0
    metadata_loads: int = 0
    feature_loads: int = 0
    accumulations: int = 0
    simd_elements: int = 0
    write_back_elements: int = 0
    opcode_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def estimated_compute_cycles(self) -> int:
        """Cycles implied by the broadcast instructions alone."""
        return self.broadcast_cycles


class TopController:
    """Functional dispatcher for compiled layer programs."""

    def __init__(self, config: Optional[DBPIMConfig] = None) -> None:
        self.config = config or DBPIMConfig()

    def check_program(self, program: Program) -> None:
        """Validate that a program fits the instruction buffer.

        Raises:
            ValueError: if the encoded program exceeds the buffer capacity.
        """
        size = program.size_bytes()
        capacity = self.config.buffers.instruction_buffer
        if size > capacity:
            raise ValueError(
                f"program needs {size} bytes but the instruction buffer "
                f"holds {capacity}"
            )

    def execute(self, program: Program) -> DispatchSummary:
        """Walk a program and accumulate the dispatched work.

        ``repeats`` operands (used by the code generator to avoid unrolling
        every output position) multiply the work of the instruction they
        annotate.
        """
        self.check_program(program)
        summary = DispatchSummary()
        for instruction in program:
            repeats_operand = instruction.operand("repeats")
            repeats = 1 if repeats_operand is None else int(repeats_operand)
            if repeats < 1:
                raise ValueError("instruction repeat counts must be >= 1")
            summary.instructions += 1
            name = instruction.opcode.value
            summary.opcode_counts[name] = summary.opcode_counts.get(name, 0) + 1
            if instruction.opcode is Opcode.LOAD_WEIGHTS:
                summary.weight_loads += 1
            elif instruction.opcode is Opcode.LOAD_METADATA:
                summary.metadata_loads += 1
            elif instruction.opcode is Opcode.LOAD_FEATURES:
                summary.feature_loads += repeats
            elif instruction.opcode is Opcode.BROADCAST:
                cycles = int(instruction.operand("cycles", 0) or 0)
                if cycles < 0:
                    raise ValueError("broadcast cycle counts must be non-negative")
                summary.broadcast_cycles += cycles * repeats
            elif instruction.opcode is Opcode.MACRO_COMPUTE:
                summary.macro_invocations += repeats
            elif instruction.opcode is Opcode.ACCUMULATE:
                summary.accumulations += repeats
            elif instruction.opcode is Opcode.SIMD_OP:
                summary.simd_elements += int(instruction.operand("elements", 0) or 0)
            elif instruction.opcode is Opcode.WRITE_BACK:
                summary.write_back_elements += int(
                    instruction.operand("elements", 0) or 0
                )
            # BARRIER instructions only order the stream; nothing to tally.
        return summary
