"""Top controller: executes compiled instruction streams.

The top controller of the paper fetches instructions from the instruction
buffer and dispatches control signals to the IPU, the PIM core and the SIMD
core.  This functional model consumes a :class:`repro.compiler.isa.Program`,
checks it against the instruction buffer capacity (per segment for
segmented whole-model programs), tallies the work each unit is asked to
perform -- broadcast cycles in Q16.16 fixed point, load/store byte traffic,
buffer-occupancy high-water marks -- and produces the cycle estimate
implied by the stream: the link between the compiler's static schedule and
the cycle-level performance model (the trace simulator in
:mod:`repro.sim.trace` builds directly on it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from collections import deque

from ..compiler.isa import CYCLE_SCALE, Opcode, Program
from ..compiler.schedule import DEFAULT_BYTES_PER_CYCLE, TransferModel
from .config import DBPIMConfig

__all__ = ["DEFAULT_SIMD_LANES", "DispatchSummary", "TopController"]

#: Elements the SIMD core retires per cycle in the controller's (and the
#: trace simulator's) tail model.
DEFAULT_SIMD_LANES = 16


@dataclass
class DispatchSummary:
    """Work dispatched while executing one program.

    Attributes:
        instructions: encoded instructions walked.
        broadcast_cycles_q16: accumulated broadcast cycles in Q16.16 fixed
            point (see :data:`repro.compiler.isa.CYCLE_SCALE`).
        macro_invocations: macro compute dispatches (repeats expanded).
        weight_loads / metadata_loads / feature_loads: load dispatches.
        accumulations: accumulate dispatches (repeats expanded).
        simd_elements / write_back_elements: element counts of the tails.
        weight_bytes / metadata_bytes / feature_bytes / write_back_bytes:
            byte traffic of each stream (repeats expanded).
        residual_feature_bytes: the subset of ``feature_bytes`` carried by
            ``residual``-tagged feature loads -- branch operands of graph
            joins re-read by a fused epilogue (multi-producer feature
            traffic).
        peak_weight_buffer_bytes / peak_meta_buffer_bytes /
        peak_feature_buffer_bytes: buffer-occupancy high-water marks
            (loads accumulate, a tile's features retire at its accumulate,
            barriers retire an iteration's weights/metadata).
        opcode_counts: encoded instructions per opcode name.
    """

    instructions: int = 0
    broadcast_cycles_q16: int = 0
    macro_invocations: int = 0
    weight_loads: int = 0
    metadata_loads: int = 0
    feature_loads: int = 0
    accumulations: int = 0
    simd_elements: int = 0
    write_back_elements: int = 0
    weight_bytes: int = 0
    metadata_bytes: int = 0
    feature_bytes: int = 0
    residual_feature_bytes: int = 0
    write_back_bytes: int = 0
    peak_weight_buffer_bytes: int = 0
    peak_meta_buffer_bytes: int = 0
    peak_feature_buffer_bytes: int = 0
    opcode_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def broadcast_cycles(self) -> float:
        """Accumulated bit-serial broadcast cycles (fixed point resolved)."""
        return self.broadcast_cycles_q16 / CYCLE_SCALE

    @property
    def estimated_compute_cycles(self) -> float:
        """Cycles implied by the broadcast instructions alone."""
        return self.broadcast_cycles

    def busy_cycles(
        self,
        bytes_per_cycle: int = DEFAULT_BYTES_PER_CYCLE,
        simd_lanes: int = DEFAULT_SIMD_LANES,
    ) -> Dict[str, float]:
        """Per-unit busy cycles implied by the dispatched work.

        Args:
            bytes_per_cycle: on-chip bus width pricing the load/store byte
                traffic (defaults to the shared
                :data:`repro.compiler.schedule.DEFAULT_BYTES_PER_CYCLE`
                and is priced through
                :class:`repro.compiler.schedule.TransferModel`).
            simd_lanes: elements the SIMD core processes per cycle
                (defaults to :data:`DEFAULT_SIMD_LANES`).

        Returns:
            Mapping of unit name (``"macro"``, ``"dma_weight"``,
            ``"dma_metadata"``, ``"dma_feature"``, ``"simd"``,
            ``"write_back"``) to busy cycles.
        """
        if simd_lanes <= 0:
            raise ValueError("simd_lanes must be positive")
        transfer = TransferModel(bytes_per_cycle=bytes_per_cycle)
        return {
            "macro": self.broadcast_cycles,
            "dma_weight": transfer.cycles(self.weight_bytes),
            "dma_metadata": transfer.cycles(self.metadata_bytes),
            "dma_feature": transfer.cycles(self.feature_bytes),
            "simd": -(-self.simd_elements // simd_lanes),
            "write_back": transfer.cycles(self.write_back_bytes),
        }


class TopController:
    """Functional dispatcher for compiled layer and whole-model programs."""

    def __init__(self, config: Optional[DBPIMConfig] = None) -> None:
        self.config = config or DBPIMConfig()

    def check_program(self, program: Program) -> None:
        """Validate that a program fits the instruction buffer.

        Segmented programs (whole-model output of the pass pipeline) are
        checked one segment at a time -- a segment is exactly one buffer
        refill; flat programs must fit in a single refill.

        Raises:
            ValueError: naming the offending segment (index, label, sizes)
                or, for flat programs, the whole-program overflow.
        """
        capacity = self.config.buffers.instruction_buffer
        segments = getattr(program, "segments", ())
        if segments:
            for index, segment in enumerate(segments):
                size = segment.size_bytes()
                if size > capacity:
                    raise ValueError(
                        f"segment {index} ({segment.name!r}, "
                        f"{segment.num_instructions} instructions, {size} "
                        f"bytes) exceeds the {capacity}-byte instruction "
                        f"buffer"
                    )
            return
        size = program.size_bytes()
        if size > capacity:
            raise ValueError(
                f"program needs {size} bytes but the instruction buffer "
                f"holds {capacity}"
            )

    def execute(self, program: Program) -> DispatchSummary:
        """Walk a program and accumulate the dispatched work.

        ``repeats`` operands (used by the code generator to avoid unrolling
        every output position) multiply the work of the instruction they
        annotate.  Broadcast instructions may carry their cycle count as the
        legacy integer ``cycles`` operand or the Q16.16 ``cycles_q16`` form
        (preferred when both are present).
        """
        self.check_program(program)
        summary = DispatchSummary()
        counts = summary.opcode_counts
        weight_level = 0
        meta_level = 0
        feature_level = 0
        pending_features: Deque[int] = deque()
        for instruction in program:
            operands = instruction.operands
            repeats = int(operands.get("repeats", 1))
            if repeats < 1:
                raise ValueError("instruction repeat counts must be >= 1")
            summary.instructions += 1
            opcode = instruction.opcode
            name = opcode.value
            counts[name] = counts.get(name, 0) + 1
            if opcode is Opcode.BROADCAST:
                cycles_q16 = operands.get("cycles_q16")
                if cycles_q16 is None:
                    cycles_q16 = int(operands.get("cycles", 0) or 0) * CYCLE_SCALE
                if cycles_q16 < 0:
                    raise ValueError("broadcast cycle counts must be non-negative")
                summary.broadcast_cycles_q16 += cycles_q16 * repeats
            elif opcode is Opcode.MACRO_COMPUTE:
                summary.macro_invocations += repeats
            elif opcode is Opcode.ACCUMULATE:
                summary.accumulations += repeats
                if pending_features:
                    feature_level -= pending_features.popleft()
            elif opcode is Opcode.LOAD_FEATURES:
                payload = int(operands.get("bytes", 0) or 0)
                summary.feature_loads += repeats
                summary.feature_bytes += payload * repeats
                if operands.get("residual"):
                    summary.residual_feature_bytes += payload * repeats
                feature_level += payload
                pending_features.append(payload)
                if feature_level > summary.peak_feature_buffer_bytes:
                    summary.peak_feature_buffer_bytes = feature_level
            elif opcode is Opcode.LOAD_WEIGHTS:
                payload = int(operands.get("bytes", 0) or 0)
                summary.weight_loads += 1
                summary.weight_bytes += payload
                weight_level += payload
                if weight_level > summary.peak_weight_buffer_bytes:
                    summary.peak_weight_buffer_bytes = weight_level
            elif opcode is Opcode.LOAD_METADATA:
                payload = int(operands.get("bytes", 0) or 0)
                summary.metadata_loads += 1
                summary.metadata_bytes += payload
                meta_level += payload
                if meta_level > summary.peak_meta_buffer_bytes:
                    summary.peak_meta_buffer_bytes = meta_level
            elif opcode is Opcode.SIMD_OP:
                summary.simd_elements += int(operands.get("elements", 0) or 0)
            elif opcode is Opcode.WRITE_BACK:
                elements = int(operands.get("elements", 0) or 0)
                summary.write_back_elements += elements
                summary.write_back_bytes += int(
                    operands.get("bytes", elements) or 0
                )
            elif opcode is Opcode.BARRIER:
                # An iteration boundary: its weights/metadata retire and any
                # still-pending feature tiles are consumed.
                weight_level = 0
                meta_level = 0
                feature_level = 0
                pending_features.clear()
        return summary
