"""Analytical energy model of DB-PIM and the dense baseline.

The paper extracts macro power from post-layout simulation and digital-logic
power from PrimeTime PX.  Neither tool is available here, so this module
uses a per-component energy library (pJ per elementary operation) whose
*relative* magnitudes follow common 28 nm digital-PIM design practice:

* a 6T cell compute activation (AND + local read) is the cheapest event,
* adder-tree / shift-add operations cost a few times a cell activation,
* SRAM buffer accesses cost roughly an order of magnitude more per byte,
* metadata RF accesses sit between register and SRAM cost.

Only energy *ratios* between DB-PIM and the dense baseline matter for
reproducing Fig. 7(b) and Table 3's efficiency trends, because both designs
are evaluated with the same component library -- mirroring how the paper
compares designs synthesised with the same flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["EnergyLibrary", "EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyLibrary:
    """Per-event energy constants in picojoules."""

    cell_activation_pj: float = 0.001
    adder_tree_op_pj: float = 0.003
    shift_add_op_pj: float = 0.005
    post_processing_op_pj: float = 0.006
    ipu_bit_pj: float = 0.0005
    meta_rf_byte_pj: float = 0.02
    buffer_byte_pj: float = 0.12
    controller_cycle_pj: float = 0.4
    macro_leakage_cycle_pj: float = 0.15

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ValueError(f"energy constant {name} must be non-negative")


@dataclass
class EnergyBreakdown:
    """Energy of one layer (or model) execution, per component, in pJ."""

    macro_compute: float = 0.0
    adder_tree: float = 0.0
    post_processing: float = 0.0
    ipu: float = 0.0
    meta_rf: float = 0.0
    buffers: float = 0.0
    control: float = 0.0
    leakage: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.macro_compute
            + self.adder_tree
            + self.post_processing
            + self.ipu
            + self.meta_rf
            + self.buffers
            + self.control
            + self.leakage
        )

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    def as_dict(self) -> Dict[str, float]:
        return {
            "macro_compute": self.macro_compute,
            "adder_tree": self.adder_tree,
            "post_processing": self.post_processing,
            "ipu": self.ipu,
            "meta_rf": self.meta_rf,
            "buffers": self.buffers,
            "control": self.control,
            "leakage": self.leakage,
        }

    def merge(self, other: "EnergyBreakdown") -> None:
        """Accumulate another breakdown into this one."""
        self.macro_compute += other.macro_compute
        self.adder_tree += other.adder_tree
        self.post_processing += other.post_processing
        self.ipu += other.ipu
        self.meta_rf += other.meta_rf
        self.buffers += other.buffers
        self.control += other.control
        self.leakage += other.leakage


@dataclass
class EnergyModel:
    """Turns activity counts into an :class:`EnergyBreakdown`."""

    library: EnergyLibrary = field(default_factory=EnergyLibrary)

    def layer_energy(
        self,
        cycles: float,
        cell_activations: float,
        adder_tree_ops: float,
        post_processing_ops: float,
        ipu_bits: float,
        meta_rf_bytes: float,
        buffer_bytes: float,
    ) -> EnergyBreakdown:
        """Energy of a layer given its activity counts.

        Args:
            cycles: macro broadcast cycles.
            cell_activations: 6T cells driven over all cycles.
            adder_tree_ops: adder-tree input operations.
            post_processing_ops: shift-and-add accumulations.
            ipu_bits: input bits examined by the IPU.
            meta_rf_bytes: metadata register-file traffic (0 for the dense
                baseline, which stores no sign/index metadata).
            buffer_bytes: feature/weight/meta buffer traffic.
        """
        for name, value in (
            ("cycles", cycles),
            ("cell_activations", cell_activations),
            ("adder_tree_ops", adder_tree_ops),
            ("post_processing_ops", post_processing_ops),
            ("ipu_bits", ipu_bits),
            ("meta_rf_bytes", meta_rf_bytes),
            ("buffer_bytes", buffer_bytes),
        ):
            if value < 0:
                raise ValueError(f"activity count {name} must be non-negative")
        lib = self.library
        return EnergyBreakdown(
            macro_compute=cell_activations * lib.cell_activation_pj,
            adder_tree=adder_tree_ops * lib.adder_tree_op_pj,
            post_processing=post_processing_ops * lib.post_processing_op_pj,
            ipu=ipu_bits * lib.ipu_bit_pj,
            meta_rf=meta_rf_bytes * lib.meta_rf_byte_pj,
            buffers=buffer_bytes * lib.buffer_byte_pj,
            control=cycles * lib.controller_cycle_pj,
            leakage=cycles * lib.macro_leakage_cycle_pj,
        )

    def layer_energy_arrays(
        self,
        cycles: np.ndarray,
        cell_activations: np.ndarray,
        adder_tree_ops: np.ndarray,
        post_processing_ops: np.ndarray,
        ipu_bits: np.ndarray,
        meta_rf_bytes: np.ndarray,
        buffer_bytes: np.ndarray,
    ) -> Dict[str, np.ndarray]:
        """Vectorised :meth:`layer_energy` over arrays of layers.

        Applies exactly the same per-component formulas as
        :meth:`layer_energy`, element-wise over same-length activity arrays,
        so one call prices a whole batch of layers.  This is the energy
        backend of the vectorized cycle-model engine
        (:mod:`repro.sim.vectorized`).

        Parameters
        ----------
        cycles, cell_activations, adder_tree_ops, post_processing_ops, \
        ipu_bits, meta_rf_bytes, buffer_bytes : numpy.ndarray
            Per-layer activity counts (broadcastable to one common shape).

        Returns
        -------
        dict of str to numpy.ndarray
            One float64 array per :class:`EnergyBreakdown` component
            (``"macro_compute"``, ..., ``"leakage"``), aligned with the
            input arrays.

        Raises
        ------
        ValueError
            If any activity count is negative.
        """
        activities = {
            "cycles": np.asarray(cycles, dtype=np.float64),
            "cell_activations": np.asarray(cell_activations, dtype=np.float64),
            "adder_tree_ops": np.asarray(adder_tree_ops, dtype=np.float64),
            "post_processing_ops": np.asarray(post_processing_ops, dtype=np.float64),
            "ipu_bits": np.asarray(ipu_bits, dtype=np.float64),
            "meta_rf_bytes": np.asarray(meta_rf_bytes, dtype=np.float64),
            "buffer_bytes": np.asarray(buffer_bytes, dtype=np.float64),
        }
        for name, values in activities.items():
            if values.size and values.min() < 0:
                raise ValueError(f"activity count {name} must be non-negative")
        lib = self.library
        return {
            "macro_compute": activities["cell_activations"] * lib.cell_activation_pj,
            "adder_tree": activities["adder_tree_ops"] * lib.adder_tree_op_pj,
            "post_processing": (
                activities["post_processing_ops"] * lib.post_processing_op_pj
            ),
            "ipu": activities["ipu_bits"] * lib.ipu_bit_pj,
            "meta_rf": activities["meta_rf_bytes"] * lib.meta_rf_byte_pj,
            "buffers": activities["buffer_bytes"] * lib.buffer_byte_pj,
            "control": activities["cycles"] * lib.controller_cycle_pj,
            "leakage": activities["cycles"] * lib.macro_leakage_cycle_pj,
        }

    @staticmethod
    def energy_saving(baseline: EnergyBreakdown, improved: EnergyBreakdown) -> float:
        """Fractional energy saving of ``improved`` relative to ``baseline``."""
        if baseline.total_pj <= 0:
            raise ValueError("baseline energy must be positive")
        return 1.0 - improved.total_pj / baseline.total_pj
