"""Input Pre-processing Unit (IPU).

The IPU converts unsigned INT8 input features into a bit-serial stream and
skips bit positions whose entire broadcast group is zero (Fig. 6 of the
paper):

1. inputs are grouped (16 per group in the evaluated configuration);
2. for each group a *mask* marks the bit positions where at least one input
   has a non-zero bit (the OR across the group);
3. a leading-one detector walks the mask from the most significant position,
   emitting only the non-zero bit columns together with their position so
   the shift-and-add stage can weight the partial sums correctly.

The same module also provides the dense behaviour (no skipping) used by the
baseline, which simply emits all ``input_bits`` positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

__all__ = ["BitColumn", "InputPreprocessingUnit"]


@dataclass(frozen=True)
class BitColumn:
    """One broadcast step of the bit-serial input stream.

    Attributes:
        position: bit significance of this column (0 = LSB).
        bits: 0/1 vector with one entry per input element of the group.
    """

    position: int
    bits: np.ndarray


class InputPreprocessingUnit:
    """Bit-serial conversion with block-wise zero-column skipping."""

    def __init__(self, input_bits: int = 8, group_size: int = 16) -> None:
        if input_bits <= 0 or group_size <= 0:
            raise ValueError("input_bits and group_size must be positive")
        self.input_bits = input_bits
        self.group_size = group_size

    def zero_column_mask(self, inputs: np.ndarray) -> np.ndarray:
        """Per-bit-position mask: True where the whole group has a zero bit.

        Args:
            inputs: unsigned integer vector (one IPU group, any length up to
                the group size).

        Returns:
            Boolean array of length ``input_bits``; ``True`` marks columns
            the macro can skip.
        """
        inputs = self._validate(inputs)
        shifts = np.arange(self.input_bits)
        bits = (inputs[:, None] >> shifts) & 1
        return ~(bits.any(axis=0))

    def nonzero_columns(self, inputs: np.ndarray) -> List[BitColumn]:
        """The bit columns actually broadcast for one input group.

        Columns are emitted most-significant first, matching the
        leading-one-detection order of the hardware.
        """
        inputs = self._validate(inputs)
        mask = self.zero_column_mask(inputs)
        columns = []
        for position in reversed(range(self.input_bits)):
            if mask[position]:
                continue
            bits = ((inputs >> position) & 1).astype(np.int64)
            columns.append(BitColumn(position=position, bits=bits))
        return columns

    def all_columns(self, inputs: np.ndarray) -> List[BitColumn]:
        """Dense behaviour: every bit column, no skipping (baseline mode)."""
        inputs = self._validate(inputs)
        return [
            BitColumn(
                position=position,
                bits=((inputs >> position) & 1).astype(np.int64),
            )
            for position in reversed(range(self.input_bits))
        ]

    def iter_groups(self, inputs: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        """Split a flat input vector into IPU groups (last group may be short)."""
        inputs = self._validate(inputs)
        for start in range(0, inputs.size, self.group_size):
            yield start, inputs[start : start + self.group_size]

    def broadcast_cycles(self, inputs: np.ndarray, skip_zero_columns: bool = True) -> int:
        """Number of bit-serial broadcast cycles needed for one input group."""
        if not skip_zero_columns:
            return self.input_bits
        mask = self.zero_column_mask(inputs)
        return int(np.count_nonzero(~mask))

    def group_active_columns(self, inputs: np.ndarray) -> np.ndarray:
        """Non-zero bit-column count of every IPU group, in one array pass.

        Pads the flat activation vector with zeros up to a whole number of
        groups (zeros never add active columns), reshapes it to
        ``(groups, group_size)`` and ORs the bit planes across each group --
        the vectorized equivalent of calling :meth:`broadcast_cycles` on
        every group in a Python loop.

        Args:
            inputs: flat unsigned integer activation vector (any length).

        Returns:
            ``int64`` array with one active-column count per group.
        """
        inputs = self._validate(np.asarray(inputs).reshape(-1))
        groups = -(-inputs.size // self.group_size)
        padded = np.zeros(groups * self.group_size, dtype=np.int64)
        padded[: inputs.size] = inputs
        grouped = padded.reshape(groups, self.group_size)
        bits = (grouped[:, :, None] >> np.arange(self.input_bits)) & 1
        return bits.any(axis=1).sum(axis=1).astype(np.int64)

    def average_active_columns(
        self, inputs: np.ndarray, skip_zero_columns: bool = True
    ) -> float:
        """Average broadcast cycles per group over a whole activation tensor.

        This is the quantity the cycle-level performance model needs: the
        expected number of input bit positions that must be processed per
        group of ``group_size`` activations.  Computed by one vectorized
        pass over all groups (see :meth:`group_active_columns`).
        """
        inputs = self._validate(np.asarray(inputs).reshape(-1))
        if not skip_zero_columns:
            return float(self.input_bits)
        per_group = self.group_active_columns(inputs)
        return int(per_group.sum()) / per_group.size

    def _validate(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.int64)
        if inputs.ndim != 1:
            inputs = inputs.reshape(-1)
        if inputs.size == 0:
            raise ValueError("IPU received an empty input group")
        if inputs.min() < 0 or inputs.max() >= (1 << self.input_bits):
            raise ValueError(
                f"inputs must be unsigned {self.input_bits}-bit integers"
            )
        return inputs
