"""Functional (bit-exact) model of the customized SRAM-PIM macro.

The macro stores weights for a tile of filters across its compartments and
computes, for a bit-serial input stream, the integer dot products
``output[f] = Σ_i weight[f, i] * input[i]``.

Two storage modes are modelled:

* **dense** -- the baseline macro of [17]: every weight occupies
  ``weight_bits`` binary cells of a row, so a row of 16 cells holds two
  INT8 filter weights.  All stored cells (zero bits included) take part in
  every computation cycle, which is exactly the low-utilisation problem the
  paper quantifies with ``U_act``.
* **sparse** (DB-PIM) -- every weight occupies ``φ_th`` dyadic-block cells.
  Only Comp. Pattern blocks are stored; their sign and block index travel as
  metadata and the CSD-based adder tree recovers the signed, shifted
  contribution of every cell.

Besides the numerical result, the macro keeps the counters needed by the
evaluation: broadcast cycles, cell-activations and *effective*
cell-activations (cells whose stored bit is non-zero), from which the actual
utilisation ``U_act`` of Eq. (1) follows directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.dyadic_block import nonzero_blocks_of_value
from .adder_tree import PostProcessingBank
from .config import MacroConfig
from .ipu import InputPreprocessingUnit

__all__ = ["MacroStats", "StoredBlock", "PIMMacro"]


@dataclass
class MacroStats:
    """Activity counters of one macro execution."""

    broadcast_cycles: int = 0
    cell_activations: int = 0
    effective_cell_activations: int = 0
    adder_tree_operations: int = 0

    @property
    def actual_utilization(self) -> float:
        """``U_act`` of Eq. (1): effective / total computing cell activations."""
        if self.cell_activations == 0:
            return 0.0
        return self.effective_cell_activations / self.cell_activations

    def merge(self, other: "MacroStats") -> None:
        """Accumulate another execution's counters into this one."""
        self.broadcast_cycles += other.broadcast_cycles
        self.cell_activations += other.cell_activations
        self.effective_cell_activations += other.effective_cell_activations
        self.adder_tree_operations += other.adder_tree_operations


@dataclass(frozen=True)
class StoredBlock:
    """One Comp. Pattern block resident in a 6T cell.

    Attributes:
        filter_index: which of the tile's filters the block belongs to.
        input_position: which input element (row) the block multiplies.
        sign: +1 or -1 (metadata RF).
        bit_position: absolute CSD digit position 0..7 (metadata RF).
    """

    filter_index: int
    input_position: int
    sign: int
    bit_position: int


class PIMMacro:
    """Bit-exact functional model of one PIM macro."""

    def __init__(self, config: Optional[MacroConfig] = None) -> None:
        self.config = config or MacroConfig()
        self._mode: Optional[str] = None
        self._num_filters = 0
        self._num_inputs = 0
        self._allocation = 0
        self._blocks: List[StoredBlock] = []
        self._dense_weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Weight loading
    # ------------------------------------------------------------------
    def load_weights_sparse(
        self, weights: np.ndarray, allocation: Optional[int] = None
    ) -> None:
        """Store a filter-major integer weight tile in dyadic-block form.

        Args:
            weights: integer array ``(num_filters, num_inputs)``; every weight
                must be representable with at most ``allocation`` CSD
                non-zero digits (i.e. the tile has already been through FTA).
            allocation: dyadic-block cells reserved per weight; defaults to
                the largest block count present in the tile (the filter
                group's ``φ_th``).
        """
        weights = self._check_weight_tile(weights)
        blocked = [
            [nonzero_blocks_of_value(int(value)) for value in row] for row in weights
        ]
        max_phi = max(
            (weight.phi for row in blocked for weight in row), default=0
        )
        if allocation is None:
            allocation = max(max_phi, 1)
        if max_phi > allocation:
            raise ValueError(
                f"tile needs {max_phi} blocks per weight but only "
                f"{allocation} were allocated; run FTA first"
            )
        filters_capacity = self.config.sparse_filters_per_macro(allocation)
        if weights.shape[0] > filters_capacity:
            raise ValueError(
                f"tile has {weights.shape[0]} filters but the macro fits "
                f"{filters_capacity} at allocation {allocation}"
            )
        self._mode = "sparse"
        self._num_filters, self._num_inputs = weights.shape
        self._allocation = allocation
        self._dense_weights = None
        self._blocks = [
            StoredBlock(
                filter_index=filter_index,
                input_position=input_position,
                sign=block.sign,
                bit_position=block.bit_position,
            )
            for filter_index, row in enumerate(blocked)
            for input_position, weight in enumerate(row)
            for block in weight.blocks
        ]

    def load_weights_dense(self, weights: np.ndarray) -> None:
        """Store a filter-major INT8 weight tile in plain binary form."""
        weights = self._check_weight_tile(weights)
        low = -(1 << (self.config.weight_bits - 1))
        high = (1 << (self.config.weight_bits - 1)) - 1
        if weights.min() < low or weights.max() > high:
            raise ValueError(
                f"dense weights must fit in {self.config.weight_bits} bits"
            )
        filters_capacity = self.config.dense_filters_per_macro
        if weights.shape[0] > filters_capacity:
            raise ValueError(
                f"tile has {weights.shape[0]} filters but the dense macro "
                f"fits {filters_capacity}"
            )
        self._mode = "dense"
        self._num_filters, self._num_inputs = weights.shape
        self._allocation = self.config.weight_bits
        self._dense_weights = weights.copy()
        self._blocks = []

    def _check_weight_tile(self, weights: np.ndarray) -> np.ndarray:
        weights = np.asarray(weights, dtype=np.int64)
        if weights.ndim != 2 or weights.size == 0:
            raise ValueError("weight tile must be a non-empty 2-D array")
        if weights.shape[1] > self.config.input_positions:
            raise ValueError(
                f"tile has {weights.shape[1]} input positions but the macro "
                f"provides {self.config.input_positions}"
            )
        return weights

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def matvec(
        self, inputs: np.ndarray, skip_zero_columns: bool = True
    ) -> tuple:
        """Multiply the stored weight tile by an unsigned input vector.

        Args:
            inputs: unsigned integers of length ``num_inputs``.
            skip_zero_columns: enable the IPU's block-wise zero skipping.

        Returns:
            ``(outputs, stats)`` where ``outputs`` has one integer per filter
            and ``stats`` is a :class:`MacroStats`.
        """
        if self._mode is None:
            raise RuntimeError("no weights loaded")
        inputs = np.asarray(inputs, dtype=np.int64).reshape(-1)
        if inputs.size != self._num_inputs:
            raise ValueError(
                f"expected {self._num_inputs} inputs, got {inputs.size}"
            )
        if self._mode == "sparse":
            return self._matvec_sparse(inputs, skip_zero_columns)
        return self._matvec_dense(inputs, skip_zero_columns)

    def _matvec_sparse(self, inputs: np.ndarray, skip_zero_columns: bool) -> tuple:
        ipu = InputPreprocessingUnit(self.config.input_bits, self.config.input_group)
        bank = PostProcessingBank(self._num_filters)
        stats = MacroStats()
        if self._blocks:
            block_filters = np.array([b.filter_index for b in self._blocks])
            block_rows = np.array([b.input_position for b in self._blocks])
            block_signs = np.array([b.sign for b in self._blocks])
            block_positions = np.array([b.bit_position for b in self._blocks])
        else:
            block_filters = block_rows = block_signs = block_positions = np.zeros(
                0, dtype=np.int64
            )
        allocated_cells_per_column = self._num_filters * self._allocation
        for start, group in ipu.iter_groups(inputs):
            columns = (
                ipu.nonzero_columns(group)
                if skip_zero_columns
                else ipu.all_columns(group)
            )
            if not columns:
                continue
            in_group = (block_rows >= start) & (block_rows < start + group.size)
            rows_in_group = min(group.size, self.config.rows)
            num_columns = len(columns)
            stats.broadcast_cycles += num_columns
            # Every allocated cell of the active rows is driven every cycle,
            # whether it stores a useful block or padding.
            stats.cell_activations += (
                allocated_cells_per_column * rows_in_group * num_columns
            )
            blocks_in_group = int(in_group.sum())
            if blocks_in_group:
                stats.effective_cell_activations += blocks_in_group * num_columns
                stats.adder_tree_operations += blocks_in_group * num_columns
                # All of the group's bit columns at once: the (column, block)
                # signed, shifted contributions (the CSD adder tree), reduced
                # per (column, filter) pair, then shift-and-add accumulated.
                bits = np.stack([column.bits for column in columns])
                positions = np.array(
                    [column.position for column in columns], dtype=np.int64
                )
                relative_rows = block_rows[in_group] - start
                signed = block_signs[in_group][None, :] * (
                    bits[:, relative_rows] << block_positions[in_group][None, :]
                )
                partial = np.zeros(
                    (num_columns, self._num_filters), dtype=np.int64
                )
                np.add.at(
                    partial,
                    (
                        np.arange(num_columns)[:, None],
                        block_filters[in_group][None, :],
                    ),
                    signed,
                )
                bank.accumulate_columns(partial, positions)
        return bank.reset(), stats

    def _matvec_dense(self, inputs: np.ndarray, skip_zero_columns: bool) -> tuple:
        ipu = InputPreprocessingUnit(self.config.input_bits, self.config.input_group)
        bank = PostProcessingBank(self._num_filters)
        stats = MacroStats()
        weights = self._dense_weights
        weight_bits = self.config.weight_bits
        # Two's complement bit planes of the stored weights; the MSB carries a
        # negative weight of -2^(bits-1).
        unsigned = weights & ((1 << weight_bits) - 1)
        planes = ((unsigned[:, :, None] >> np.arange(weight_bits)) & 1).astype(np.int64)
        plane_values = np.array(
            [1 << b for b in range(weight_bits - 1)] + [-(1 << (weight_bits - 1))],
            dtype=np.int64,
        )
        for start, group in ipu.iter_groups(inputs):
            columns = (
                ipu.nonzero_columns(group)
                if skip_zero_columns
                else ipu.all_columns(group)
            )
            if not columns:
                continue
            rows = slice(start, start + group.size)
            group_planes = planes[:, rows, :]
            stored_cells = self._num_filters * weight_bits * group.size
            nonzero_cells = int(group_planes.sum())
            num_columns = len(columns)
            stats.broadcast_cycles += num_columns
            stats.cell_activations += stored_cells * num_columns
            stats.effective_cell_activations += nonzero_cells * num_columns
            stats.adder_tree_operations += stored_cells * num_columns
            # All bit columns of the group in one contraction: per-(column,
            # filter) partial sums, then one vectorised shift-and-add.
            bits = np.stack([column.bits for column in columns])
            positions = np.array(
                [column.position for column in columns], dtype=np.int64
            )
            partial = np.einsum("fib,ci,b->cf", group_planes, bits, plane_values)
            bank.accumulate_columns(partial, positions)
        return bank.reset(), stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mode(self) -> Optional[str]:
        """``"sparse"``, ``"dense"`` or None when no weights are loaded."""
        return self._mode

    @property
    def stored_blocks(self) -> List[StoredBlock]:
        """The Comp. Pattern blocks currently resident (sparse mode only)."""
        return list(self._blocks)

    @property
    def storage_utilization(self) -> float:
        """Fraction of allocated weight cells that hold a non-zero bit.

        For the sparse mode this is the static counterpart of ``U_act``: the
        FTA's ``at-most-φ_th`` snapping leaves a few allocated block slots
        holding padding, which is why the paper reports utilisations of
        91.95%--98.42% rather than exactly 100%.
        """
        if self._mode == "sparse":
            allocated = self._num_filters * self._num_inputs * self._allocation
            return len(self._blocks) / allocated if allocated else 0.0
        if self._mode == "dense":
            allocated = self._num_filters * self._num_inputs * self.config.weight_bits
            unsigned = self._dense_weights & ((1 << self.config.weight_bits) - 1)
            nonzero = int(
                ((unsigned[:, :, None] >> np.arange(self.config.weight_bits)) & 1).sum()
            )
            return nonzero / allocated if allocated else 0.0
        return 0.0
