"""SIMD core for element-wise post-operations.

The PIM core only produces convolution / matrix-multiply partial sums; all
remaining element-wise work (bias addition, requantization scaling, ReLU,
residual addition, pooling support) runs on a small SIMD core.  The model
here is functional plus an operation counter so the energy model can charge
for the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SIMDCore"]


@dataclass
class SIMDCore:
    """Element-wise vector unit with operation accounting."""

    lanes: int = 16
    operations: int = field(default=0)

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ValueError("lanes must be positive")

    def _count(self, elements: int) -> None:
        self.operations += int(elements)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise addition (bias / residual add)."""
        result = np.asarray(a) + np.asarray(b)
        self._count(result.size)
        return result

    def multiply(self, a: np.ndarray, b) -> np.ndarray:
        """Element-wise or scalar multiplication (requantization scaling)."""
        result = np.asarray(a) * b
        self._count(result.size)
        return result

    def relu(self, a: np.ndarray) -> np.ndarray:
        """Rectified linear unit."""
        result = np.maximum(np.asarray(a), 0)
        self._count(result.size)
        return result

    def requantize(
        self, accumulators: np.ndarray, scale: float, num_bits: int = 8
    ) -> np.ndarray:
        """Scale INT32 accumulators back to the unsigned activation grid."""
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        high = (1 << num_bits) - 1
        scaled = np.clip(np.round(np.asarray(accumulators) * scale), 0, high)
        self._count(scaled.size)
        return scaled.astype(np.int64)

    @property
    def cycles(self) -> int:
        """Cycles consumed assuming one operation per lane per cycle."""
        return -(-self.operations // self.lanes)
