"""SIMD core for element-wise post-operations.

The PIM core only produces convolution / matrix-multiply partial sums; all
remaining element-wise work (bias addition, requantization scaling, ReLU,
residual addition, pooling support) runs on a small SIMD core.  The model
here is functional plus an operation counter so the energy model can charge
for the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["SIMDCore"]


@dataclass
class SIMDCore:
    """Element-wise vector unit with operation accounting."""

    lanes: int = 16
    operations: int = field(default=0)

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ValueError("lanes must be positive")

    def _count(self, elements: int) -> None:
        self.operations += int(elements)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise addition (bias / residual add)."""
        result = np.asarray(a) + np.asarray(b)
        self._count(result.size)
        return result

    def multiply(self, a: np.ndarray, b) -> np.ndarray:
        """Element-wise or scalar multiplication (requantization scaling)."""
        result = np.asarray(a) * b
        self._count(result.size)
        return result

    def relu(self, a: np.ndarray) -> np.ndarray:
        """Rectified linear unit."""
        result = np.maximum(np.asarray(a), 0)
        self._count(result.size)
        return result

    def requantize(
        self, accumulators: np.ndarray, scale: float, num_bits: int = 8
    ) -> np.ndarray:
        """Scale INT32 accumulators back to the unsigned activation grid."""
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        high = (1 << num_bits) - 1
        scaled = np.clip(np.round(np.asarray(accumulators) * scale), 0, high)
        self._count(scaled.size)
        return scaled.astype(np.int64)

    def postprocess(
        self,
        accumulators: np.ndarray,
        bias: Optional[np.ndarray] = None,
        scale: float = 1.0,
        apply_relu: bool = True,
        num_bits: int = 8,
    ) -> np.ndarray:
        """The standard post-PIM pipeline as one vectorised call.

        Applies (in order) bias addition, ReLU on the biased partial sums
        and requantization to the unsigned activation grid -- the element-
        wise chain every layer's outputs pass through -- charging the same
        per-stage operation counts as calling :meth:`add`, :meth:`relu` and
        :meth:`requantize` separately.

        Args:
            accumulators: INT32-range partial sums from the PIM core.
            bias: optional per-element (or broadcastable) bias.
            scale: requantization scale factor.
            apply_relu: clamp negative values before requantizing.
            num_bits: output bit width.

        Returns:
            Unsigned ``num_bits``-bit activation codes (``int64``).
        """
        values = np.asarray(accumulators)
        if bias is not None:
            values = self.add(values, bias)
        if apply_relu:
            values = self.relu(values)
        return self.requantize(values, scale, num_bits=num_bits)

    @property
    def cycles(self) -> int:
        """Cycles consumed assuming one operation per lane per cycle."""
        return -(-self.operations // self.lanes)
