"""Offline compilation: weight transformation, dataflow mapping, codegen."""

from .codegen import generate_layer_program, generate_program_from_mapping
from .isa import Instruction, Opcode, Program
from .mapping import LayerMapping, map_layer
from .weight_transform import (
    CompressedFilter,
    CompressedLayer,
    compress_filter,
    compress_layer,
)

__all__ = [
    "CompressedFilter",
    "CompressedLayer",
    "compress_filter",
    "compress_layer",
    "Instruction",
    "Opcode",
    "Program",
    "LayerMapping",
    "map_layer",
    "generate_layer_program",
    "generate_program_from_mapping",
]
