"""Offline compilation: weight transform, pass-based pipeline, codegen.

The compiler has two entry layers:

* the **whole-model pipeline** (:func:`compile_model`): lower a profiled
  workload into a per-layer IR, run the ordered pass list (threshold
  assignment, tiling, overlap scheduling, instruction-buffer splitting)
  and emit one segmented :class:`Program` for the entire network;
* the **single-layer helpers** (:func:`map_layer`,
  :func:`generate_layer_program`): the historical per-layer front door,
  kept as thin wrappers.
"""

from .codegen import emit_module, generate_layer_program, generate_program_from_mapping
from .isa import CYCLE_SCALE, Instruction, Opcode, Program, ProgramSegment
from .mapping import MAX_FTA_THRESHOLD, LayerMapping, map_layer
from .passes import (
    ElementwiseFusionPass,
    FeatureLivenessPass,
    MappingPass,
    OverlapPass,
    SplitPass,
    ThresholdAssignmentPass,
)
from .pipeline import (
    CompilationError,
    CompiledLayerInfo,
    CompiledModel,
    CompilerPass,
    FusedOp,
    LayerIR,
    ModuleIR,
    PassManager,
    compile_model,
    default_passes,
    lower_model,
)
from .schedule import (
    BYTES_PER_INSTRUCTION,
    DEFAULT_BYTES_PER_CYCLE,
    FusionDecision,
    LivenessInterval,
    OverlapDecision,
    ProgramSplitError,
    SegmentPlan,
    TransferModel,
    decide_overlap,
    fusion_anchors,
    plan_elementwise_fusion,
    plan_feature_liveness,
    plan_layer_segments,
    resident_payload_at,
)
from .weight_transform import (
    CompressedFilter,
    CompressedLayer,
    compress_filter,
    compress_layer,
)

__all__ = [
    "CompressedFilter",
    "CompressedLayer",
    "compress_filter",
    "compress_layer",
    "CYCLE_SCALE",
    "Instruction",
    "Opcode",
    "Program",
    "ProgramSegment",
    "MAX_FTA_THRESHOLD",
    "LayerMapping",
    "map_layer",
    "emit_module",
    "generate_layer_program",
    "generate_program_from_mapping",
    "CompilationError",
    "CompilerPass",
    "PassManager",
    "FusedOp",
    "LayerIR",
    "ModuleIR",
    "CompiledLayerInfo",
    "CompiledModel",
    "compile_model",
    "default_passes",
    "lower_model",
    "ThresholdAssignmentPass",
    "MappingPass",
    "ElementwiseFusionPass",
    "FeatureLivenessPass",
    "OverlapPass",
    "SplitPass",
    "BYTES_PER_INSTRUCTION",
    "DEFAULT_BYTES_PER_CYCLE",
    "TransferModel",
    "OverlapDecision",
    "SegmentPlan",
    "ProgramSplitError",
    "LivenessInterval",
    "FusionDecision",
    "decide_overlap",
    "fusion_anchors",
    "plan_elementwise_fusion",
    "plan_feature_liveness",
    "plan_layer_segments",
    "resident_payload_at",
]
