"""Instruction generation from a layer mapping.

The code generator walks the static mapping of a layer and emits the
instruction stream the top controller would dispatch: weight/metadata loads
per filter iteration, feature loads and broadcast/compute/accumulate steps
per pass, and a final write-back per output tile.  The stream is coarse
grained (one instruction per architectural step) but is sufficient to check
instruction-buffer sizing and gives the examples something concrete to show.
"""

from __future__ import annotations

from typing import Optional

from ..arch.config import DBPIMConfig
from ..workloads.layers import LayerShape
from .isa import Opcode, Program
from .mapping import LayerMapping, map_layer

__all__ = ["generate_layer_program", "generate_program_from_mapping"]


def generate_program_from_mapping(mapping: LayerMapping) -> Program:
    """Emit the instruction stream of one mapped layer.

    To keep programs small for very large layers, per-pass instructions are
    emitted once per (filter iteration, input tile) with a repeat count for
    the output positions rather than unrolling every output pixel.
    """
    program = Program()
    layer = mapping.layer
    for filter_iteration in range(mapping.filter_iterations):
        program.append(
            Opcode.LOAD_WEIGHTS,
            layer_filters=layer.out_channels,
            iteration=filter_iteration,
        )
        program.append(Opcode.LOAD_METADATA, iteration=filter_iteration)
        for input_tile in range(mapping.input_tiles):
            program.append(
                Opcode.LOAD_FEATURES,
                tile=input_tile,
                repeats=mapping.output_positions,
            )
            program.append(
                Opcode.BROADCAST,
                cycles=int(round(mapping.cycles_per_pass)),
                repeats=mapping.output_positions,
            )
            program.append(
                Opcode.MACRO_COMPUTE,
                filters=mapping.filters_per_pass,
                repeats=mapping.output_positions,
            )
            program.append(
                Opcode.ACCUMULATE,
                repeats=mapping.output_positions,
            )
        program.append(Opcode.BARRIER, iteration=filter_iteration)
    program.append(Opcode.SIMD_OP, elements=layer.out_channels * layer.output_positions)
    program.append(
        Opcode.WRITE_BACK, elements=layer.out_channels * layer.output_positions
    )
    return program


def generate_layer_program(
    layer: LayerShape,
    config: Optional[DBPIMConfig] = None,
    thresholds=None,
    input_active_columns: Optional[float] = None,
) -> Program:
    """Map a layer and generate its program in one step."""
    mapping = map_layer(
        layer,
        config=config,
        thresholds=thresholds,
        input_active_columns=input_active_columns,
    )
    return generate_program_from_mapping(mapping)
