"""Instruction emission: from scheduled IR (or one mapping) to programs.

Two emitters live here:

* :func:`emit_module` -- the whole-model backend of the pass pipeline
  (:func:`repro.compiler.pipeline.compile_model`).  It walks the scheduled
  :class:`~repro.compiler.pipeline.ModuleIR` and emits one segmented
  :class:`~repro.compiler.isa.Program` for the entire network: hoisted
  weight-load prologues, per-iteration compute chunks built once and
  replicated C-side, byte-payload operands for the trace simulator's
  buffer/DMA accounting, and Q16.16 ``cycles_q16`` broadcast operands that
  carry the analytical model's fractional cycles-per-pass exactly.  For
  graph workloads a layer's epilogue additionally materialises its fused
  SIMD ops: each join re-reads its branch operands through a
  ``residual``-tagged feature load (multi-producer traffic the trace
  simulator accounts) and the epilogue SIMD op covers the fused elements.
* :func:`generate_program_from_mapping` / :func:`generate_layer_program` --
  the historical single-layer front door, kept as a thin wrapper for
  callers that want one layer's stream without building a profile.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..arch.config import DBPIMConfig
from ..workloads.layers import LayerShape
from .isa import CYCLE_SCALE, Instruction, Opcode, Program
from .mapping import LayerMapping, map_layer
from .schedule import layer_transfer_bytes

__all__ = [
    "emit_module",
    "generate_layer_program",
    "generate_program_from_mapping",
]


def _emit_layer(
    program: Program,
    node,
    config: DBPIMConfig,
    segment_base: int,
) -> Tuple[Tuple[int, ...], int]:
    """Emit one scheduled layer; returns (segment indices, instructions)."""
    mapping: LayerMapping = node.mapping
    layer = mapping.layer
    transfers = layer_transfer_bytes(mapping, config)
    positions = mapping.output_positions
    tiles = mapping.input_tiles
    cycles_q16 = int(round(mapping.cycles_per_pass * CYCLE_SCALE))

    load_pair: List[Instruction] = [
        program.intern(
            Opcode.LOAD_WEIGHTS,
            bytes=transfers.weight_bytes_per_iteration,
            filters=layer.out_channels,
        )
    ]
    if config.weight_sparsity:
        load_pair.append(
            program.intern(
                Opcode.LOAD_METADATA,
                bytes=transfers.metadata_bytes_per_iteration,
            )
        )
    tile_body: List[Instruction] = [
        program.intern(
            Opcode.LOAD_FEATURES,
            bytes=transfers.feature_bytes_per_tile,
            repeats=positions,
        ),
        program.intern(
            Opcode.BROADCAST,
            cycles=int(round(mapping.cycles_per_pass)),
            cycles_q16=cycles_q16,
            repeats=positions,
        ),
        program.intern(
            Opcode.MACRO_COMPUTE,
            filters=mapping.filters_per_pass,
            repeats=positions,
        ),
        program.intern(Opcode.ACCUMULATE, repeats=positions),
    ]
    barrier = [program.intern(Opcode.BARRIER)]
    compute_chunk = tile_body * tiles + barrier
    streamed_chunk = load_pair + compute_chunk
    # The epilogue covers the layer's own post-processing plus any graph
    # SIMD ops fused into it: joins stream their earlier-produced branch
    # operands back through the feature path (tagged ``residual`` so the
    # controller can account multi-producer traffic separately), and the
    # SIMD op's element count grows by the fused work.
    simd_elements = transfers.output_bytes
    epilogue: List[Instruction] = []
    for fused in node.fused_ops:
        simd_elements += fused.elements
        if fused.residual_bytes:
            epilogue.append(
                program.intern(
                    Opcode.LOAD_FEATURES,
                    bytes=fused.residual_bytes,
                    residual=1,
                )
            )
            epilogue.append(program.intern(Opcode.ACCUMULATE, residual=1))
    epilogue += [
        program.intern(Opcode.SIMD_OP, elements=simd_elements),
        program.intern(
            Opcode.WRITE_BACK,
            elements=transfers.output_bytes,
            bytes=transfers.output_bytes,
        ),
    ]

    start_length = len(program)
    indices: List[int] = []
    for plan in node.segment_plan:
        program.open_segment(
            f"{layer.name}[{plan.start_iteration}:{plan.stop_iteration}]",
            layer=layer.name,
        )
        if plan.hoisted_iterations:
            program.append_block(load_pair, times=plan.hoisted_iterations)
        chunk = compute_chunk if node.overlap.hoist_weight_loads else streamed_chunk
        program.append_block(chunk, times=plan.iterations)
        if plan.epilogue:
            program.append_block(epilogue)
        if program.close_segment() is not None:
            indices.append(segment_base + len(indices))
    return tuple(indices), len(program) - start_length


def emit_module(module) -> Tuple[Program, List]:
    """Emit the whole-model program of a scheduled module.

    Args:
        module: a :class:`~repro.compiler.pipeline.ModuleIR` whose layers
            carry ``mapping``, ``overlap`` and ``segment_plan``.

    Returns:
        The segmented :class:`Program` and the per-layer
        :class:`~repro.compiler.pipeline.CompiledLayerInfo` records.
    """
    from .pipeline import CompiledLayerInfo

    program = Program()
    infos: List[CompiledLayerInfo] = []
    for node in module.layers:
        indices, count = _emit_layer(
            program, node, module.config, segment_base=len(program.segments)
        )
        mapping = node.mapping
        infos.append(
            CompiledLayerInfo(
                name=node.layer.name,
                filter_iterations=mapping.filter_iterations,
                input_tiles=mapping.input_tiles,
                output_positions=mapping.output_positions,
                cycles_per_pass_q16=int(
                    round(mapping.cycles_per_pass * CYCLE_SCALE)
                ),
                hoisted=node.overlap.hoist_weight_loads,
                double_buffered=node.overlap.double_buffer_features,
                segment_indices=indices,
                instructions=count,
                fused_ops=tuple(fused.name for fused in node.fused_ops),
                residual_bytes=sum(
                    fused.residual_bytes for fused in node.fused_ops
                ),
                resident_feature_bytes=node.resident_feature_bytes,
            )
        )
    return program, infos


def generate_program_from_mapping(mapping: LayerMapping) -> Program:
    """Emit the instruction stream of one mapped layer (flat, unsegmented).

    To keep programs small for very large layers, per-pass instructions are
    emitted once per (filter iteration, input tile) with a repeat count for
    the output positions rather than unrolling every output pixel.  The
    broadcast instructions carry both the legacy rounded ``cycles`` operand
    and the exact Q16.16 ``cycles_q16`` form.
    """
    program = Program()
    layer = mapping.layer
    cycles_q16 = int(round(mapping.cycles_per_pass * CYCLE_SCALE))
    for filter_iteration in range(mapping.filter_iterations):
        program.append(
            Opcode.LOAD_WEIGHTS,
            layer_filters=layer.out_channels,
            iteration=filter_iteration,
        )
        program.append(Opcode.LOAD_METADATA, iteration=filter_iteration)
        for input_tile in range(mapping.input_tiles):
            program.append(
                Opcode.LOAD_FEATURES,
                tile=input_tile,
                repeats=mapping.output_positions,
            )
            program.append(
                Opcode.BROADCAST,
                cycles=int(round(mapping.cycles_per_pass)),
                cycles_q16=cycles_q16,
                repeats=mapping.output_positions,
            )
            program.append(
                Opcode.MACRO_COMPUTE,
                filters=mapping.filters_per_pass,
                repeats=mapping.output_positions,
            )
            program.append(
                Opcode.ACCUMULATE,
                repeats=mapping.output_positions,
            )
        program.append(Opcode.BARRIER, iteration=filter_iteration)
    program.append(Opcode.SIMD_OP, elements=layer.out_channels * layer.output_positions)
    program.append(
        Opcode.WRITE_BACK, elements=layer.out_channels * layer.output_positions
    )
    return program


def generate_layer_program(
    layer: LayerShape,
    config: Optional[DBPIMConfig] = None,
    thresholds=None,
    input_active_columns: Optional[float] = None,
) -> Program:
    """Map a layer and generate its program in one step.

    This is the historical single-layer entry point, kept as a thin wrapper;
    whole networks compile through
    :func:`repro.compiler.pipeline.compile_model`.
    """
    mapping = map_layer(
        layer,
        config=config,
        thresholds=thresholds,
        input_active_columns=input_active_columns,
    )
    return generate_program_from_mapping(mapping)
