"""Minimal instruction set of the DB-PIM accelerator.

The paper mentions an instruction buffer, a top controller dispatching
control signals, and an offline instruction-generation step in the compiler.
This module defines the small ISA the code generator targets and the
containers the (functional) controller consumes.  The ISA is deliberately
coarse-grained: one instruction per architectural step of a tile, which is
the granularity the cycle model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional

__all__ = ["Opcode", "Instruction", "Program"]


class Opcode(Enum):
    """Architectural operations of the accelerator."""

    LOAD_WEIGHTS = "load_weights"
    LOAD_METADATA = "load_metadata"
    LOAD_FEATURES = "load_features"
    BROADCAST = "broadcast"
    MACRO_COMPUTE = "macro_compute"
    ACCUMULATE = "accumulate"
    SIMD_OP = "simd_op"
    WRITE_BACK = "write_back"
    BARRIER = "barrier"


@dataclass(frozen=True)
class Instruction:
    """One instruction with its operand fields.

    Attributes:
        opcode: the architectural operation.
        operands: free-form operand dictionary (tile ids, sizes, macro ids).
    """

    opcode: Opcode
    operands: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.opcode, Opcode):
            raise TypeError("opcode must be an Opcode")

    def operand(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """Fetch an operand by name."""
        return self.operands.get(name, default)


@dataclass
class Program:
    """An ordered instruction stream for one layer (or one model)."""

    instructions: List[Instruction] = field(default_factory=list)

    def append(self, opcode: Opcode, **operands: int) -> Instruction:
        """Append an instruction and return it."""
        instruction = Instruction(opcode=opcode, operands=dict(operands))
        self.instructions.append(instruction)
        return instruction

    def extend(self, other: "Program") -> None:
        self.instructions.extend(other.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def count(self, opcode: Opcode) -> int:
        """Number of instructions with the given opcode."""
        return sum(1 for instruction in self.instructions if instruction.opcode is opcode)

    def size_bytes(self, bytes_per_instruction: int = 8) -> int:
        """Encoded size, for checking against the instruction buffer."""
        if bytes_per_instruction <= 0:
            raise ValueError("bytes_per_instruction must be positive")
        return len(self.instructions) * bytes_per_instruction
