"""Minimal instruction set of the DB-PIM accelerator.

The paper mentions an instruction buffer, a top controller dispatching
control signals, and an offline instruction-generation step in the compiler.
This module defines the small ISA the code generator targets and the
containers the (functional) controller consumes.  The ISA is deliberately
coarse-grained: one instruction per architectural step of a tile, which is
the granularity the cycle model charges for.

Three representation choices keep whole-model programs compact (a VGG-19
program is a few hundred thousand encoded instructions):

* **Operand interning** -- :class:`Instruction` records are immutable, so a
  :class:`Program` keeps one shared instance per distinct
  ``(opcode, operands)`` pair and the instruction list stores references.
  The hot inner loops of a layer (feature load / broadcast / compute /
  accumulate) collapse to a handful of unique objects.
* **Repeat counts** -- a ``repeats`` operand dispatches one encoded
  instruction many times (the code generator uses it for the output-pixel
  loop); :meth:`Program.iter_dispatches` streams the expanded sequence
  lazily without materialising it.
* **Segments** -- a whole-model program is divided into
  :class:`ProgramSegment` windows, each sized to fit the instruction buffer
  (one segment per buffer refill).  Segments slice back out as standalone
  programs via :meth:`Program.segment_program`.

Broadcast cycle counts are carried in Q16.16 fixed point (``cycles_q16``,
see :data:`CYCLE_SCALE`) next to the legacy integer ``cycles`` operand, so
the trace simulator reproduces the analytical model's fractional
cycles-per-pass without floating-point operands in the ISA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CYCLE_SCALE",
    "Opcode",
    "Instruction",
    "ProgramSegment",
    "Program",
]

#: Fixed-point scale of the ``cycles_q16`` broadcast operand (Q16.16): the
#: analytical model's fractional cycles-per-pass is encoded as
#: ``round(cycles * CYCLE_SCALE)``, bounding the trace-vs-analytical
#: quantisation error of one pass to ``0.5 / CYCLE_SCALE`` cycles.
CYCLE_SCALE = 1 << 16


class Opcode(Enum):
    """Architectural operations of the accelerator."""

    LOAD_WEIGHTS = "load_weights"
    LOAD_METADATA = "load_metadata"
    LOAD_FEATURES = "load_features"
    BROADCAST = "broadcast"
    MACRO_COMPUTE = "macro_compute"
    ACCUMULATE = "accumulate"
    SIMD_OP = "simd_op"
    WRITE_BACK = "write_back"
    BARRIER = "barrier"


@dataclass(frozen=True)
class Instruction:
    """One instruction with its operand fields.

    Instances are immutable and may be *shared*: a :class:`Program` interns
    instructions by ``(opcode, operands)``, so the same object can appear at
    many stream positions.  Treat ``operands`` as read-only.

    Attributes:
        opcode: the architectural operation.
        operands: free-form operand dictionary (sizes, repeat counts, byte
            payloads, macro ids).
    """

    opcode: Opcode
    operands: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.opcode, Opcode):
            raise TypeError("opcode must be an Opcode")

    def operand(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """Fetch an operand by name."""
        return self.operands.get(name, default)

    @property
    def repeats(self) -> int:
        """Dispatch count of this encoded instruction (default 1)."""
        return int(self.operands.get("repeats", 1))


@dataclass(frozen=True)
class ProgramSegment:
    """One instruction-buffer-sized window of a program.

    Attributes:
        name: human-readable label (layer name plus iteration range).
        start: index of the segment's first instruction in the program.
        stop: one past the segment's last instruction.
        layer: name of the layer the segment belongs to (``None`` for
            layer-agnostic segments).
    """

    name: str
    start: int
    stop: int
    layer: Optional[str] = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError("segment bounds must satisfy 0 <= start <= stop")

    @property
    def num_instructions(self) -> int:
        """Encoded instructions inside the segment."""
        return self.stop - self.start

    def size_bytes(self, bytes_per_instruction: int = 8) -> int:
        """Encoded size of the segment (what one buffer refill must hold)."""
        if bytes_per_instruction <= 0:
            raise ValueError("bytes_per_instruction must be positive")
        return self.num_instructions * bytes_per_instruction


class Program:
    """An ordered instruction stream for one layer (or one whole model).

    Attributes:
        instructions: the encoded stream, in dispatch order.  Entries are
            interned -- identical ``(opcode, operands)`` pairs share one
            :class:`Instruction` object.
    """

    def __init__(self, instructions: Optional[Sequence[Instruction]] = None) -> None:
        self.instructions: List[Instruction] = list(instructions or ())
        self._segments: List[ProgramSegment] = []
        self._intern: Dict[Tuple, Instruction] = {}
        self._open: Optional[Tuple[str, Optional[str], int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def intern(self, opcode: Opcode, **operands: int) -> Instruction:
        """The shared :class:`Instruction` of ``(opcode, operands)``.

        Returns the pooled instance without appending it -- build repeated
        blocks once and append them with :meth:`append_block`.
        """
        key = (opcode, tuple(sorted(operands.items())))
        instruction = self._intern.get(key)
        if instruction is None:
            instruction = Instruction(opcode=opcode, operands=operands)
            self._intern[key] = instruction
        return instruction

    def append(self, opcode: Opcode, **operands: int) -> Instruction:
        """Append an instruction (interned) and return it."""
        instruction = self.intern(opcode, **operands)
        self.instructions.append(instruction)
        return instruction

    def append_block(self, block: Sequence[Instruction], times: int = 1) -> None:
        """Append a block of (already interned) instructions ``times`` times.

        The repetition happens as one C-level list multiplication, which is
        what keeps whole-model emission cheap for deeply tiled layers.
        """
        if times < 0:
            raise ValueError("times must be non-negative")
        if times and block:
            self.instructions.extend(list(block) * times)

    def extend(self, other: "Program") -> None:
        """Append another program's stream (and rebased segments)."""
        offset = len(self.instructions)
        self.instructions.extend(other.instructions)
        for segment in other.segments:
            self._segments.append(
                ProgramSegment(
                    name=segment.name,
                    start=segment.start + offset,
                    stop=segment.stop + offset,
                    layer=segment.layer,
                )
            )
        for key, instruction in other._intern.items():
            self._intern.setdefault(key, instruction)

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    def open_segment(self, name: str, layer: Optional[str] = None) -> None:
        """Start a new segment at the current stream position."""
        if self._open is not None:
            raise ValueError(
                f"segment {self._open[0]!r} is still open; close it first"
            )
        self._open = (name, layer, len(self.instructions))

    def close_segment(self) -> Optional[ProgramSegment]:
        """Close the open segment; empty segments are discarded."""
        if self._open is None:
            raise ValueError("no segment is open")
        name, layer, start = self._open
        self._open = None
        if start == len(self.instructions):
            return None
        segment = ProgramSegment(
            name=name, start=start, stop=len(self.instructions), layer=layer
        )
        self._segments.append(segment)
        return segment

    @property
    def segments(self) -> Tuple[ProgramSegment, ...]:
        """The recorded segments, in stream order (empty for flat programs)."""
        return tuple(self._segments)

    def segment_program(self, index: int) -> "Program":
        """Slice one segment back out as a standalone (flat) program."""
        segment = self._segments[index]
        return Program(self.instructions[segment.start : segment.stop])

    def layer_segments(self, layer: str) -> Tuple[ProgramSegment, ...]:
        """All segments belonging to one layer, in stream order."""
        return tuple(s for s in self._segments if s.layer == layer)

    # ------------------------------------------------------------------
    # Stream access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[Instruction, "Program"]:
        """Index one instruction, or slice a sub-stream as a flat program."""
        if isinstance(index, slice):
            return Program(self.instructions[index])
        return self.instructions[index]

    def iter_dispatches(self) -> Iterator[Instruction]:
        """Lazily expand ``repeats`` operands into the dispatched stream.

        Yields every encoded instruction once per dispatch without
        materialising the expanded sequence (whole-model programs expand to
        millions of dispatches).
        """
        for instruction in self.instructions:
            for _ in range(instruction.repeats):
                yield instruction

    def total_dispatches(self) -> int:
        """Dispatched instruction count (``repeats`` operands expanded)."""
        return sum(instruction.repeats for instruction in self.instructions)

    @property
    def unique_instructions(self) -> int:
        """Distinct interned instructions backing the stream."""
        if self._intern:
            return len(self._intern)
        return len({id(instruction) for instruction in self.instructions})

    def count(self, opcode: Opcode) -> int:
        """Number of encoded instructions with the given opcode."""
        return sum(1 for instruction in self.instructions if instruction.opcode is opcode)

    def size_bytes(self, bytes_per_instruction: int = 8) -> int:
        """Encoded size, for checking against the instruction buffer."""
        if bytes_per_instruction <= 0:
            raise ValueError("bytes_per_instruction must be positive")
        return len(self.instructions) * bytes_per_instruction
