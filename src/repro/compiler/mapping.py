"""Dataflow mapping: tiling NN layers onto the PIM macros.

The mapper answers, for one layer and one hardware configuration, the
questions the cycle model and code generator need:

* how many filters are processed in parallel (which depends on the FTA
  thresholds of the layer's filters and on whether weight sparsity is
  enabled at all),
* how many weight tiles / input-channel tiles / output positions a layer
  decomposes into, and
* how many bit-serial broadcast cycles one pass costs (which depends on the
  measured input column sparsity when the IPU's skipping is enabled).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional, Sequence

import numpy as np

from ..arch.config import DBPIMConfig
from ..workloads.layers import LayerShape

__all__ = ["MAX_FTA_THRESHOLD", "LayerMapping", "map_layer"]

#: Largest per-filter FTA threshold (``φ_th``) the dyadic-block mapping can
#: represent; the cycle-model engines share this bound (see
#: :mod:`repro.sim.vectorized`).
MAX_FTA_THRESHOLD = 4


@dataclass(frozen=True)
class LayerMapping:
    """Static mapping of one layer onto the accelerator.

    Attributes:
        layer: the layer being mapped.
        filters_per_pass: filters processed concurrently across all macros.
        filter_iterations: outer iterations over the layer's filters.
        input_tiles: tiles along the reduction (Cin x K x K) dimension.
        output_positions: output pixels (1 for a fully connected layer).
        cycles_per_pass: bit-serial broadcast cycles of one pass.
        weights_per_pass_cells: 6T cells driven per broadcast cycle.
    """

    layer: LayerShape
    filters_per_pass: int
    filter_iterations: int
    input_tiles: int
    output_positions: int
    cycles_per_pass: float
    weights_per_pass_cells: int

    @property
    def total_passes(self) -> int:
        """Macro passes needed for the whole layer."""
        return self.filter_iterations * self.input_tiles * self.output_positions

    @property
    def total_cycles(self) -> float:
        """Broadcast cycles for the whole layer."""
        return self.total_passes * self.cycles_per_pass

    @property
    def total_cell_activations(self) -> float:
        """6T cells driven over every cycle of the whole layer."""
        return self.total_cycles * self.weights_per_pass_cells


def _filter_iterations_sparse(
    thresholds: np.ndarray, config: DBPIMConfig
) -> tuple:
    """Iterations and average parallel filters when grouping by threshold."""
    macro = config.macro
    if thresholds.size and (
        thresholds.min() < 0 or thresholds.max() > MAX_FTA_THRESHOLD
    ):
        raise ValueError(f"FTA thresholds must lie in 0..{MAX_FTA_THRESHOLD}")
    iterations = 0
    weighted_parallel = 0.0
    total = 0
    for threshold in np.unique(thresholds):
        count = int((thresholds == threshold).sum())
        per_macro = macro.sparse_filters_per_macro(int(threshold))
        per_pass = per_macro * config.num_macros
        iterations += ceil(count / per_pass)
        weighted_parallel += per_pass * count
        total += count
    if total == 0:
        return 1, macro.sparse_filters_per_macro(1) * config.num_macros
    return max(iterations, 1), weighted_parallel / total


def map_layer(
    layer: LayerShape,
    config: Optional[DBPIMConfig] = None,
    thresholds: Optional[Sequence[int]] = None,
    input_active_columns: Optional[float] = None,
) -> LayerMapping:
    """Map one layer onto the accelerator.

    Args:
        layer: layer shape descriptor.
        config: hardware configuration (DB-PIM default).
        thresholds: per-filter FTA thresholds; required when weight sparsity
            is enabled (ignored otherwise).
        input_active_columns: measured average number of non-zero input bit
            columns per IPU group; required when input sparsity is enabled.

    Returns:
        A :class:`LayerMapping` with the static tiling decisions.
    """
    config = config or DBPIMConfig()
    macro = config.macro

    if config.weight_sparsity:
        if thresholds is None:
            raise ValueError("weight sparsity requires per-filter thresholds")
        thresholds = np.asarray(thresholds, dtype=np.int64)
        if thresholds.size != layer.out_channels:
            raise ValueError(
                f"expected {layer.out_channels} thresholds, got {thresholds.size}"
            )
        filter_iterations, filters_per_pass = _filter_iterations_sparse(
            thresholds, config
        )
        # Whatever the threshold, the whole 16-cell row is driven each cycle.
        cells_per_row = macro.columns
    else:
        per_pass = macro.dense_filters_per_macro * config.num_macros
        filter_iterations = ceil(layer.out_channels / per_pass)
        filters_per_pass = per_pass
        cells_per_row = macro.columns

    if config.input_sparsity:
        if input_active_columns is None:
            raise ValueError(
                "input sparsity requires the measured active-column count"
            )
        cycles_per_pass = float(
            np.clip(input_active_columns, 0.0, macro.input_bits)
        )
    else:
        cycles_per_pass = float(macro.input_bits)

    reduction = layer.reduction_size
    rows_used = min(reduction, macro.rows)
    input_tiles = ceil(reduction / macro.rows)
    weights_per_pass_cells = cells_per_row * rows_used * config.num_macros

    return LayerMapping(
        layer=layer,
        filters_per_pass=int(filters_per_pass),
        filter_iterations=int(filter_iterations),
        input_tiles=int(input_tiles),
        output_positions=int(layer.output_positions),
        cycles_per_pass=cycles_per_pass,
        weights_per_pass_cells=int(weights_per_pass_cells),
    )
