"""The standard compiler passes of the whole-model pipeline.

Each pass is one IR-to-IR transformation over a
:class:`~repro.compiler.pipeline.ModuleIR`; the
:class:`~repro.compiler.pipeline.PassManager` runs them in order:

1. :class:`ThresholdAssignmentPass` -- attach the profile's FTA thresholds
   and IPU statistics to every layer (respecting the variant's sparsity
   flags);
2. :class:`MappingPass` -- run the dataflow mapper, fixing every layer's
   tiling onto the macros;
3. :class:`ElementwiseFusionPass` -- fuse the graph's SIMD ops
   (add/concat/softmax) into the epilogue of their latest-scheduled
   producing layer, recording the extra SIMD elements and the branch bytes
   each join re-reads (no-op for linear workloads);
4. :class:`FeatureLivenessPass` -- plan feature-buffer residency over the
   graph schedule: join nodes extend the residency of their branch
   operands, shrinking downstream double-buffering headroom (no-op for
   linear workloads);
5. :class:`OverlapPass` -- decide weight-load hoisting and feature-tile
   double buffering from the buffer capacities and the resident branch
   bytes;
6. :class:`SplitPass` -- segment every layer's instruction stream to the
   instruction buffer, downgrading a hoist that cannot share a refill with
   its first compute iteration.

Passes fail loudly (``CompilationError``) when a prerequisite is missing,
so custom pass lists that break the order are caught before emission.
"""

from __future__ import annotations

from .mapping import MAX_FTA_THRESHOLD, map_layer
from .pipeline import CompilationError, CompilerPass, FusedOp, ModuleIR
from .schedule import (
    OverlapDecision,
    ProgramSplitError,
    decide_overlap,
    plan_elementwise_fusion,
    plan_feature_liveness,
    plan_layer_segments,
    resident_payload_at,
)

__all__ = [
    "ThresholdAssignmentPass",
    "MappingPass",
    "ElementwiseFusionPass",
    "FeatureLivenessPass",
    "OverlapPass",
    "SplitPass",
    "instructions_per_iteration",
    "epilogue_instructions_of",
]

#: Instructions of one tile's compute body (feature load, broadcast,
#: macro compute, accumulate).
_TILE_BODY = 4

#: Instructions of a layer's epilogue (SIMD op + write back).
_EPILOGUE = 2


def instructions_per_iteration(input_tiles: int, load_instructions: int) -> int:
    """Encoded instructions of one filter iteration (loads + tiles + barrier)."""
    return load_instructions + _TILE_BODY * input_tiles + 1


def epilogue_instructions_of(node) -> int:
    """Encoded epilogue instructions of one layer node.

    The base epilogue is a SIMD op plus a write back; every fused join that
    re-reads a branch operand adds a residual feature load and its retiring
    accumulate.  Shared by the split pass and the emitter so segmentation
    and emission can never disagree.
    """
    residual_streams = sum(
        1 for fused in node.fused_ops if fused.residual_bytes > 0
    )
    return _EPILOGUE + 2 * residual_streams


class ThresholdAssignmentPass(CompilerPass):
    """Attach FTA thresholds and IPU statistics from the module's profile.

    Under weight sparsity every layer receives its per-filter ``phi_th``
    tuple (validated against :data:`~repro.compiler.mapping.MAX_FTA_THRESHOLD`);
    under input sparsity every layer receives its measured average active
    bit-column count.  Disabled sparsity modes leave the fields ``None`` so
    the mapper takes the dense paths.
    """

    name = "assign-thresholds"

    def run(self, module: ModuleIR) -> None:
        """Copy the profile's statistics onto every layer node."""
        if module.profile is None:
            raise CompilationError(
                f"pass {self.name!r} requires the module's sparsity profile; "
                "lower the module with lower_model()"
            )
        for node, layer_profile in zip(module.layers, module.profile.layers):
            if module.config.weight_sparsity:
                thresholds = tuple(int(t) for t in layer_profile.thresholds)
                if len(thresholds) != node.layer.out_channels:
                    raise CompilationError(
                        f"layer {node.layer.name!r}: expected "
                        f"{node.layer.out_channels} thresholds, got {len(thresholds)}"
                    )
                if thresholds and not all(
                    0 <= t <= MAX_FTA_THRESHOLD for t in thresholds
                ):
                    raise CompilationError(
                        f"layer {node.layer.name!r}: FTA thresholds must lie "
                        f"in 0..{MAX_FTA_THRESHOLD}"
                    )
                node.thresholds = thresholds
            if module.config.input_sparsity:
                node.input_active_columns = float(layer_profile.input_active_columns)


class MappingPass(CompilerPass):
    """Fix every layer's static tiling via the dataflow mapper."""

    name = "map-tiling"

    def run(self, module: ModuleIR) -> None:
        """Run :func:`repro.compiler.mapping.map_layer` on every node."""
        for node in module.layers:
            node.mapping = map_layer(
                node.layer,
                config=module.config,
                thresholds=node.thresholds,
                input_active_columns=node.input_active_columns,
            )


class ElementwiseFusionPass(CompilerPass):
    """Fuse graph SIMD ops into the epilogue of their anchor layer.

    Every SIMD node (add/concat/softmax) of the module's graph is folded
    into the latest-scheduled weighted layer among its producers: the
    anchor's epilogue SIMD op grows by the node's output elements, and for
    joins the branch operands produced by *earlier* layers are recorded as
    residual bytes the emitter streams back through the feature path.
    Modules without a graph (legacy linear tables) are left untouched.
    """

    name = "fuse-elementwise"

    def run(self, module: ModuleIR) -> None:
        """Attach :class:`~repro.compiler.pipeline.FusedOp` records."""
        if module.graph is None:
            return
        try:
            decisions = plan_elementwise_fusion(module.graph)
        except ValueError as error:
            raise CompilationError(str(error)) from error
        for decision in decisions:
            node = module.layers[decision.anchor]
            node.fused_ops = node.fused_ops + (
                FusedOp(
                    name=decision.name,
                    op=decision.op,
                    elements=decision.elements,
                    residual_bytes=decision.residual_bytes,
                ),
            )


class FeatureLivenessPass(CompilerPass):
    """Plan feature-buffer residency across the graph schedule.

    Computes one liveness interval per produced value (see
    :func:`repro.compiler.schedule.plan_feature_liveness`) and annotates
    every layer with the branch bytes resident while it executes -- the
    quantity the overlap pass subtracts from the feature buffer before
    granting double buffering.  Modules without a graph keep residency 0.
    """

    name = "plan-feature-liveness"

    def run(self, module: ModuleIR) -> None:
        """Attach the module's liveness plan and per-layer residency."""
        if module.graph is None:
            return
        module.liveness = plan_feature_liveness(module.graph)
        for position, node in enumerate(module.layers):
            node.resident_feature_bytes = resident_payload_at(
                module.liveness, position
            )


class OverlapPass(CompilerPass):
    """Decide weight-load hoisting and feature double buffering per layer.

    Consumes the feature-liveness pass's resident branch bytes, so a layer
    executing while a join operand is parked in the feature buffer only
    double-buffers if two tiles *plus* the resident bytes fit.
    """

    name = "overlap-double-buffer"

    def run(self, module: ModuleIR) -> None:
        """Attach an :class:`~repro.compiler.schedule.OverlapDecision`."""
        module.require("mapping", self.name)
        for node in module.layers:
            node.overlap = decide_overlap(
                node.mapping,
                module.config,
                resident_feature_bytes=node.resident_feature_bytes,
            )


class SplitPass(CompilerPass):
    """Segment every layer's stream to the instruction buffer.

    A hoisted layer whose prologue cannot share a buffer refill with its
    first compute iteration is downgraded to per-iteration streaming (the
    overlap decision is rewritten so emission and metadata stay
    consistent).
    """

    name = "split-instruction-buffer"

    def run(self, module: ModuleIR) -> None:
        """Compute each layer's :class:`~repro.compiler.schedule.SegmentPlan`."""
        module.require("mapping", self.name)
        module.require("overlap", self.name)
        capacity = module.config.buffers.instruction_buffer
        for node in module.layers:
            loads = 2 if module.config.weight_sparsity else 1
            try:
                plans = plan_layer_segments(
                    node.layer.name,
                    iterations=node.mapping.filter_iterations,
                    load_instructions=loads,
                    tile_instructions=_TILE_BODY * node.mapping.input_tiles,
                    epilogue_instructions=epilogue_instructions_of(node),
                    hoisted=node.overlap.hoist_weight_loads,
                    capacity_bytes=capacity,
                )
            except ProgramSplitError as error:
                raise CompilationError(str(error)) from error
            hoisted = bool(plans and plans[0].hoisted_iterations)
            if hoisted != node.overlap.hoist_weight_loads:
                node.overlap = OverlapDecision(
                    hoist_weight_loads=hoisted,
                    double_buffer_features=node.overlap.double_buffer_features,
                    reason=node.overlap.reason
                    + "; hoist downgraded (prologue exceeds one refill)",
                )
            node.segment_plan = tuple(plans)
