"""Whole-model, pass-based compilation pipeline.

This is the compiler's top half: it lowers a profiled workload into a
mutable per-layer IR, runs an ordered list of transformation passes over it,
and hands the scheduled module to the code generator, producing one
:class:`~repro.compiler.isa.Program` for the *whole network* -- segmented to
the instruction buffer, annotated with per-layer metadata, and replayable on
the trace simulator (:mod:`repro.sim.trace`).

Stages::

    ModelSparsityProfile + DBPIMConfig + variant
        |  lower_model()
        v
    ModuleIR (one LayerIR per weighted layer)
        |  PassManager.run()  --  ordered CompilerPass list:
        |    threshold-assignment  (FTA phi_th from the profile)
        |    mapping               (tiling onto the macros)
        |    overlap               (weight-load hoisting + double buffering)
        |    split                 (instruction-buffer-aware segmentation)
        v
    scheduled ModuleIR
        |  emit_module()  (repro.compiler.codegen)
        v
    CompiledModel (Program with segments + per-layer CompiledLayerInfo)

:func:`compile_model` wires the stages together and is what the façade's
``"program"`` experiment and the trace simulator consume; the historical
per-layer :func:`repro.compiler.codegen.generate_layer_program` remains as a
thin single-layer front door.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..arch.config import DBPIMConfig
from ..workloads.layers import LayerShape
from ..workloads.models import ModelWorkload
from ..workloads.profiles import ModelSparsityProfile
from .isa import CYCLE_SCALE, Program
from .mapping import LayerMapping
from .schedule import OverlapDecision, SegmentPlan

__all__ = [
    "CompilationError",
    "LayerIR",
    "ModuleIR",
    "CompilerPass",
    "PassManager",
    "lower_model",
    "default_passes",
    "compile_model",
    "CompiledLayerInfo",
    "CompiledModel",
]


class CompilationError(ValueError):
    """A pass (or the emitter) rejected the module being compiled."""


@dataclass
class LayerIR:
    """Mutable per-layer node of the module IR.

    Passes progressively fill the optional fields; the emitter requires
    ``mapping``, ``overlap`` and ``segment_plan`` to be present.

    Attributes:
        layer: the layer's shape descriptor.
        thresholds: per-filter FTA thresholds (set by the threshold pass
            when weight sparsity is enabled).
        input_active_columns: measured IPU active bit columns (set by the
            threshold pass when input sparsity is enabled).
        mapping: static tiling decisions (set by the mapping pass).
        overlap: hoist / double-buffering decisions (set by the overlap
            pass).
        segment_plan: instruction-buffer segmentation (set by the split
            pass).
    """

    layer: LayerShape
    thresholds: Optional[Tuple[int, ...]] = None
    input_active_columns: Optional[float] = None
    mapping: Optional[LayerMapping] = None
    overlap: Optional[OverlapDecision] = None
    segment_plan: Optional[Tuple[SegmentPlan, ...]] = None


@dataclass
class ModuleIR:
    """Whole-model intermediate representation the passes transform.

    Attributes:
        workload: the network being compiled.
        config: the hardware configuration with the variant's sparsity
            flags already applied.
        variant: the Fig. 7 sparsity variant name.
        layers: one :class:`LayerIR` per weighted layer, in network order.
        profile: the sparsity profile the module was lowered from (read by
            the threshold-assignment pass).
        pass_log: names of the passes that ran, in order.
    """

    workload: ModelWorkload
    config: DBPIMConfig
    variant: str
    layers: List[LayerIR] = field(default_factory=list)
    profile: Optional[ModelSparsityProfile] = None
    pass_log: List[str] = field(default_factory=list)

    def require(self, attribute: str, pass_name: str) -> None:
        """Assert that an earlier pass filled ``attribute`` on every layer.

        Raises:
            CompilationError: naming the first unfilled layer, so a
                mis-ordered pass list fails loudly instead of emitting a
                broken program.
        """
        for node in self.layers:
            if getattr(node, attribute) is None:
                raise CompilationError(
                    f"pass {pass_name!r} requires {attribute!r} on layer "
                    f"{node.layer.name!r}; run the producing pass first"
                )


class CompilerPass:
    """Base class of one IR-to-IR transformation.

    Subclasses set :attr:`name` and implement :meth:`run`, mutating the
    module in place.
    """

    #: Stable pass name recorded in the module's pass log.
    name = "pass"

    def run(self, module: ModuleIR) -> None:
        """Transform ``module`` in place."""
        raise NotImplementedError


class PassManager:
    """Runs an ordered list of passes over a module.

    Args:
        passes: the passes, in execution order.
    """

    def __init__(self, passes: Sequence[CompilerPass]) -> None:
        self.passes: Tuple[CompilerPass, ...] = tuple(passes)

    def run(self, module: ModuleIR) -> ModuleIR:
        """Run every pass in order, recording each in the pass log."""
        for compiler_pass in self.passes:
            compiler_pass.run(module)
            module.pass_log.append(compiler_pass.name)
        return module


def lower_model(
    profile: ModelSparsityProfile,
    config: Optional[DBPIMConfig] = None,
    variant: str = "hybrid",
) -> ModuleIR:
    """Lower a profiled workload into the module IR.

    Applies the variant's sparsity flags to the configuration (see
    :meth:`repro.arch.config.DBPIMConfig.for_variant`) and creates one
    unscheduled :class:`LayerIR` per weighted layer; the profile's sparsity
    statistics are attached by the threshold-assignment pass, not here.

    Args:
        profile: the profiled workload.
        config: base hardware configuration (paper default when omitted).
        variant: one of the Fig. 7 sparsity variants.

    Returns:
        The unscheduled module.
    """
    config = (config or DBPIMConfig()).for_variant(variant)
    return ModuleIR(
        workload=profile.workload,
        config=config,
        variant=variant,
        layers=[LayerIR(layer=p.layer) for p in profile.layers],
        profile=profile,
    )


def default_passes(module: ModuleIR) -> List[CompilerPass]:
    """The standard pass list for a lowered module, in order."""
    from .passes import (
        MappingPass,
        OverlapPass,
        SplitPass,
        ThresholdAssignmentPass,
    )

    return [
        ThresholdAssignmentPass(),
        MappingPass(),
        OverlapPass(),
        SplitPass(),
    ]


@dataclass(frozen=True)
class CompiledLayerInfo:
    """Per-layer metadata of a compiled whole-model program.

    Attributes:
        name: layer name.
        filter_iterations, input_tiles, output_positions: the mapping's
            loop bounds (what the emitted stream unrolls).
        cycles_per_pass_q16: broadcast cycles of one pass in Q16.16 fixed
            point (the ``cycles_q16`` operand of the layer's broadcasts).
        hoisted: whether weight loads were emitted as a prologue.
        double_buffered: whether feature tiles are double-buffered.
        segment_indices: indices of the layer's segments in the program.
        instructions: encoded instructions of the layer.
    """

    name: str
    filter_iterations: int
    input_tiles: int
    output_positions: int
    cycles_per_pass_q16: int
    hoisted: bool
    double_buffered: bool
    segment_indices: Tuple[int, ...]
    instructions: int

    @property
    def expected_compute_cycles(self) -> float:
        """Broadcast cycles the emitted stream encodes for this layer."""
        passes = self.filter_iterations * self.input_tiles * self.output_positions
        return passes * self.cycles_per_pass_q16 / CYCLE_SCALE


@dataclass(frozen=True)
class CompiledModel:
    """The output of :func:`compile_model`.

    Attributes:
        name: workload name.
        variant: the Fig. 7 sparsity variant compiled for.
        config: the variant-applied hardware configuration.
        program: the whole-model segmented instruction stream.
        layers: per-layer metadata, in network order.
        pass_log: names of the passes that ran, in order.
    """

    name: str
    variant: str
    config: DBPIMConfig
    program: Program
    layers: Tuple[CompiledLayerInfo, ...]
    pass_log: Tuple[str, ...]

    @property
    def expected_compute_cycles(self) -> float:
        """Broadcast cycles the program encodes, summed over all layers."""
        return sum(layer.expected_compute_cycles for layer in self.layers)

    def layer(self, name: str) -> CompiledLayerInfo:
        """Look one layer's metadata up by name."""
        for info in self.layers:
            if info.name == name:
                return info
        raise KeyError(
            f"unknown layer {name!r}; available: {[l.name for l in self.layers]}"
        )


def compile_model(
    profile: ModelSparsityProfile,
    config: Optional[DBPIMConfig] = None,
    variant: str = "hybrid",
    passes: Optional[Sequence[CompilerPass]] = None,
) -> CompiledModel:
    """Compile a whole workload into one segmented program.

    Lowers the profile, runs the pass pipeline (the default list of
    :func:`default_passes` unless overridden) and emits the instruction
    stream.

    Args:
        profile: the profiled workload (thresholds + IPU statistics).
        config: base hardware configuration (paper default when omitted).
        variant: one of the Fig. 7 sparsity variants.
        passes: replacement pass list (advanced; order matters).

    Returns:
        The compiled model: segmented program plus per-layer metadata.

    Raises:
        CompilationError: when a pass prerequisite is missing or a layer
            cannot be segmented into the instruction buffer.
    """
    from .codegen import emit_module

    module = lower_model(profile, config=config, variant=variant)
    manager = PassManager(passes if passes is not None else default_passes(module))
    manager.run(module)
    for required in ("mapping", "overlap", "segment_plan"):
        module.require(required, "emit")
    program, infos = emit_module(module)
    return CompiledModel(
        name=module.workload.name,
        variant=module.variant,
        config=module.config,
        program=program,
        layers=tuple(infos),
        pass_log=tuple(module.pass_log),
    )
