"""Whole-model, pass-based compilation pipeline.

This is the compiler's top half: it lowers a profiled workload into a
mutable per-layer IR, runs an ordered list of transformation passes over it,
and hands the scheduled module to the code generator, producing one
:class:`~repro.compiler.isa.Program` for the *whole network* -- segmented to
the instruction buffer, annotated with per-layer metadata, and replayable on
the trace simulator (:mod:`repro.sim.trace`).

Stages::

    ModelSparsityProfile + DBPIMConfig + variant
        |  lower_model()   (attaches the workload's ModelGraph, if any)
        v
    ModuleIR (one LayerIR per weighted layer + the source graph)
        |  PassManager.run()  --  ordered CompilerPass list:
        |    threshold-assignment  (FTA phi_th from the profile)
        |    mapping               (tiling onto the macros)
        |    elementwise-fusion    (graph SIMD ops fused into epilogues)
        |    feature-liveness      (branch residency over the schedule)
        |    overlap               (weight-load hoisting + double buffering,
        |                           liveness-aware for graph workloads)
        |    split                 (instruction-buffer-aware segmentation)
        v
    scheduled ModuleIR
        |  emit_module()  (repro.compiler.codegen)
        v
    CompiledModel (Program with segments + per-layer CompiledLayerInfo)

:func:`compile_model` wires the stages together and is what the façade's
``"program"`` experiment and the trace simulator consume; the historical
per-layer :func:`repro.compiler.codegen.generate_layer_program` remains as a
thin single-layer front door.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..arch.config import DBPIMConfig
from ..workloads.graph import ModelGraph
from ..workloads.layers import LayerShape
from ..workloads.models import ModelWorkload
from ..workloads.profiles import ModelSparsityProfile
from .isa import CYCLE_SCALE, Program
from .mapping import LayerMapping
from .schedule import LivenessInterval, OverlapDecision, SegmentPlan

__all__ = [
    "CompilationError",
    "FusedOp",
    "LayerIR",
    "ModuleIR",
    "CompilerPass",
    "PassManager",
    "lower_model",
    "default_passes",
    "compile_model",
    "CompiledLayerInfo",
    "CompiledModel",
]


class CompilationError(ValueError):
    """A pass (or the emitter) rejected the module being compiled."""


@dataclass(frozen=True)
class FusedOp:
    """One graph SIMD op fused into a weighted layer's epilogue.

    Attributes:
        name: name of the fused graph node.
        op: the node's operator (``"add"``, ``"concat"`` or ``"softmax"``).
        elements: output elements the SIMD core processes for the op.
        residual_bytes: feature bytes of branch operands produced by
            *earlier* layers that the join re-reads (0 for single-producer
            ops such as softmax).
    """

    name: str
    op: str
    elements: int
    residual_bytes: int = 0


@dataclass
class LayerIR:
    """Mutable per-layer node of the module IR.

    Passes progressively fill the optional fields; the emitter requires
    ``mapping``, ``overlap`` and ``segment_plan`` to be present.

    Attributes:
        layer: the layer's shape descriptor.
        thresholds: per-filter FTA thresholds (set by the threshold pass
            when weight sparsity is enabled).
        input_active_columns: measured IPU active bit columns (set by the
            threshold pass when input sparsity is enabled).
        mapping: static tiling decisions (set by the mapping pass).
        fused_ops: graph SIMD ops fused into this layer's epilogue (set by
            the elementwise-fusion pass; empty for linear workloads).
        resident_feature_bytes: branch bytes the liveness plan keeps in the
            feature buffer across this layer (set by the feature-liveness
            pass; 0 for linear workloads).
        overlap: hoist / double-buffering decisions (set by the overlap
            pass).
        segment_plan: instruction-buffer segmentation (set by the split
            pass).
    """

    layer: LayerShape
    thresholds: Optional[Tuple[int, ...]] = None
    input_active_columns: Optional[float] = None
    mapping: Optional[LayerMapping] = None
    fused_ops: Tuple[FusedOp, ...] = ()
    resident_feature_bytes: int = 0
    overlap: Optional[OverlapDecision] = None
    segment_plan: Optional[Tuple[SegmentPlan, ...]] = None


@dataclass
class ModuleIR:
    """Whole-model intermediate representation the passes transform.

    Attributes:
        workload: the network being compiled.
        config: the hardware configuration with the variant's sparsity
            flags already applied.
        variant: the Fig. 7 sparsity variant name.
        layers: one :class:`LayerIR` per weighted layer, in schedule order
            (the graph's linearized order for graph workloads).
        profile: the sparsity profile the module was lowered from (read by
            the threshold-assignment pass).
        graph: the workload's DAG (``None`` for legacy linear tables); read
            by the elementwise-fusion and feature-liveness passes.
        liveness: the feature-buffer liveness plan (set by the
            feature-liveness pass for graph workloads).
        pass_log: names of the passes that ran, in order.
    """

    workload: ModelWorkload
    config: DBPIMConfig
    variant: str
    layers: List[LayerIR] = field(default_factory=list)
    profile: Optional[ModelSparsityProfile] = None
    graph: Optional[ModelGraph] = None
    liveness: Tuple[LivenessInterval, ...] = ()
    pass_log: List[str] = field(default_factory=list)

    def require(self, attribute: str, pass_name: str) -> None:
        """Assert that an earlier pass filled ``attribute`` on every layer.

        Raises:
            CompilationError: naming the first unfilled layer, so a
                mis-ordered pass list fails loudly instead of emitting a
                broken program.
        """
        for node in self.layers:
            if getattr(node, attribute) is None:
                raise CompilationError(
                    f"pass {pass_name!r} requires {attribute!r} on layer "
                    f"{node.layer.name!r}; run the producing pass first"
                )


class CompilerPass:
    """Base class of one IR-to-IR transformation.

    Subclasses set :attr:`name` and implement :meth:`run`, mutating the
    module in place.
    """

    #: Stable pass name recorded in the module's pass log.
    name = "pass"

    def run(self, module: ModuleIR) -> None:
        """Transform ``module`` in place."""
        raise NotImplementedError


class PassManager:
    """Runs an ordered list of passes over a module.

    Args:
        passes: the passes, in execution order.
    """

    def __init__(self, passes: Sequence[CompilerPass]) -> None:
        self.passes: Tuple[CompilerPass, ...] = tuple(passes)

    def run(self, module: ModuleIR) -> ModuleIR:
        """Run every pass in order, recording each in the pass log."""
        for compiler_pass in self.passes:
            compiler_pass.run(module)
            module.pass_log.append(compiler_pass.name)
        return module


def lower_model(
    profile: ModelSparsityProfile,
    config: Optional[DBPIMConfig] = None,
    variant: str = "hybrid",
) -> ModuleIR:
    """Lower a profiled workload into the module IR.

    Applies the variant's sparsity flags to the configuration (see
    :meth:`repro.arch.config.DBPIMConfig.for_variant`) and creates one
    unscheduled :class:`LayerIR` per weighted layer; the profile's sparsity
    statistics are attached by the threshold-assignment pass, not here.

    Args:
        profile: the profiled workload.
        config: base hardware configuration (paper default when omitted).
        variant: one of the Fig. 7 sparsity variants.

    Returns:
        The unscheduled module.
    """
    config = (config or DBPIMConfig()).for_variant(variant)
    graph = profile.workload.graph
    if graph is not None:
        graph_names = [layer.name for layer in graph.linearize()]
        profile_names = [p.layer.name for p in profile.layers]
        if graph_names != profile_names:
            raise CompilationError(
                f"profile of {profile.workload.name!r} does not match its "
                f"graph's linearized schedule (profile: {profile_names[:3]}..., "
                f"graph: {graph_names[:3]}...)"
            )
    return ModuleIR(
        workload=profile.workload,
        config=config,
        variant=variant,
        layers=[LayerIR(layer=p.layer) for p in profile.layers],
        profile=profile,
        graph=graph,
    )


def default_passes(module: ModuleIR) -> List[CompilerPass]:
    """The standard pass list for a lowered module, in order.

    The graph-aware passes (elementwise fusion, feature liveness) are
    included unconditionally -- they are no-ops for modules without a
    graph -- so the pass log is identical across workload shapes.
    """
    from .passes import (
        ElementwiseFusionPass,
        FeatureLivenessPass,
        MappingPass,
        OverlapPass,
        SplitPass,
        ThresholdAssignmentPass,
    )

    return [
        ThresholdAssignmentPass(),
        MappingPass(),
        ElementwiseFusionPass(),
        FeatureLivenessPass(),
        OverlapPass(),
        SplitPass(),
    ]


@dataclass(frozen=True)
class CompiledLayerInfo:
    """Per-layer metadata of a compiled whole-model program.

    Attributes:
        name: layer name.
        filter_iterations, input_tiles, output_positions: the mapping's
            loop bounds (what the emitted stream unrolls).
        cycles_per_pass_q16: broadcast cycles of one pass in Q16.16 fixed
            point (the ``cycles_q16`` operand of the layer's broadcasts).
        hoisted: whether weight loads were emitted as a prologue.
        double_buffered: whether feature tiles are double-buffered.
        segment_indices: indices of the layer's segments in the program.
        instructions: encoded instructions of the layer.
        fused_ops: names of the graph SIMD ops fused into the epilogue.
        residual_bytes: branch-operand bytes the fused joins re-read.
        resident_feature_bytes: branch bytes resident across the layer.
    """

    name: str
    filter_iterations: int
    input_tiles: int
    output_positions: int
    cycles_per_pass_q16: int
    hoisted: bool
    double_buffered: bool
    segment_indices: Tuple[int, ...]
    instructions: int
    fused_ops: Tuple[str, ...] = ()
    residual_bytes: int = 0
    resident_feature_bytes: int = 0

    @property
    def expected_compute_cycles(self) -> float:
        """Broadcast cycles the emitted stream encodes for this layer."""
        passes = self.filter_iterations * self.input_tiles * self.output_positions
        return passes * self.cycles_per_pass_q16 / CYCLE_SCALE


@dataclass(frozen=True)
class CompiledModel:
    """The output of :func:`compile_model`.

    Attributes:
        name: workload name.
        variant: the Fig. 7 sparsity variant compiled for.
        config: the variant-applied hardware configuration.
        program: the whole-model segmented instruction stream.
        layers: per-layer metadata, in network order.
        pass_log: names of the passes that ran, in order.
    """

    name: str
    variant: str
    config: DBPIMConfig
    program: Program
    layers: Tuple[CompiledLayerInfo, ...]
    pass_log: Tuple[str, ...]

    @property
    def expected_compute_cycles(self) -> float:
        """Broadcast cycles the program encodes, summed over all layers."""
        return sum(layer.expected_compute_cycles for layer in self.layers)

    def layer(self, name: str) -> CompiledLayerInfo:
        """Look one layer's metadata up by name."""
        for info in self.layers:
            if info.name == name:
                return info
        raise KeyError(
            f"unknown layer {name!r}; available: {[l.name for l in self.layers]}"
        )


def compile_model(
    profile: ModelSparsityProfile,
    config: Optional[DBPIMConfig] = None,
    variant: str = "hybrid",
    passes: Optional[Sequence[CompilerPass]] = None,
) -> CompiledModel:
    """Compile a whole workload into one segmented program.

    Lowers the profile, runs the pass pipeline (the default list of
    :func:`default_passes` unless overridden) and emits the instruction
    stream.

    Args:
        profile: the profiled workload (thresholds + IPU statistics).
        config: base hardware configuration (paper default when omitted).
        variant: one of the Fig. 7 sparsity variants.
        passes: replacement pass list (advanced; order matters).

    Returns:
        The compiled model: segmented program plus per-layer metadata.

    Raises:
        CompilationError: when a pass prerequisite is missing or a layer
            cannot be segmented into the instruction buffer.
    """
    from .codegen import emit_module

    module = lower_model(profile, config=config, variant=variant)
    manager = PassManager(passes if passes is not None else default_passes(module))
    manager.run(module)
    for required in ("mapping", "overlap", "segment_plan"):
        module.require(required, "emit")
    program, infos = emit_module(module)
    return CompiledModel(
        name=module.workload.name,
        variant=module.variant,
        config=module.config,
        program=program,
        layers=tuple(infos),
        pass_log=tuple(module.pass_log),
    )
