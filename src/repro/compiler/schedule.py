"""Static scheduling decisions of the compilation pipeline.

This module holds the pure planning logic the passes in
:mod:`repro.compiler.passes` apply to a lowered module: byte-level transfer
sizing, weight-load hoisting, double-buffered load/compute overlap, and the
instruction-buffer-aware segmentation of a layer's instruction stream.
Everything here is closed-form arithmetic over a
:class:`~repro.compiler.mapping.LayerMapping` and a
:class:`~repro.arch.config.DBPIMConfig`; the emission itself lives in
:mod:`repro.compiler.codegen`.

Scheduling model
----------------

* **Transfers** move whole byte payloads over an on-chip bus of
  ``bytes_per_cycle`` (the :class:`TransferModel`); one load instruction of
  ``b`` bytes costs ``ceil(b / bytes_per_cycle)`` DMA cycles per dispatch.
* **Hoisting**: when a layer's entire weight (and, under weight sparsity,
  metadata) footprint fits its buffer, all per-iteration weight loads are
  emitted as a prologue so the trace scheduler can prefetch them behind
  compute.
* **Double buffering**: when two input-feature tiles fit the feature
  buffer, tile ``t+1`` streams in while tile ``t`` computes, hiding feature
  transfer cycles behind broadcast cycles.
* **Segmentation**: the top controller executes one instruction-buffer
  refill (a :class:`~repro.compiler.isa.ProgramSegment`) at a time, so a
  layer's stream is split at filter-iteration boundaries into windows of at
  most ``instruction_buffer / bytes_per_instruction`` instructions.
* **Feature liveness**: for graph workloads, branch values live in the
  feature buffer from their producing layer until the layer whose epilogue
  joins them (:func:`plan_feature_liveness`); the bytes resident across a
  layer shrink the headroom its double-buffering decision may use
  (:func:`resident_payload_at`), so join nodes extending buffer residency
  are priced instead of assumed away by chain order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..arch.config import DBPIMConfig
from ..workloads.graph import GRAPH_INPUT, ModelGraph
from .mapping import LayerMapping

__all__ = [
    "BYTES_PER_INSTRUCTION",
    "DEFAULT_BYTES_PER_CYCLE",
    "TransferModel",
    "OverlapDecision",
    "SegmentPlan",
    "ProgramSplitError",
    "LivenessInterval",
    "FusionDecision",
    "fusion_anchors",
    "plan_elementwise_fusion",
    "plan_feature_liveness",
    "resident_payload_at",
    "layer_transfer_bytes",
    "decide_hoist",
    "decide_overlap",
    "plan_layer_segments",
]

#: Encoded size of one instruction (matches ``Program.size_bytes``).
BYTES_PER_INSTRUCTION = 8

#: Default on-chip bus width of the transfer model, in bytes per cycle.
DEFAULT_BYTES_PER_CYCLE = 64


@dataclass(frozen=True)
class TransferModel:
    """Byte-payload → DMA-cycle pricing of the load/store path.

    Attributes:
        bytes_per_cycle: on-chip bus width (bytes moved per cycle).
    """

    bytes_per_cycle: int = DEFAULT_BYTES_PER_CYCLE

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")

    def cycles(self, payload_bytes: int) -> int:
        """DMA cycles of one transfer of ``payload_bytes`` bytes."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return -(-payload_bytes // self.bytes_per_cycle)


@dataclass(frozen=True)
class TransferBytes:
    """Per-layer byte payloads of the three load streams.

    Attributes:
        weight_bytes_per_iteration: weight-buffer payload of one filter
            iteration (INT8 dense values or packed Comp.-Pattern values).
        metadata_bytes_per_iteration: metadata-register-file payload of one
            filter iteration (0 when weight sparsity is disabled).
        feature_bytes_per_tile: feature-buffer payload of one input tile.
        output_bytes: SIMD/write-back payload of the whole layer.
    """

    weight_bytes_per_iteration: int
    metadata_bytes_per_iteration: int
    feature_bytes_per_tile: int
    output_bytes: int


@dataclass(frozen=True)
class OverlapDecision:
    """Outcome of the overlap pass for one layer.

    Attributes:
        hoist_weight_loads: emit all weight/metadata loads as a prologue
            (the whole footprint fits on chip) so they prefetch behind
            compute.
        double_buffer_features: stream the next feature tile during the
            current tile's compute (two tiles fit the feature buffer).
        reason: human-readable justification, kept for the pass log.
    """

    hoist_weight_loads: bool
    double_buffer_features: bool
    reason: str


class ProgramSplitError(ValueError):
    """A layer's indivisible instruction run exceeds the instruction buffer."""


@dataclass(frozen=True)
class LivenessInterval:
    """Feature-buffer residency of one produced value of a graph workload.

    Positions index the weighted-layer schedule (the graph's linearized
    order): a value is produced by the layer at ``start`` (for SIMD values,
    the layer whose epilogue the op is fused into) and must stay resident
    until the layer at ``end`` has consumed it.

    Attributes:
        value: name of the producing graph node.
        start: schedule position of the producing (anchor) layer.
        end: schedule position of the last consuming (anchor) layer.
        payload_bytes: INT8 feature bytes of the value.
    """

    value: str
    start: int
    end: int
    payload_bytes: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("liveness intervals must satisfy start <= end")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")

    @property
    def spans_layers(self) -> int:
        """Number of schedule steps the value stays live across."""
        return self.end - self.start


def fusion_anchors(graph: ModelGraph) -> Dict[str, int]:
    """Schedule position of every graph node's *anchor* layer.

    A weighted node anchors at its own position in the linearized schedule;
    a SIMD node (add/concat/softmax) anchors at the latest-scheduled anchor
    among its inputs -- the layer whose epilogue the elementwise-fusion
    pass folds it into.  The graph input anchors at ``-1``.
    """
    positions = {
        node.name: index for index, node in enumerate(graph.weighted_nodes())
    }
    anchors: Dict[str, int] = {GRAPH_INPUT: -1}
    for node in graph.topological_order():
        if node.is_weighted:
            anchors[node.name] = positions[node.name]
        else:
            anchors[node.name] = max(anchors[source] for source in node.inputs)
    return anchors


@dataclass(frozen=True)
class FusionDecision:
    """Planned fusion of one graph SIMD op into its anchor layer.

    Attributes:
        name: name of the SIMD graph node.
        op: the node's operator (``"add"``, ``"concat"`` or ``"softmax"``).
        anchor: schedule position of the weighted layer whose epilogue
            absorbs the op.
        elements: output elements the SIMD core processes for the op.
        residual_bytes: feature bytes of branch operands produced by
            *earlier* layers that the join re-reads (0 for single-producer
            ops such as softmax).
    """

    name: str
    op: str
    anchor: int
    elements: int
    residual_bytes: int


def plan_elementwise_fusion(graph: ModelGraph) -> Tuple[FusionDecision, ...]:
    """The canonical fusion plan of every SIMD op of a graph.

    This is the single source of the fusion rule shared by the compiler's
    elementwise-fusion pass and the façade's graph report: each SIMD node
    anchors at its latest-scheduled producing layer, and the inputs whose
    anchors precede it (the parked branch operands) are charged as
    residual feature bytes.

    Raises:
        ValueError: when a SIMD node has no weighted producer at all (its
            anchor would be the graph input).
    """
    anchors = fusion_anchors(graph)
    decisions = []
    for simd_node in graph.simd_nodes():
        anchor = anchors[simd_node.name]
        if anchor < 0:
            raise ValueError(
                f"SIMD node {simd_node.name!r} has no weighted producer "
                "to fuse into"
            )
        residual = sum(
            graph.output_payload(source)
            for source in simd_node.inputs
            if source != GRAPH_INPUT and anchors[source] < anchor
        )
        decisions.append(
            FusionDecision(
                name=simd_node.name,
                op=simd_node.op,
                anchor=anchor,
                elements=graph.output_payload(simd_node.name),
                residual_bytes=residual,
            )
        )
    return tuple(decisions)


def plan_feature_liveness(graph: ModelGraph) -> Tuple[LivenessInterval, ...]:
    """Liveness intervals of every produced value over the layer schedule.

    Each node's output lives from its anchor layer until the last anchor
    among its consumers (its own anchor when unconsumed -- the graph
    output).  Zero-length intervals of values that die inside their
    producing layer's epilogue (e.g. a raw conv output immediately folded
    into a residual add) are kept: they simply never span a layer boundary
    and thus never contribute residency.
    """
    anchors = fusion_anchors(graph)
    intervals = []
    for node in graph.topological_order():
        start = anchors[node.name]
        if start < 0:
            continue
        consumer_anchors = [
            anchors[consumer.name] for consumer in graph.consumers(node.name)
        ]
        intervals.append(
            LivenessInterval(
                value=node.name,
                start=start,
                end=max([start] + consumer_anchors),
                payload_bytes=graph.output_payload(node.name),
            )
        )
    return tuple(intervals)


def resident_payload_at(
    intervals: Tuple[LivenessInterval, ...], position: int
) -> int:
    """Branch bytes held in the feature buffer while ``position`` executes.

    Counts every value live across the layer (produced earlier, consumed at
    or after it) *except* the plain chain input -- the value produced by the
    immediately preceding layer and consumed only here, whose tile-by-tile
    streaming the transfer model already prices.  For linear chains the
    result is therefore 0; join nodes make it positive.
    """
    resident = 0
    for interval in intervals:
        if interval.start < position <= interval.end and not (
            interval.start == position - 1 and interval.end == position
        ):
            resident += interval.payload_bytes
    return resident


@dataclass(frozen=True)
class SegmentPlan:
    """Blueprint of one emitted segment of a layer.

    Attributes:
        hoisted_iterations: number of filter iterations whose weight loads
            are emitted at the start of this segment (only ever non-zero in
            a layer's first segment, and only when hoisting is enabled).
        start_iteration: first filter iteration whose compute body this
            segment holds.
        stop_iteration: one past the last filter iteration of the segment.
        epilogue: whether the layer's SIMD + write-back tail is emitted at
            the end of this segment.
    """

    hoisted_iterations: int
    start_iteration: int
    stop_iteration: int
    epilogue: bool

    @property
    def iterations(self) -> int:
        """Filter iterations whose compute body this segment holds."""
        return self.stop_iteration - self.start_iteration


def layer_transfer_bytes(mapping: LayerMapping, config: DBPIMConfig) -> TransferBytes:
    """Byte payloads of one mapped layer's load/store streams.

    Dense weights occupy one byte per INT8 value; under weight sparsity the
    packed Comp.-Pattern values still ship one byte per weight slot and the
    sign/index metadata adds one byte per weight (mirroring the analytical
    energy model's ``meta_bytes = weight_count`` accounting).  Features and
    outputs are INT8, one byte per element.
    """
    layer = mapping.layer
    iterations = max(mapping.filter_iterations, 1)
    weight_bytes = -(-layer.weight_count // iterations)
    meta_bytes = weight_bytes if config.weight_sparsity else 0
    rows_used = min(layer.reduction_size, config.macro.rows)
    return TransferBytes(
        weight_bytes_per_iteration=weight_bytes,
        metadata_bytes_per_iteration=meta_bytes,
        feature_bytes_per_tile=rows_used,
        output_bytes=layer.out_channels * layer.output_positions,
    )


def decide_hoist(mapping: LayerMapping, config: DBPIMConfig) -> bool:
    """Whether a layer's weight loads can be hoisted across iterations.

    Hoisting is legal when the layer's *whole* weight footprint fits the
    weight buffer (and, under weight sparsity, the metadata footprint fits
    the meta buffer): every iteration's weights are then resident at once
    and can be prefetched behind earlier compute.
    """
    transfers = layer_transfer_bytes(mapping, config)
    iterations = mapping.filter_iterations
    total_weight = transfers.weight_bytes_per_iteration * iterations
    if total_weight > config.buffers.weight_buffer:
        return False
    if config.weight_sparsity:
        total_meta = transfers.metadata_bytes_per_iteration * iterations
        if total_meta > config.buffers.meta_buffer:
            return False
    return True


def decide_overlap(
    mapping: LayerMapping,
    config: DBPIMConfig,
    resident_feature_bytes: int = 0,
) -> OverlapDecision:
    """The hoist + double-buffering decision of one mapped layer.

    Args:
        mapping: the layer's static tiling.
        config: hardware configuration (buffer capacities).
        resident_feature_bytes: branch bytes the liveness plan keeps in the
            feature buffer across this layer (see
            :func:`resident_payload_at`); they shrink the headroom the
            double-buffering decision may claim.
    """
    if resident_feature_bytes < 0:
        raise ValueError("resident_feature_bytes must be non-negative")
    transfers = layer_transfer_bytes(mapping, config)
    hoist = decide_hoist(mapping, config)
    double_buffer = (
        2 * transfers.feature_bytes_per_tile + resident_feature_bytes
        <= config.buffers.feature_buffer
    )
    reasons = []
    reasons.append(
        "weights resident (hoisted prologue)" if hoist else "weights streamed per iteration"
    )
    reasons.append(
        "feature tiles double-buffered" if double_buffer else "feature tiles single-buffered"
    )
    if resident_feature_bytes:
        reasons.append(f"{resident_feature_bytes} B of branch values resident")
    return OverlapDecision(
        hoist_weight_loads=hoist,
        double_buffer_features=double_buffer,
        reason="; ".join(reasons),
    )


def plan_layer_segments(
    layer_name: str,
    *,
    iterations: int,
    load_instructions: int,
    tile_instructions: int,
    epilogue_instructions: int,
    hoisted: bool,
    capacity_bytes: int,
    bytes_per_instruction: int = BYTES_PER_INSTRUCTION,
) -> List[SegmentPlan]:
    """Split one layer's stream into instruction-buffer-sized segments.

    The layer's stream is a prologue of ``iterations * load_instructions``
    hoisted loads (when ``hoisted``), then per-iteration compute chunks of
    ``tile_instructions + 1`` (+ ``load_instructions`` when not hoisted)
    instructions, then an epilogue.  Splits only happen at filter-iteration
    boundaries -- the indivisible atoms of the schedule.

    Args:
        layer_name: for error messages.
        iterations: filter iterations of the layer's mapping.
        load_instructions: weight/metadata load instructions per iteration.
        tile_instructions: compute instructions per iteration (the tile
            loop), excluding the iteration's trailing barrier.
        epilogue_instructions: SIMD + write-back tail instructions.
        hoisted: whether loads are emitted as a prologue.
        capacity_bytes: instruction-buffer capacity in bytes.
        bytes_per_instruction: encoded instruction size.

    Returns:
        The per-segment blueprints, in stream order.

    Raises:
        ProgramSplitError: when one indivisible run (the hoisted prologue
            plus one iteration, one per-iteration chunk, or the epilogue)
            cannot fit the buffer.
    """
    if iterations < 0:
        raise ProgramSplitError(
            f"layer {layer_name!r}: iteration count must be non-negative"
        )
    capacity = capacity_bytes // bytes_per_instruction
    chunk = tile_instructions + 1 + (0 if hoisted else load_instructions)
    prologue = iterations * load_instructions if hoisted else 0

    if iterations == 0:
        # A degenerate (compute-free) layer still emits its epilogue.
        if epilogue_instructions > capacity:
            raise ProgramSplitError(
                f"layer {layer_name!r}: the layer epilogue needs "
                f"{epilogue_instructions} instructions "
                f"({epilogue_instructions * bytes_per_instruction} bytes) but "
                f"the instruction buffer holds {capacity} ({capacity_bytes} "
                "bytes)"
            )
        return [
            SegmentPlan(
                hoisted_iterations=0,
                start_iteration=0,
                stop_iteration=0,
                epilogue=True,
            )
        ]

    def _overflow(what: str, need: int) -> ProgramSplitError:
        return ProgramSplitError(
            f"layer {layer_name!r}: {what} needs {need} instructions "
            f"({need * bytes_per_instruction} bytes) but the instruction "
            f"buffer holds {capacity} ({capacity_bytes} bytes)"
        )

    if chunk > capacity:
        raise _overflow("one filter iteration", chunk)
    if epilogue_instructions > capacity:
        raise _overflow("the layer epilogue", epilogue_instructions)
    if hoisted and prologue + chunk > capacity:
        # A hoisted prologue must land in the same refill as the first
        # iteration (the weights must be resident before compute starts);
        # fall back to streaming the loads per iteration instead.
        return plan_layer_segments(
            layer_name,
            iterations=iterations,
            load_instructions=load_instructions,
            tile_instructions=tile_instructions,
            epilogue_instructions=epilogue_instructions,
            hoisted=False,
            capacity_bytes=capacity_bytes,
            bytes_per_instruction=bytes_per_instruction,
        )

    plans: List[SegmentPlan] = []
    start = 0
    while start < iterations:
        budget = capacity - (prologue if start == 0 else 0)
        fit = max(budget // chunk, 1)
        stop = min(start + fit, iterations)
        plans.append(
            SegmentPlan(
                hoisted_iterations=iterations if (hoisted and start == 0) else 0,
                start_iteration=start,
                stop_iteration=stop,
                epilogue=False,
            )
        )
        start = stop

    last = plans[-1]
    last_size = (
        last.hoisted_iterations * load_instructions + last.iterations * chunk
    )
    if last_size + epilogue_instructions <= capacity:
        plans[-1] = SegmentPlan(
            hoisted_iterations=last.hoisted_iterations,
            start_iteration=last.start_iteration,
            stop_iteration=last.stop_iteration,
            epilogue=True,
        )
    else:
        plans.append(
            SegmentPlan(
                hoisted_iterations=0,
                start_iteration=iterations,
                stop_iteration=iterations,
                epilogue=True,
            )
        )
    return plans
