"""Static scheduling decisions of the compilation pipeline.

This module holds the pure planning logic the passes in
:mod:`repro.compiler.passes` apply to a lowered module: byte-level transfer
sizing, weight-load hoisting, double-buffered load/compute overlap, and the
instruction-buffer-aware segmentation of a layer's instruction stream.
Everything here is closed-form arithmetic over a
:class:`~repro.compiler.mapping.LayerMapping` and a
:class:`~repro.arch.config.DBPIMConfig`; the emission itself lives in
:mod:`repro.compiler.codegen`.

Scheduling model
----------------

* **Transfers** move whole byte payloads over an on-chip bus of
  ``bytes_per_cycle`` (the :class:`TransferModel`); one load instruction of
  ``b`` bytes costs ``ceil(b / bytes_per_cycle)`` DMA cycles per dispatch.
* **Hoisting**: when a layer's entire weight (and, under weight sparsity,
  metadata) footprint fits its buffer, all per-iteration weight loads are
  emitted as a prologue so the trace scheduler can prefetch them behind
  compute.
* **Double buffering**: when two input-feature tiles fit the feature
  buffer, tile ``t+1`` streams in while tile ``t`` computes, hiding feature
  transfer cycles behind broadcast cycles.
* **Segmentation**: the top controller executes one instruction-buffer
  refill (a :class:`~repro.compiler.isa.ProgramSegment`) at a time, so a
  layer's stream is split at filter-iteration boundaries into windows of at
  most ``instruction_buffer / bytes_per_instruction`` instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..arch.config import DBPIMConfig
from .mapping import LayerMapping

__all__ = [
    "BYTES_PER_INSTRUCTION",
    "DEFAULT_BYTES_PER_CYCLE",
    "TransferModel",
    "OverlapDecision",
    "SegmentPlan",
    "ProgramSplitError",
    "layer_transfer_bytes",
    "decide_hoist",
    "decide_overlap",
    "plan_layer_segments",
]

#: Encoded size of one instruction (matches ``Program.size_bytes``).
BYTES_PER_INSTRUCTION = 8

#: Default on-chip bus width of the transfer model, in bytes per cycle.
DEFAULT_BYTES_PER_CYCLE = 64


@dataclass(frozen=True)
class TransferModel:
    """Byte-payload → DMA-cycle pricing of the load/store path.

    Attributes:
        bytes_per_cycle: on-chip bus width (bytes moved per cycle).
    """

    bytes_per_cycle: int = DEFAULT_BYTES_PER_CYCLE

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")

    def cycles(self, payload_bytes: int) -> int:
        """DMA cycles of one transfer of ``payload_bytes`` bytes."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return -(-payload_bytes // self.bytes_per_cycle)


@dataclass(frozen=True)
class TransferBytes:
    """Per-layer byte payloads of the three load streams.

    Attributes:
        weight_bytes_per_iteration: weight-buffer payload of one filter
            iteration (INT8 dense values or packed Comp.-Pattern values).
        metadata_bytes_per_iteration: metadata-register-file payload of one
            filter iteration (0 when weight sparsity is disabled).
        feature_bytes_per_tile: feature-buffer payload of one input tile.
        output_bytes: SIMD/write-back payload of the whole layer.
    """

    weight_bytes_per_iteration: int
    metadata_bytes_per_iteration: int
    feature_bytes_per_tile: int
    output_bytes: int


@dataclass(frozen=True)
class OverlapDecision:
    """Outcome of the overlap pass for one layer.

    Attributes:
        hoist_weight_loads: emit all weight/metadata loads as a prologue
            (the whole footprint fits on chip) so they prefetch behind
            compute.
        double_buffer_features: stream the next feature tile during the
            current tile's compute (two tiles fit the feature buffer).
        reason: human-readable justification, kept for the pass log.
    """

    hoist_weight_loads: bool
    double_buffer_features: bool
    reason: str


class ProgramSplitError(ValueError):
    """A layer's indivisible instruction run exceeds the instruction buffer."""


@dataclass(frozen=True)
class SegmentPlan:
    """Blueprint of one emitted segment of a layer.

    Attributes:
        hoisted_iterations: number of filter iterations whose weight loads
            are emitted at the start of this segment (only ever non-zero in
            a layer's first segment, and only when hoisting is enabled).
        start_iteration: first filter iteration whose compute body this
            segment holds.
        stop_iteration: one past the last filter iteration of the segment.
        epilogue: whether the layer's SIMD + write-back tail is emitted at
            the end of this segment.
    """

    hoisted_iterations: int
    start_iteration: int
    stop_iteration: int
    epilogue: bool

    @property
    def iterations(self) -> int:
        """Filter iterations whose compute body this segment holds."""
        return self.stop_iteration - self.start_iteration


def layer_transfer_bytes(mapping: LayerMapping, config: DBPIMConfig) -> TransferBytes:
    """Byte payloads of one mapped layer's load/store streams.

    Dense weights occupy one byte per INT8 value; under weight sparsity the
    packed Comp.-Pattern values still ship one byte per weight slot and the
    sign/index metadata adds one byte per weight (mirroring the analytical
    energy model's ``meta_bytes = weight_count`` accounting).  Features and
    outputs are INT8, one byte per element.
    """
    layer = mapping.layer
    iterations = max(mapping.filter_iterations, 1)
    weight_bytes = -(-layer.weight_count // iterations)
    meta_bytes = weight_bytes if config.weight_sparsity else 0
    rows_used = min(layer.reduction_size, config.macro.rows)
    return TransferBytes(
        weight_bytes_per_iteration=weight_bytes,
        metadata_bytes_per_iteration=meta_bytes,
        feature_bytes_per_tile=rows_used,
        output_bytes=layer.out_channels * layer.output_positions,
    )


def decide_hoist(mapping: LayerMapping, config: DBPIMConfig) -> bool:
    """Whether a layer's weight loads can be hoisted across iterations.

    Hoisting is legal when the layer's *whole* weight footprint fits the
    weight buffer (and, under weight sparsity, the metadata footprint fits
    the meta buffer): every iteration's weights are then resident at once
    and can be prefetched behind earlier compute.
    """
    transfers = layer_transfer_bytes(mapping, config)
    iterations = mapping.filter_iterations
    total_weight = transfers.weight_bytes_per_iteration * iterations
    if total_weight > config.buffers.weight_buffer:
        return False
    if config.weight_sparsity:
        total_meta = transfers.metadata_bytes_per_iteration * iterations
        if total_meta > config.buffers.meta_buffer:
            return False
    return True


def decide_overlap(mapping: LayerMapping, config: DBPIMConfig) -> OverlapDecision:
    """The hoist + double-buffering decision of one mapped layer."""
    transfers = layer_transfer_bytes(mapping, config)
    hoist = decide_hoist(mapping, config)
    double_buffer = (
        2 * transfers.feature_bytes_per_tile <= config.buffers.feature_buffer
    )
    reasons = []
    reasons.append(
        "weights resident (hoisted prologue)" if hoist else "weights streamed per iteration"
    )
    reasons.append(
        "feature tiles double-buffered" if double_buffer else "feature tiles single-buffered"
    )
    return OverlapDecision(
        hoist_weight_loads=hoist,
        double_buffer_features=double_buffer,
        reason="; ".join(reasons),
    )


def plan_layer_segments(
    layer_name: str,
    *,
    iterations: int,
    load_instructions: int,
    tile_instructions: int,
    epilogue_instructions: int,
    hoisted: bool,
    capacity_bytes: int,
    bytes_per_instruction: int = BYTES_PER_INSTRUCTION,
) -> List[SegmentPlan]:
    """Split one layer's stream into instruction-buffer-sized segments.

    The layer's stream is a prologue of ``iterations * load_instructions``
    hoisted loads (when ``hoisted``), then per-iteration compute chunks of
    ``tile_instructions + 1`` (+ ``load_instructions`` when not hoisted)
    instructions, then an epilogue.  Splits only happen at filter-iteration
    boundaries -- the indivisible atoms of the schedule.

    Args:
        layer_name: for error messages.
        iterations: filter iterations of the layer's mapping.
        load_instructions: weight/metadata load instructions per iteration.
        tile_instructions: compute instructions per iteration (the tile
            loop), excluding the iteration's trailing barrier.
        epilogue_instructions: SIMD + write-back tail instructions.
        hoisted: whether loads are emitted as a prologue.
        capacity_bytes: instruction-buffer capacity in bytes.
        bytes_per_instruction: encoded instruction size.

    Returns:
        The per-segment blueprints, in stream order.

    Raises:
        ProgramSplitError: when one indivisible run (the hoisted prologue
            plus one iteration, one per-iteration chunk, or the epilogue)
            cannot fit the buffer.
    """
    capacity = capacity_bytes // bytes_per_instruction
    chunk = tile_instructions + 1 + (0 if hoisted else load_instructions)
    prologue = iterations * load_instructions if hoisted else 0

    def _overflow(what: str, need: int) -> ProgramSplitError:
        return ProgramSplitError(
            f"layer {layer_name!r}: {what} needs {need} instructions "
            f"({need * bytes_per_instruction} bytes) but the instruction "
            f"buffer holds {capacity} ({capacity_bytes} bytes)"
        )

    if chunk > capacity:
        raise _overflow("one filter iteration", chunk)
    if epilogue_instructions > capacity:
        raise _overflow("the layer epilogue", epilogue_instructions)
    if hoisted and prologue + chunk > capacity:
        # A hoisted prologue must land in the same refill as the first
        # iteration (the weights must be resident before compute starts);
        # fall back to streaming the loads per iteration instead.
        return plan_layer_segments(
            layer_name,
            iterations=iterations,
            load_instructions=load_instructions,
            tile_instructions=tile_instructions,
            epilogue_instructions=epilogue_instructions,
            hoisted=False,
            capacity_bytes=capacity_bytes,
            bytes_per_instruction=bytes_per_instruction,
        )

    plans: List[SegmentPlan] = []
    start = 0
    while start < iterations:
        budget = capacity - (prologue if start == 0 else 0)
        fit = max(budget // chunk, 1)
        stop = min(start + fit, iterations)
        plans.append(
            SegmentPlan(
                hoisted_iterations=iterations if (hoisted and start == 0) else 0,
                start_iteration=start,
                stop_iteration=stop,
                epilogue=False,
            )
        )
        start = stop

    last = plans[-1]
    last_size = (
        last.hoisted_iterations * load_instructions + last.iterations * chunk
    )
    if last_size + epilogue_instructions <= capacity:
        plans[-1] = SegmentPlan(
            hoisted_iterations=last.hoisted_iterations,
            start_iteration=last.start_iteration,
            stop_iteration=last.stop_iteration,
            epilogue=True,
        )
    else:
        plans.append(
            SegmentPlan(
                hoisted_iterations=0,
                start_iteration=iterations,
                stop_iteration=iterations,
                epilogue=True,
            )
        )
    return plans
