"""Offline weight transformation: FTA weights → values + metadata streams.

The compilation phase of the paper (Fig. 3 ①) converts every FTA-approximated
filter into the three streams the hardware consumes:

* **values**  -- the magnitude bit pair of each Comp. Pattern block, packed
  one block per 6T cell (this is what the weight buffer holds),
* **signs**   -- one bit per block (+1 / -1),
* **indices** -- two bits per block giving the dyadic-block position 0..3.

Zero Pattern blocks are discarded.  Because the FTA algorithm bounds every
weight of a filter to at most ``φ_th`` blocks, a filter compresses into a
fixed-size record: ``φ_th`` block slots per weight, padded with explicit
zero slots when a weight needs fewer blocks (the padding is what keeps the
actual utilisation slightly below 100%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.csd import DEFAULT_WIDTH
from ..core.dyadic_block import BLOCK_SIZE, nonzero_blocks_of_value
from ..core.fta import FTAConfig, approximate_layer

__all__ = ["CompressedFilter", "CompressedLayer", "compress_filter", "compress_layer"]


@dataclass
class CompressedFilter:
    """Hardware-ready representation of one FTA-approximated filter.

    Attributes:
        threshold: the filter's ``φ_th`` (block slots allocated per weight).
        weights: the approximated integer weights (for verification).
        block_valid: ``(num_weights, slots)`` 0/1 array; 1 marks a slot that
            holds a real Comp. Pattern block, 0 marks padding.
        block_signs: ``(num_weights, slots)`` entries in {-1, +1} (padding
            slots carry +1).
        block_indices: ``(num_weights, slots)`` dyadic-block indices 0..3
            (padding slots carry 0).
        block_high: ``(num_weights, slots)`` 1 when the non-zero digit sits
            in the high position of its block.
    """

    threshold: int
    weights: np.ndarray
    block_valid: np.ndarray
    block_signs: np.ndarray
    block_indices: np.ndarray
    block_high: np.ndarray

    @property
    def num_weights(self) -> int:
        """Weights of the filter (reduction elements)."""
        return int(self.weights.size)

    @property
    def slots(self) -> int:
        """Block slots allocated per weight (= max(φ_th, 1))."""
        return int(self.block_valid.shape[1]) if self.block_valid.size else 0

    @property
    def stored_blocks(self) -> int:
        """Number of real (non-padding) blocks stored."""
        return int(self.block_valid.sum())

    @property
    def storage_utilization(self) -> float:
        """Fraction of allocated block slots carrying a real block."""
        allocated = self.num_weights * self.slots
        return self.stored_blocks / allocated if allocated else 0.0

    def value_bytes(self) -> int:
        """Bytes of packed value storage (one bit pair = 2 bits per slot)."""
        return -(-self.num_weights * self.slots * BLOCK_SIZE // 8)

    def metadata_bytes(self) -> int:
        """Bytes of sign+index metadata (1 + 2 bits per slot, packed)."""
        return -(-self.num_weights * self.slots * 3 // 8)

    def reconstruct(self) -> np.ndarray:
        """Rebuild the integer weights from the metadata streams."""
        signs = np.where(self.block_valid == 1, self.block_signs, 0)
        positions = BLOCK_SIZE * self.block_indices + self.block_high
        return (signs * (1 << positions)).sum(axis=1)


@dataclass
class CompressedLayer:
    """All filters of one layer in compressed form."""

    filters: List[CompressedFilter]

    @property
    def thresholds(self) -> np.ndarray:
        """Per-filter ``φ_th`` values, in filter order."""
        return np.asarray([f.threshold for f in self.filters], dtype=np.int64)

    @property
    def total_value_bytes(self) -> int:
        """Packed value-stream bytes over every filter."""
        return sum(f.value_bytes() for f in self.filters)

    @property
    def total_metadata_bytes(self) -> int:
        """Sign+index metadata bytes over every filter."""
        return sum(f.metadata_bytes() for f in self.filters)

    @property
    def storage_utilization(self) -> float:
        """Block-slot utilisation over the whole layer."""
        allocated = sum(f.num_weights * f.slots for f in self.filters)
        stored = sum(f.stored_blocks for f in self.filters)
        return stored / allocated if allocated else 0.0

    def dense_value_bytes(self, weight_bits: int = DEFAULT_WIDTH) -> int:
        """Bytes the same layer occupies in the dense baseline."""
        weights = sum(f.num_weights for f in self.filters)
        return -(-weights * weight_bits // 8)

    @property
    def compression_ratio(self) -> float:
        """Dense bytes / (compressed value + metadata bytes)."""
        compressed = self.total_value_bytes + self.total_metadata_bytes
        if compressed == 0:
            return float("inf")
        return self.dense_value_bytes() / compressed


def compress_filter(
    weights: np.ndarray, threshold: int, width: int = DEFAULT_WIDTH
) -> CompressedFilter:
    """Compress one FTA-approximated filter into value/metadata streams.

    Args:
        weights: integer weights already snapped to ``T(threshold)``.
        threshold: the filter's ``φ_th``.

    Raises:
        ValueError: if any weight needs more than ``threshold`` blocks.
    """
    weights = np.asarray(weights, dtype=np.int64).reshape(-1)
    slots = max(threshold, 1)
    valid = np.zeros((weights.size, slots), dtype=np.int64)
    signs = np.ones((weights.size, slots), dtype=np.int64)
    indices = np.zeros((weights.size, slots), dtype=np.int64)
    high = np.zeros((weights.size, slots), dtype=np.int64)
    for weight_index, value in enumerate(weights):
        blocked = nonzero_blocks_of_value(int(value), width)
        if blocked.phi > slots:
            raise ValueError(
                f"weight {value} needs {blocked.phi} blocks but the filter "
                f"threshold allocates only {slots}; run FTA first"
            )
        for slot, block in enumerate(blocked.blocks):
            valid[weight_index, slot] = 1
            signs[weight_index, slot] = block.sign
            indices[weight_index, slot] = block.index
            high[weight_index, slot] = 1 if block.hi_position else 0
    return CompressedFilter(
        threshold=threshold,
        weights=weights.copy(),
        block_valid=valid,
        block_signs=signs,
        block_indices=indices,
        block_high=high,
    )


def compress_layer(
    weights: np.ndarray,
    fta_config: Optional[FTAConfig] = None,
    already_approximated: bool = False,
) -> CompressedLayer:
    """Run FTA (unless already done) and compress every filter of a layer.

    Args:
        weights: filter-major integer weight matrix ``(filters, elements)``.
        fta_config: FTA configuration.
        already_approximated: skip the FTA pass and only derive thresholds
            (useful when the training pipeline already produced FTA weights).
    """
    weights = np.asarray(weights, dtype=np.int64)
    result = approximate_layer(weights, fta_config)
    source = weights if already_approximated else result.approximated
    filters = [
        compress_filter(source[index], int(result.thresholds[index]))
        for index in range(source.shape[0])
    ]
    return CompressedLayer(filters=filters)
