"""Core algorithmic contribution of the DB-PIM paper.

This package implements the algorithm half of the co-design: CSD encoding,
the dyadic-block sparsity pattern, the FTA approximation algorithm, the
supporting quantization toolbox and the bit-sparsity analytics used by the
paper's Fig. 2.
"""

from .csd import (
    DEFAULT_WIDTH,
    count_nonzero_digits,
    count_nonzero_digits_array,
    csd_to_string,
    from_csd,
    from_csd_array,
    is_valid_csd,
    to_csd,
    to_csd_array,
)
from .dyadic_block import (
    BLOCK_SIZE,
    BlockedWeight,
    DyadicBlock,
    blocks_of_value,
    nonzero_blocks_of_value,
    reconstruct_value,
    split_blocks,
)
from .fta import (
    FTAConfig,
    FTAResult,
    FilterApproximation,
    approximate_filter,
    approximate_layer,
    approximate_model,
    filter_threshold,
)
from .query_table import QueryTableMode, build_table, nearest_in_table
from .quantization import (
    QuantizationParams,
    dequantize,
    fake_quantize_activations,
    fake_quantize_weights,
    fta_quantize_weights,
    quantize_activations,
    quantize_weights,
)
from .sparsity import (
    WeightSparsityReport,
    analyze_input_sparsity,
    analyze_weight_sparsity,
    input_block_zero_column_ratio,
    input_zero_bit_ratio,
    weight_zero_bit_ratio_binary,
    weight_zero_bit_ratio_csd,
    weight_zero_bit_ratio_fta,
)

__all__ = [
    "DEFAULT_WIDTH",
    "BLOCK_SIZE",
    "to_csd",
    "from_csd",
    "to_csd_array",
    "from_csd_array",
    "count_nonzero_digits",
    "count_nonzero_digits_array",
    "is_valid_csd",
    "csd_to_string",
    "DyadicBlock",
    "BlockedWeight",
    "split_blocks",
    "blocks_of_value",
    "nonzero_blocks_of_value",
    "reconstruct_value",
    "QueryTableMode",
    "build_table",
    "nearest_in_table",
    "FTAConfig",
    "FTAResult",
    "FilterApproximation",
    "filter_threshold",
    "approximate_filter",
    "approximate_layer",
    "approximate_model",
    "QuantizationParams",
    "quantize_weights",
    "dequantize",
    "quantize_activations",
    "fake_quantize_weights",
    "fake_quantize_activations",
    "fta_quantize_weights",
    "WeightSparsityReport",
    "analyze_weight_sparsity",
    "analyze_input_sparsity",
    "weight_zero_bit_ratio_binary",
    "weight_zero_bit_ratio_csd",
    "weight_zero_bit_ratio_fta",
    "input_zero_bit_ratio",
    "input_block_zero_column_ratio",
]
