"""Canonical Signed Digit (CSD) encoding.

CSD is a radix-2 signed-digit number representation with digits drawn from
``{-1, 0, +1}`` under the constraint that no two adjacent digits are both
non-zero.  Every integer has a unique CSD representation, and that
representation has the minimum possible number of non-zero digits -- on
average about 33% fewer than plain two's complement.  The DB-PIM paper uses
CSD re-encoding of INT8 weights as the first step of its Fixed Threshold
Approximation (FTA) algorithm because:

* the added zero digits increase bit-level sparsity, and
* the no-adjacent-non-zero property guarantees that each 2-bit *dyadic block*
  of a CSD word contains at most one non-zero digit, which is what allows a
  block to be packed into a single cross-coupled 6T SRAM cell.

This module provides conversions between Python integers / numpy arrays and
CSD digit vectors, plus the small helpers (non-zero counting, validation,
pretty printing) the rest of the library builds on.

Digit vectors are numpy ``int8`` arrays ordered least-significant digit
first: ``digits[k]`` is the coefficient of ``2**k``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "DEFAULT_WIDTH",
    "to_csd",
    "from_csd",
    "to_csd_array",
    "from_csd_array",
    "count_nonzero_digits",
    "count_nonzero_digits_array",
    "is_valid_csd",
    "csd_to_string",
    "csd_from_string",
    "min_value",
    "max_value",
    "binary_digits",
    "count_nonzero_bits_binary",
]

#: Default digit width used throughout the library.  Eight digits are enough
#: to represent every signed INT8 value (``-128 .. 127``) in CSD form.
DEFAULT_WIDTH = 8


def min_value(width: int = DEFAULT_WIDTH) -> int:
    """Smallest integer representable by a CSD word of ``width`` digits.

    The most negative valid CSD word alternates ``-1`` digits starting from
    the most significant position (no two adjacent non-zeros).
    """
    return -max_value(width)


def max_value(width: int = DEFAULT_WIDTH) -> int:
    """Largest integer representable by a CSD word of ``width`` digits."""
    total = 0
    position = width - 1
    while position >= 0:
        total += 1 << position
        position -= 2
    return total


def to_csd(value: int, width: int = DEFAULT_WIDTH) -> np.ndarray:
    """Convert an integer to its CSD digit vector (LSB first).

    The conversion uses the standard non-adjacent form (NAF) recurrence: when
    the remaining value is odd, emit ``2 - (value mod 4)`` (which is ``+1`` or
    ``-1``) so that the next digit is guaranteed to be zero.

    Args:
        value: integer to convert.
        width: number of digit positions in the output vector.

    Returns:
        ``int8`` array of length ``width`` with entries in ``{-1, 0, 1}``.

    Raises:
        ValueError: if ``value`` does not fit in ``width`` CSD digits.
    """
    value = int(value)
    if value < min_value(width) or value > max_value(width):
        raise ValueError(
            f"value {value} is not representable in {width} CSD digits "
            f"(range [{min_value(width)}, {max_value(width)}])"
        )
    digits = np.zeros(width, dtype=np.int8)
    remaining = value
    position = 0
    while remaining != 0:
        if position >= width:
            # The range check above should make this unreachable, but guard
            # against inconsistent edits to ``min_value``/``max_value``.
            raise ValueError(
                f"value {value} overflowed {width} CSD digits during conversion"
            )
        if remaining & 1:
            digit = 2 - (remaining % 4)
            digits[position] = digit
            remaining -= digit
        remaining //= 2
        position += 1
    return digits


def from_csd(digits: Sequence[int]) -> int:
    """Evaluate a CSD (or any signed-digit) vector back to an integer."""
    total = 0
    for position, digit in enumerate(digits):
        total += int(digit) << position
    return total


def to_csd_array(values: np.ndarray, width: int = DEFAULT_WIDTH) -> np.ndarray:
    """Vectorised CSD conversion.

    Args:
        values: integer array of any shape.
        width: digits per element.

    Returns:
        ``int8`` array of shape ``values.shape + (width,)``; the trailing axis
        holds digits LSB first.
    """
    values = np.asarray(values)
    flat = values.reshape(-1).astype(np.int64)
    low, high = min_value(width), max_value(width)
    if flat.size and (flat.min() < low or flat.max() > high):
        raise ValueError(
            f"values outside the representable range [{low}, {high}] "
            f"for width {width}"
        )
    digits = np.zeros((flat.size, width), dtype=np.int8)
    remaining = flat.copy()
    for position in range(width):
        odd = (remaining & 1).astype(bool)
        mod4 = remaining % 4
        digit = np.where(odd, 2 - mod4, 0).astype(np.int64)
        digits[:, position] = digit
        remaining = (remaining - digit) // 2
    return digits.reshape(values.shape + (width,))


def from_csd_array(digits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_csd_array` (works on any signed-digit array)."""
    digits = np.asarray(digits, dtype=np.int64)
    width = digits.shape[-1]
    weights = (1 << np.arange(width)).astype(np.int64)
    return np.tensordot(digits, weights, axes=([-1], [0]))


def count_nonzero_digits(value: int, width: int = DEFAULT_WIDTH) -> int:
    """Number of non-zero digits in the CSD representation of ``value``."""
    return int(np.count_nonzero(to_csd(value, width)))


def count_nonzero_digits_array(
    values: np.ndarray, width: int = DEFAULT_WIDTH
) -> np.ndarray:
    """Per-element non-zero CSD digit counts for an integer array."""
    digits = to_csd_array(values, width)
    return np.count_nonzero(digits, axis=-1)


def is_valid_csd(digits: Sequence[int]) -> bool:
    """Check the CSD invariants: digits in {-1,0,1}, no adjacent non-zeros."""
    arr = np.asarray(digits)
    if arr.size == 0:
        return True
    if not np.isin(arr, (-1, 0, 1)).all():
        return False
    nonzero = arr != 0
    return not bool(np.any(nonzero[:-1] & nonzero[1:]))


def csd_to_string(digits: Sequence[int]) -> str:
    """Render a digit vector MSB-first using ``1``, ``0`` and ``-`` for -1.

    The paper writes -1 with an overbar; ``-`` keeps the string one character
    per digit which keeps block boundaries visually aligned.
    """
    symbols = {1: "1", 0: "0", -1: "-"}
    return "".join(symbols[int(d)] for d in reversed(list(digits)))


def csd_from_string(text: str) -> np.ndarray:
    """Parse the output of :func:`csd_to_string` back into a digit vector."""
    symbols = {"1": 1, "0": 0, "-": -1}
    try:
        msb_first: List[int] = [symbols[ch] for ch in text]
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"invalid CSD character {exc.args[0]!r}") from exc
    return np.asarray(list(reversed(msb_first)), dtype=np.int8)


def binary_digits(values: np.ndarray, width: int = DEFAULT_WIDTH) -> np.ndarray:
    """Two's complement bit planes of an integer array (LSB first).

    Used by the sparsity analytics to compare plain binary bit sparsity with
    CSD / FTA bit sparsity (Fig. 2(a) of the paper).
    """
    values = np.asarray(values)
    unsigned = np.asarray(values, dtype=np.int64) & ((1 << width) - 1)
    shifts = np.arange(width)
    return ((unsigned[..., None] >> shifts) & 1).astype(np.int8)


def count_nonzero_bits_binary(
    values: np.ndarray, width: int = DEFAULT_WIDTH
) -> np.ndarray:
    """Per-element count of set bits in the two's complement representation."""
    return np.count_nonzero(binary_digits(values, width), axis=-1)


def iter_csd(values: Iterable[int], width: int = DEFAULT_WIDTH):
    """Yield ``(value, digits)`` pairs for an iterable of integers."""
    for value in values:
        yield value, to_csd(value, width)
