"""Dyadic Block (DB) bit-level sparsity pattern.

The dyadic block is the fundamental unit of the DB-PIM co-design.  An 8-digit
CSD word is split into four 2-digit blocks (``DB #0`` holds the two least
significant digits).  Because CSD forbids adjacent non-zero digits, every
block contains *at most one* non-zero digit, so each block is one of:

* the **Zero Pattern** ``00`` -- carries no information and is discarded, or
* a **Complementary (Comp.) Pattern** -- ``01``, ``10``, ``0(-1)`` or
  ``(-1)0`` -- which can be packed into the cross-coupled ``Q`` / ``Q̄`` nodes
  of a single 6T SRAM cell.

A Comp. Pattern block is fully described by three pieces of metadata:

* ``index``  -- which of the four block positions it occupies (0..3),
* ``sign``   -- whether the non-zero digit is ``+1`` or ``-1``,
* ``hi``     -- whether the non-zero digit sits in the high (odd) or low
  (even) digit of the block.

``(index, hi)`` together recover the absolute bit position
``2 * index + hi`` and therefore the power-of-two magnitude of the block;
``sign`` recovers its polarity.  This module provides the decomposition,
metadata extraction and exact reconstruction used by both the FTA algorithm
and the architecture/compiler layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .csd import DEFAULT_WIDTH, from_csd, is_valid_csd, to_csd

__all__ = [
    "BLOCK_SIZE",
    "DyadicBlock",
    "BlockedWeight",
    "split_blocks",
    "blocks_of_value",
    "nonzero_blocks_of_value",
    "reconstruct_value",
    "block_count",
]

#: Digits per dyadic block.  Fixed by the paper's encoding (pairs of bits).
BLOCK_SIZE = 2


def block_count(width: int = DEFAULT_WIDTH) -> int:
    """Number of dyadic blocks in a CSD word of ``width`` digits."""
    if width % BLOCK_SIZE != 0:
        raise ValueError(f"width {width} is not a multiple of {BLOCK_SIZE}")
    return width // BLOCK_SIZE


@dataclass(frozen=True)
class DyadicBlock:
    """A single dyadic block together with its position metadata.

    Attributes:
        index: block position within the weight, 0 = least significant pair.
        low: digit at the even (lower) position of the pair, in {-1, 0, 1}.
        high: digit at the odd (higher) position of the pair, in {-1, 0, 1}.
    """

    index: int
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low not in (-1, 0, 1) or self.high not in (-1, 0, 1):
            raise ValueError("dyadic block digits must be in {-1, 0, 1}")
        if self.low != 0 and self.high != 0:
            raise ValueError(
                "a dyadic block of a CSD word cannot have two non-zero digits"
            )
        if self.index < 0:
            raise ValueError("block index must be non-negative")

    @property
    def is_zero(self) -> bool:
        """True for the Zero Pattern block ``00``."""
        return self.low == 0 and self.high == 0

    @property
    def is_comp(self) -> bool:
        """True for any Complementary Pattern block (exactly one non-zero)."""
        return not self.is_zero

    @property
    def sign(self) -> int:
        """Sign of the non-zero digit; 0 for the Zero Pattern block."""
        return int(self.low + self.high)

    @property
    def hi_position(self) -> bool:
        """True when the non-zero digit occupies the high digit of the pair."""
        return self.high != 0

    @property
    def bit_position(self) -> int:
        """Absolute digit position of the non-zero digit within the weight."""
        if self.is_zero:
            raise ValueError("Zero Pattern block has no non-zero digit")
        return BLOCK_SIZE * self.index + (1 if self.hi_position else 0)

    @property
    def value(self) -> int:
        """Signed integer contribution of this block to the full weight."""
        if self.is_zero:
            return 0
        return self.sign * (1 << self.bit_position)

    def cell_bits(self) -> tuple:
        """The ``(Q, Q̄)`` pair stored in the 6T cell for this block.

        The macro stores the magnitude pattern of the pair in the
        cross-coupled nodes -- ``Q`` holds the low digit's magnitude and
        ``Q̄`` the high digit's magnitude -- while the sign travels through
        the metadata register file.  For a Comp. Pattern block exactly one of
        the two nodes is 1, which is precisely the natural state of a 6T cell.
        """
        if self.is_zero:
            raise ValueError("Zero Pattern blocks are never stored in a cell")
        return (abs(self.low), abs(self.high))


@dataclass(frozen=True)
class BlockedWeight:
    """A weight decomposed into its non-zero dyadic blocks.

    Attributes:
        value: the original integer weight.
        blocks: the Comp. Pattern blocks, ordered from least to most
            significant block index.  Zero Pattern blocks are discarded.
        width: CSD digit width used for the decomposition.
    """

    value: int
    blocks: tuple
    width: int = DEFAULT_WIDTH

    @property
    def phi(self) -> int:
        """Number of non-zero CSD digits (= number of Comp. Pattern blocks)."""
        return len(self.blocks)

    @property
    def indices(self) -> List[int]:
        """Block indices of the stored Comp. Pattern blocks."""
        return [block.index for block in self.blocks]

    @property
    def signs(self) -> List[int]:
        """Signs (+1 / -1) of the stored Comp. Pattern blocks."""
        return [block.sign for block in self.blocks]

    def reconstruct(self) -> int:
        """Rebuild the integer value from the stored blocks."""
        return sum(block.value for block in self.blocks)


def split_blocks(digits: Sequence[int]) -> List[DyadicBlock]:
    """Split a CSD digit vector (LSB first) into dyadic blocks.

    Args:
        digits: CSD digit vector; its length must be a multiple of 2.

    Returns:
        A list of :class:`DyadicBlock`, block #0 first.

    Raises:
        ValueError: if the digits violate the CSD invariants.
    """
    arr = np.asarray(digits, dtype=np.int8)
    if arr.ndim != 1:
        raise ValueError("expected a one-dimensional digit vector")
    if arr.size % BLOCK_SIZE != 0:
        raise ValueError(
            f"digit vector length {arr.size} is not a multiple of {BLOCK_SIZE}"
        )
    if not is_valid_csd(arr):
        raise ValueError("digit vector is not a valid CSD word")
    blocks = []
    for index in range(arr.size // BLOCK_SIZE):
        low = int(arr[BLOCK_SIZE * index])
        high = int(arr[BLOCK_SIZE * index + 1])
        blocks.append(DyadicBlock(index=index, low=low, high=high))
    return blocks


def blocks_of_value(value: int, width: int = DEFAULT_WIDTH) -> List[DyadicBlock]:
    """All dyadic blocks (including Zero Pattern blocks) of an integer."""
    return split_blocks(to_csd(value, width))


def nonzero_blocks_of_value(value: int, width: int = DEFAULT_WIDTH) -> BlockedWeight:
    """Decompose ``value`` into its Comp. Pattern blocks only.

    This mirrors the compile-time weight transformation of the paper: Zero
    Pattern blocks are discarded and only values, signs and indices of the
    Comp. Pattern blocks are kept.
    """
    blocks = tuple(
        block for block in blocks_of_value(value, width) if block.is_comp
    )
    return BlockedWeight(value=int(value), blocks=blocks, width=width)


def reconstruct_value(blocks: Sequence[DyadicBlock]) -> int:
    """Sum the contributions of a collection of dyadic blocks."""
    return int(sum(block.value for block in blocks))


def _self_check() -> None:
    """Sanity check used by the test-suite (and importable documentation).

    Reproduces the worked example of the paper: ``0100_0010`` in CSD is the
    value 66 and decomposes into blocks ``01 | 00 | 00 | 10`` with two
    Comp. Pattern blocks at indices 3 and 0.
    """
    blocked = nonzero_blocks_of_value(66)
    assert blocked.phi == 2
    assert blocked.indices == [0, 3]
    assert blocked.reconstruct() == 66
    assert from_csd(to_csd(66)) == 66
