"""Fixed Threshold Approximation (FTA) -- Algorithm 1 of the DB-PIM paper.

The FTA algorithm makes the *number* of non-zero CSD digits uniform across
all weights of a filter while leaving their *positions* unstructured:

1. every quantized weight of the filter is converted to CSD and its non-zero
   digit count ``φ`` is recorded;
2. the filter threshold ``φ_th`` is derived from the mode of those counts,
   clipped to the range ``0..2`` (the paper finds 2 to be the prevalent mode
   and caps the threshold there to bound the per-weight storage);
3. every weight is snapped to the closest value in the query table
   ``T(φ_th)``.

The resulting filter can be compressed to exactly ``φ_th`` dyadic blocks per
weight, which is what lets the DB-PIM macro map 16/φ_th filters per macro and
keep every active SRAM cell doing useful work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .csd import DEFAULT_WIDTH, count_nonzero_digits_array
from .query_table import QueryTableMode, nearest_in_table_array

__all__ = [
    "FTAConfig",
    "FilterApproximation",
    "FTAResult",
    "filter_threshold",
    "approximate_filter",
    "approximate_layer",
    "approximate_model",
]

#: The paper caps the per-filter threshold at two non-zero digits.
MAX_THRESHOLD = 2


@dataclass(frozen=True)
class FTAConfig:
    """Configuration of the FTA algorithm.

    Attributes:
        width: CSD digit width (8 for INT8 weights).
        max_threshold: upper clip applied to the per-filter threshold.
        value_low: inclusive lower bound of the integer weight domain.
        value_high: inclusive upper bound of the integer weight domain.
        table_mode: query-table construction mode (see
            :mod:`repro.core.query_table`).  ``at_most`` is the default and
            matches the paper's reported utilisation; ``exact`` follows the
            literal Algorithm 1 set definition.
    """

    width: int = DEFAULT_WIDTH
    max_threshold: int = MAX_THRESHOLD
    value_low: int = -128
    value_high: int = 127
    table_mode: str = QueryTableMode.AT_MOST

    def __post_init__(self) -> None:
        QueryTableMode.validate(self.table_mode)
        if self.max_threshold < 0:
            raise ValueError("max_threshold must be non-negative")
        if self.value_low > self.value_high:
            raise ValueError("empty weight value domain")


@dataclass
class FilterApproximation:
    """FTA output for a single filter.

    Attributes:
        threshold: the chosen ``φ_th`` for the filter.
        original: the quantized integer weights before approximation.
        approximated: the integer weights after snapping to ``T(φ_th)``.
        phi_counts: per-weight non-zero CSD digit counts of the original
            weights (useful for analytics and tests).
    """

    threshold: int
    original: np.ndarray
    approximated: np.ndarray
    phi_counts: np.ndarray

    @property
    def mean_absolute_error(self) -> float:
        """Average absolute perturbation introduced by the approximation."""
        return float(np.abs(self.approximated - self.original).mean())

    @property
    def num_weights(self) -> int:
        return int(self.original.size)


@dataclass
class FTAResult:
    """FTA output for a whole layer (a stack of filters).

    Attributes:
        filters: per-filter approximations, in filter order.
        config: the configuration used.
    """

    filters: List[FilterApproximation]
    config: FTAConfig = field(default_factory=FTAConfig)

    @property
    def thresholds(self) -> np.ndarray:
        """Vector of per-filter thresholds ``Φ_th``."""
        return np.asarray([f.threshold for f in self.filters], dtype=np.int64)

    @property
    def approximated(self) -> np.ndarray:
        """Approximated weights stacked back into ``(filters, elements)``."""
        return np.stack([f.approximated for f in self.filters], axis=0)

    @property
    def original(self) -> np.ndarray:
        """Original weights stacked back into ``(filters, elements)``."""
        return np.stack([f.original for f in self.filters], axis=0)

    def threshold_histogram(self) -> Dict[int, int]:
        """Count of filters per threshold value."""
        histogram: Dict[int, int] = {}
        for value in self.thresholds:
            histogram[int(value)] = histogram.get(int(value), 0) + 1
        return histogram


def _mode_of_counts(counts: np.ndarray) -> int:
    """Most frequent value in ``counts`` (smallest value wins ties)."""
    values, frequencies = np.unique(counts, return_counts=True)
    return int(values[np.argmax(frequencies)])


def filter_threshold(
    weights: np.ndarray, config: Optional[FTAConfig] = None
) -> int:
    """Derive the FTA threshold ``φ_th`` for one filter (Alg. 1 lines 6-14).

    Args:
        weights: integer weight vector of the filter.
        config: FTA configuration (defaults apply when omitted).

    Returns:
        The threshold in ``0 .. config.max_threshold``.
    """
    config = config or FTAConfig()
    weights = np.asarray(weights, dtype=np.int64).reshape(-1)
    if weights.size == 0:
        raise ValueError("cannot derive a threshold for an empty filter")
    counts = count_nonzero_digits_array(weights, config.width)
    if np.all(counts == 0):
        return 0
    mode = _mode_of_counts(counts)
    if mode == 0:
        return 1
    return min(mode, config.max_threshold)


def approximate_filter(
    weights: np.ndarray, config: Optional[FTAConfig] = None
) -> FilterApproximation:
    """Apply FTA to one filter: derive ``φ_th`` and snap every weight.

    Args:
        weights: integer weight array of any shape; the shape is preserved in
            the output.
        config: FTA configuration.
    """
    config = config or FTAConfig()
    weights = np.asarray(weights, dtype=np.int64)
    flat = weights.reshape(-1)
    counts = count_nonzero_digits_array(flat, config.width)
    threshold = filter_threshold(flat, config)
    if threshold == 0:
        approximated = np.zeros_like(flat)
    else:
        approximated = nearest_in_table_array(
            flat,
            threshold,
            low=config.value_low,
            high=config.value_high,
            width=config.width,
            mode=config.table_mode,
        )
    return FilterApproximation(
        threshold=threshold,
        original=weights.copy(),
        approximated=approximated.reshape(weights.shape),
        phi_counts=counts.reshape(weights.shape),
    )


def approximate_layer(
    weights: np.ndarray, config: Optional[FTAConfig] = None
) -> FTAResult:
    """Apply FTA to a layer whose weights are stacked filter-major.

    Args:
        weights: array of shape ``(num_filters, ...)``; each slice along the
            first axis is treated as one filter (Alg. 1 groups the layer by
            filter).
        config: FTA configuration.
    """
    config = config or FTAConfig()
    weights = np.asarray(weights, dtype=np.int64)
    if weights.ndim < 1 or weights.shape[0] == 0:
        raise ValueError("layer weights must contain at least one filter")
    if weights.ndim == 1:
        weights = weights.reshape(weights.shape[0], 1)
    filters = [approximate_filter(weights[i], config) for i in range(weights.shape[0])]
    return FTAResult(filters=filters, config=config)


def approximate_model(
    layer_weights: Sequence[np.ndarray], config: Optional[FTAConfig] = None
) -> List[FTAResult]:
    """Apply FTA independently to every layer of a model.

    Args:
        layer_weights: iterable of filter-major integer weight arrays, one per
            layer (e.g. conv weights reshaped to ``(Cout, Cin*K*K)``).
        config: FTA configuration shared by all layers.
    """
    config = config or FTAConfig()
    return [approximate_layer(weights, config) for weights in layer_weights]
