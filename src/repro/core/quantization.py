"""Symmetric integer quantization used by the FTA pipeline.

The paper quantizes weights and activations to INT8 (8b/8b) before applying
the FTA approximation.  This module provides the minimal, well-tested
quantization toolbox the reproduction needs:

* symmetric per-tensor and per-channel INT8 weight quantization,
* unsigned INT8 activation quantization (post-ReLU activations are
  non-negative, matching the bit-serial input path of the macro),
* fake-quantization helpers used by the FTA-aware QAT training loop, and
* an FTA-aware weight quantizer that composes quantization with the
  approximation so the ``float -> INT8 -> FTA -> float`` path is one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .fta import FTAConfig, approximate_layer

__all__ = [
    "QuantizationParams",
    "quantize_weights",
    "dequantize",
    "quantize_activations",
    "fake_quantize_weights",
    "fake_quantize_activations",
    "fta_quantize_weights",
]


@dataclass(frozen=True)
class QuantizationParams:
    """Scale(s) and integer range of a quantized tensor.

    Attributes:
        scale: scalar or per-channel array of positive scales such that
            ``float ≈ int * scale``.
        low: inclusive lower bound of the integer grid.
        high: inclusive upper bound of the integer grid.
        channel_axis: axis the per-channel scales are aligned with, or None
            for per-tensor quantization.
    """

    scale: np.ndarray
    low: int
    high: int
    channel_axis: Optional[int] = None

    @property
    def num_bits(self) -> int:
        """Effective bit width of the integer grid."""
        span = self.high - self.low + 1
        return int(np.ceil(np.log2(span)))


def _broadcast_scale(
    scale: np.ndarray, shape: Tuple[int, ...], channel_axis: Optional[int]
) -> np.ndarray:
    """Reshape a per-channel scale vector so it broadcasts over ``shape``."""
    scale = np.asarray(scale, dtype=np.float64)
    if channel_axis is None or scale.ndim == 0:
        return scale
    broadcast_shape = [1] * len(shape)
    broadcast_shape[channel_axis] = shape[channel_axis]
    return scale.reshape(broadcast_shape)


def quantize_weights(
    weights: np.ndarray,
    num_bits: int = 8,
    per_channel: bool = True,
    channel_axis: int = 0,
) -> Tuple[np.ndarray, QuantizationParams]:
    """Symmetric signed quantization of a float weight tensor.

    Args:
        weights: float array of any shape.
        num_bits: bit width (8 for the paper's INT8 configuration).
        per_channel: when True a separate scale is derived per output channel
            (axis ``channel_axis``), which is the standard choice for conv
            and linear weights.
        channel_axis: axis of the output channels.

    Returns:
        ``(int_weights, params)`` where ``int_weights`` is ``int64`` in
        ``[-2^(b-1)+1, 2^(b-1)-1]`` (the symmetric grid excludes the most
        negative code so that ``-x`` is always representable).
    """
    weights = np.asarray(weights, dtype=np.float64)
    high = (1 << (num_bits - 1)) - 1
    low = -high
    if per_channel and weights.ndim > 1:
        reduce_axes = tuple(i for i in range(weights.ndim) if i != channel_axis)
        max_abs = np.abs(weights).max(axis=reduce_axes)
    else:
        max_abs = np.abs(weights).max()
        channel_axis = None
        per_channel = False
    max_abs = np.maximum(max_abs, 1e-12)
    scale = np.asarray(max_abs, dtype=np.float64) / high
    broadcast = _broadcast_scale(scale, weights.shape, channel_axis)
    quantized = np.clip(np.round(weights / broadcast), low, high).astype(np.int64)
    params = QuantizationParams(
        scale=np.asarray(scale, dtype=np.float64),
        low=low,
        high=high,
        channel_axis=channel_axis,
    )
    return quantized, params


def dequantize(values: np.ndarray, params: QuantizationParams) -> np.ndarray:
    """Map integer codes back to float using the stored scale(s)."""
    values = np.asarray(values, dtype=np.float64)
    broadcast = _broadcast_scale(params.scale, values.shape, params.channel_axis)
    return values * broadcast


def quantize_activations(
    activations: np.ndarray, num_bits: int = 8, signed: bool = False
) -> Tuple[np.ndarray, QuantizationParams]:
    """Quantize an activation tensor with a single per-tensor scale.

    Post-ReLU activations are non-negative, so by default an unsigned grid
    ``[0, 2^b - 1]`` is used, matching the unsigned bit-serial input stream
    the IPU feeds to the macro.
    """
    activations = np.asarray(activations, dtype=np.float64)
    if signed:
        high = (1 << (num_bits - 1)) - 1
        low = -high
        max_abs = max(float(np.abs(activations).max()), 1e-12)
        scale = max_abs / high
    else:
        high = (1 << num_bits) - 1
        low = 0
        max_value = max(float(activations.max()), 1e-12)
        scale = max_value / high
    quantized = np.clip(np.round(activations / scale), low, high).astype(np.int64)
    params = QuantizationParams(
        scale=np.asarray(scale, dtype=np.float64), low=low, high=high
    )
    return quantized, params


def fake_quantize_weights(
    weights: np.ndarray,
    num_bits: int = 8,
    per_channel: bool = True,
    channel_axis: int = 0,
) -> np.ndarray:
    """Quantize-then-dequantize weights (straight-through forward pass)."""
    quantized, params = quantize_weights(weights, num_bits, per_channel, channel_axis)
    return dequantize(quantized, params)


def fake_quantize_activations(
    activations: np.ndarray, num_bits: int = 8, signed: bool = False
) -> np.ndarray:
    """Quantize-then-dequantize activations (straight-through forward pass)."""
    quantized, params = quantize_activations(activations, num_bits, signed)
    return dequantize(quantized, params)


def fta_quantize_weights(
    weights: np.ndarray,
    num_bits: int = 8,
    per_channel: bool = True,
    channel_axis: int = 0,
    fta_config: Optional[FTAConfig] = None,
) -> Tuple[np.ndarray, np.ndarray, QuantizationParams, np.ndarray]:
    """Quantize a filter-major weight tensor and apply the FTA approximation.

    Args:
        weights: float weights with output channels along ``channel_axis``
            (axis 0 by convention).
        num_bits: quantization bit width.
        per_channel: per-channel weight scales.
        channel_axis: output-channel axis (treated as the filter axis for
            FTA grouping).
        fta_config: FTA configuration.

    Returns:
        ``(int_weights, fta_int_weights, params, thresholds)`` -- the plain
        quantized integers, the FTA-approximated integers (same shape), the
        quantization parameters, and the per-filter thresholds.
    """
    if channel_axis != 0:
        weights = np.moveaxis(np.asarray(weights), channel_axis, 0)
        channel_axis = 0
    quantized, params = quantize_weights(
        weights, num_bits, per_channel, channel_axis
    )
    filter_major = quantized.reshape(quantized.shape[0], -1)
    fta_result = approximate_layer(filter_major, fta_config)
    approximated = fta_result.approximated.reshape(quantized.shape)
    return quantized, approximated, params, fta_result.thresholds
