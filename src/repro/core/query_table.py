"""Query tables ``T(φ)`` for the FTA algorithm.

Algorithm 1 of the paper snaps every weight of a filter to the closest value
drawn from a *query table* ``T(φ_th)``: the set of representable values whose
CSD representation contains a prescribed number of non-zero digits.

Two flavours are provided:

* ``exact``   -- ``T(φ) = { t : φ(toCSD(t)) == φ }`` (the literal Algorithm 1
  definition).
* ``at_most`` -- ``T(φ) = { t : φ(toCSD(t)) <= φ }``.  The hardware allocates
  ``φ_th`` dyadic-block slots per weight either way; a weight that needs
  fewer blocks simply leaves a slot holding a Zero Pattern block.  This is
  the variant that matches the paper's reported actual utilisation of
  91.95%--98.42% (strictly-exact tables would pin utilisation at 100%) and it
  is much gentler on near-zero weights, so it is the library default.

Tables are cached per ``(width, φ, mode, value range)`` because the FTA
algorithm queries them for every weight of every filter.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from .csd import DEFAULT_WIDTH, count_nonzero_digits_array

__all__ = [
    "QueryTableMode",
    "build_table",
    "nearest_in_table",
    "nearest_in_table_array",
    "max_phi",
]


class QueryTableMode:
    """String constants selecting how a query table is built."""

    EXACT = "exact"
    AT_MOST = "at_most"

    _ALL = (EXACT, AT_MOST)

    @classmethod
    def validate(cls, mode: str) -> str:
        if mode not in cls._ALL:
            raise ValueError(
                f"unknown query-table mode {mode!r}; expected one of {cls._ALL}"
            )
        return mode


def max_phi(width: int = DEFAULT_WIDTH) -> int:
    """Maximum possible non-zero CSD digit count for the given width.

    With the no-adjacent-non-zero constraint at most every other digit can be
    non-zero, i.e. ``ceil(width / 2)`` digits.
    """
    return (width + 1) // 2


@lru_cache(maxsize=None)
def build_table(
    phi: int,
    low: int = -128,
    high: int = 127,
    width: int = DEFAULT_WIDTH,
    mode: str = QueryTableMode.AT_MOST,
) -> Tuple[int, ...]:
    """Build the sorted query table ``T(φ)`` over the value range.

    Args:
        phi: target number of non-zero CSD digits.
        low: inclusive lower bound of the candidate value range (e.g. -128).
        high: inclusive upper bound of the candidate value range (e.g. 127).
        width: CSD digit width.
        mode: ``"exact"`` or ``"at_most"`` (see module docstring).

    Returns:
        A sorted tuple of integers.  The tuple is never empty: ``phi == 0``
        in either mode yields ``(0,)``.

    Raises:
        ValueError: for an impossible ``phi`` or an empty value range.
    """
    QueryTableMode.validate(mode)
    if phi < 0 or phi > max_phi(width):
        raise ValueError(
            f"phi={phi} is outside the feasible range [0, {max_phi(width)}] "
            f"for width {width}"
        )
    if low > high:
        raise ValueError(f"empty value range [{low}, {high}]")
    candidates = np.arange(low, high + 1, dtype=np.int64)
    counts = count_nonzero_digits_array(candidates, width)
    if mode == QueryTableMode.EXACT:
        mask = counts == phi
    else:
        mask = counts <= phi
    selected = candidates[mask]
    if selected.size == 0:
        raise ValueError(
            f"query table T({phi}) is empty for range [{low}, {high}] "
            f"with mode {mode!r}"
        )
    return tuple(int(v) for v in selected)


def nearest_in_table(
    value: int,
    phi: int,
    low: int = -128,
    high: int = 127,
    width: int = DEFAULT_WIDTH,
    mode: str = QueryTableMode.AT_MOST,
) -> int:
    """Closest table entry to ``value`` (ties resolved toward zero).

    Tie-breaking toward the smaller magnitude keeps the approximation
    conservative: when two table entries are equally close the one that
    perturbs the weight toward zero is chosen.
    """
    table = np.asarray(build_table(phi, low, high, width, mode), dtype=np.int64)
    distance = np.abs(table - int(value))
    best = distance.min()
    candidates = table[distance == best]
    # Prefer the candidate with the smaller magnitude; among equal magnitudes
    # prefer the positive one for determinism.
    order = np.lexsort((-(candidates > 0).astype(int), np.abs(candidates)))
    return int(candidates[order[0]])


def nearest_in_table_array(
    values: np.ndarray,
    phi: int,
    low: int = -128,
    high: int = 127,
    width: int = DEFAULT_WIDTH,
    mode: str = QueryTableMode.AT_MOST,
) -> np.ndarray:
    """Vectorised :func:`nearest_in_table` over an integer array."""
    values = np.asarray(values, dtype=np.int64)
    table = np.asarray(build_table(phi, low, high, width, mode), dtype=np.int64)
    # ``table`` is sorted; use searchsorted to find the two neighbours of each
    # value and pick the closer one (toward-zero tie break).
    positions = np.searchsorted(table, values)
    left = np.clip(positions - 1, 0, table.size - 1)
    right = np.clip(positions, 0, table.size - 1)
    left_values = table[left]
    right_values = table[right]
    left_distance = np.abs(values - left_values)
    right_distance = np.abs(values - right_values)
    pick_right = right_distance < left_distance
    tie = right_distance == left_distance
    # On a tie prefer the smaller magnitude.
    pick_right = pick_right | (tie & (np.abs(right_values) < np.abs(left_values)))
    result = np.where(pick_right, right_values, left_values)
    return result.reshape(np.asarray(values).shape)
