"""Bit-level sparsity analytics (the statistics behind Fig. 2 of the paper).

Two families of statistics are implemented:

* **Weight bit sparsity** (Fig. 2(a)): the fraction of zero bits in INT8
  weights under three encodings -- plain two's complement binary, CSD, and
  the FTA-approximated CSD ("Ours").  CSD adds roughly 5 percentage points of
  zero bits over binary and FTA adds a further few points.

* **Input-feature block sparsity** (Fig. 2(b)): when input features are
  grouped (group sizes 1, 8 or 16), how often an entire bit *column* of the
  group is zero.  Such all-zero columns are what the IPU skips at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from .csd import (
    DEFAULT_WIDTH,
    binary_digits,
    count_nonzero_bits_binary,
    count_nonzero_digits_array,
)
from .fta import FTAConfig, approximate_layer

__all__ = [
    "WeightSparsityReport",
    "weight_zero_bit_ratio_binary",
    "weight_zero_bit_ratio_csd",
    "weight_zero_bit_ratio_fta",
    "analyze_weight_sparsity",
    "input_zero_bit_ratio",
    "input_block_zero_column_ratio",
    "analyze_input_sparsity",
]


@dataclass(frozen=True)
class WeightSparsityReport:
    """Zero-bit ratios of one layer (or model) under the three encodings.

    Attributes:
        binary: zero-bit ratio of the plain two's complement encoding.
        csd: zero-bit ratio after CSD re-encoding.
        fta: zero-bit ratio after CSD re-encoding *and* FTA approximation.
        num_weights: number of weights analysed.
    """

    binary: float
    csd: float
    fta: float
    num_weights: int

    def as_dict(self) -> Dict[str, float]:
        return {"binary": self.binary, "csd": self.csd, "fta": self.fta}


def weight_zero_bit_ratio_binary(
    weights: np.ndarray, width: int = DEFAULT_WIDTH
) -> float:
    """Fraction of zero bits in the two's complement encoding of ``weights``."""
    weights = np.asarray(weights, dtype=np.int64)
    if weights.size == 0:
        raise ValueError("cannot analyse an empty weight tensor")
    nonzero = count_nonzero_bits_binary(weights, width)
    return 1.0 - float(nonzero.sum()) / float(weights.size * width)


def weight_zero_bit_ratio_csd(
    weights: np.ndarray, width: int = DEFAULT_WIDTH
) -> float:
    """Fraction of zero digits in the CSD encoding of ``weights``."""
    weights = np.asarray(weights, dtype=np.int64)
    if weights.size == 0:
        raise ValueError("cannot analyse an empty weight tensor")
    nonzero = count_nonzero_digits_array(weights, width)
    return 1.0 - float(nonzero.sum()) / float(weights.size * width)


def weight_zero_bit_ratio_fta(
    weights: np.ndarray,
    width: int = DEFAULT_WIDTH,
    fta_config: Optional[FTAConfig] = None,
) -> float:
    """Zero-digit ratio after applying FTA to a filter-major weight matrix.

    Args:
        weights: integer weights of shape ``(num_filters, elements)`` or any
            shape whose first axis is the filter axis.
    """
    weights = np.asarray(weights, dtype=np.int64)
    if weights.ndim == 1:
        weights = weights.reshape(1, -1)
    filter_major = weights.reshape(weights.shape[0], -1)
    result = approximate_layer(filter_major, fta_config)
    return weight_zero_bit_ratio_csd(result.approximated, width)


def analyze_weight_sparsity(
    layer_weights: Sequence[np.ndarray],
    width: int = DEFAULT_WIDTH,
    fta_config: Optional[FTAConfig] = None,
) -> WeightSparsityReport:
    """Aggregate the three zero-bit ratios over a list of layers.

    Each entry of ``layer_weights`` must be a filter-major integer array.
    Ratios are weighted by the number of bits in each layer so the aggregate
    matches a whole-model measurement.
    """
    total_bits = 0
    zero_binary = 0.0
    zero_csd = 0.0
    zero_fta = 0.0
    total_weights = 0
    for weights in layer_weights:
        weights = np.asarray(weights, dtype=np.int64)
        bits = weights.size * width
        total_bits += bits
        total_weights += weights.size
        zero_binary += weight_zero_bit_ratio_binary(weights, width) * bits
        zero_csd += weight_zero_bit_ratio_csd(weights, width) * bits
        zero_fta += weight_zero_bit_ratio_fta(weights, width, fta_config) * bits
    if total_bits == 0:
        raise ValueError("no weights provided")
    return WeightSparsityReport(
        binary=zero_binary / total_bits,
        csd=zero_csd / total_bits,
        fta=zero_fta / total_bits,
        num_weights=total_weights,
    )


def input_zero_bit_ratio(
    activations: np.ndarray, width: int = DEFAULT_WIDTH
) -> float:
    """Fraction of zero bits in an unsigned activation tensor."""
    activations = np.asarray(activations, dtype=np.int64)
    if activations.size == 0:
        raise ValueError("cannot analyse an empty activation tensor")
    if activations.min() < 0:
        raise ValueError("activation bit analysis expects unsigned values")
    bits = binary_digits(activations, width)
    return 1.0 - float(bits.sum()) / float(bits.size)


def input_block_zero_column_ratio(
    activations: np.ndarray, group_size: int, width: int = DEFAULT_WIDTH
) -> float:
    """Probability that a whole bit column of an input group is zero.

    The IPU broadcasts inputs to the macro in groups (16 inputs per
    compartment column in the paper's configuration) and can skip a bit
    position only when *all* inputs of the group have a zero at that
    position.  This function measures how often that happens.

    Args:
        activations: unsigned integer activations, flattened internally.
        group_size: number of activations sharing one broadcast column.
        width: activation bit width.

    Returns:
        Ratio in ``[0, 1]`` of (group, bit-position) pairs whose column is
        entirely zero.
    """
    if group_size < 1:
        raise ValueError("group_size must be at least 1")
    activations = np.asarray(activations, dtype=np.int64).reshape(-1)
    if activations.size == 0:
        raise ValueError("cannot analyse an empty activation tensor")
    if activations.min() < 0:
        raise ValueError("activation bit analysis expects unsigned values")
    num_groups = activations.size // group_size
    if num_groups == 0:
        raise ValueError(
            f"need at least {group_size} activations for group_size={group_size}"
        )
    trimmed = activations[: num_groups * group_size]
    bits = binary_digits(trimmed, width).reshape(num_groups, group_size, width)
    column_is_zero = ~bits.any(axis=1)
    return float(column_is_zero.mean())


def analyze_input_sparsity(
    activations: np.ndarray,
    group_sizes: Sequence[int] = (1, 8, 16),
    width: int = DEFAULT_WIDTH,
) -> Dict[int, float]:
    """Fig. 2(b): zero-column ratios for several group sizes."""
    return {
        int(size): input_block_zero_column_ratio(activations, int(size), width)
        for size in group_sizes
    }
