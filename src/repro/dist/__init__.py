"""Distributed sweep fabric: shard transports, leases, and workers.

The sweep service (:mod:`repro.api.sweep`) partitions a grid into
deterministic, journaled :class:`~repro.api.sweep.SweepShard` s -- exactly
the unit a multi-host work queue needs.  This package is the execution
layer behind it:

* :mod:`repro.dist.locks` -- the shared PID-sentinel exclusive-lock
  utility (stale-holder reclaim with a :class:`RuntimeWarning`) that the
  sweep journal, the packed result store and the broker's shard leases are
  all built from;
* :mod:`repro.dist.transport` -- the :class:`ShardTransport` protocol
  (``lease`` / ``heartbeat`` / ``complete`` / ``requeue`` lifecycle,
  per-shard attempt counts, a typed :class:`WorkerLostError` when the
  retry budget runs out) plus the transport registry and the three local
  adapters (``serial`` / ``thread`` / ``process``) that re-implement the
  historical executor backends byte-identically;
* :mod:`repro.dist.broker` -- the first distributed transport: a
  :class:`DirectoryBroker` coordinating stateless workers over a shared
  sweep directory (pickled shard task files, PID+heartbeat-stamped lease
  sentinels, atomically-renamed journal-fragment results merged
  deterministically by the coordinator);
* :mod:`repro.dist.worker` -- the ``repro worker`` protocol: attach to a
  sweep directory, lease cold shards, execute them through the existing
  :func:`repro.api.sweep.run_shard`, stream results back as fragments,
  heartbeat while busy, repeat until the sweep completes.

A worker SIGKILLed mid-shard is recovered by lease expiry -> requeue
(bounded by ``max_attempts``), and an N-worker sweep reproduces the serial
transport's :class:`~repro.api.results.SweepResult` byte-for-byte -- see
``docs/distributed.md``.
"""

from .locks import PidFileLock, PidFileLockError, pid_alive
from .transport import (
    DEFAULT_TRANSPORT,
    LocalTransport,
    ProcessTransport,
    SerialTransport,
    ShardLease,
    ShardOutcomes,
    ShardTransport,
    ThreadTransport,
    TransportError,
    WorkerLostError,
    get_transport,
    list_transports,
    register_transport,
    transport_names,
    unregister_transport,
)
from .broker import BrokerTransport, DirectoryBroker, SweepManifestError
from .worker import WorkerConfig, run_worker

__all__ = [
    "PidFileLock",
    "PidFileLockError",
    "pid_alive",
    "DEFAULT_TRANSPORT",
    "ShardLease",
    "ShardOutcomes",
    "ShardTransport",
    "LocalTransport",
    "SerialTransport",
    "ThreadTransport",
    "ProcessTransport",
    "TransportError",
    "WorkerLostError",
    "get_transport",
    "list_transports",
    "register_transport",
    "transport_names",
    "unregister_transport",
    "BrokerTransport",
    "DirectoryBroker",
    "SweepManifestError",
    "WorkerConfig",
    "run_worker",
]
