"""Shared-directory sweep broker: leases, fragments, and the coordinator.

The first *distributed* shard transport.  There is no server: coordinator
and workers rendezvous on a plain directory (local disk for multi-process
sweeps, a shared filesystem for multi-host ones) using only atomic
filesystem primitives -- ``O_EXCL`` creates for claims, temp-file +
``os.replace`` for publications -- so a SIGKILL at any instant leaves
either the old state or the new state, never a torn one::

    <sweep_dir>/
        manifest.json        # sweep id, package/schema versions, shard ids
        coordinator.lock     # PID sentinel: one coordinator per directory
        tasks/shard-0007.task    # pickled SweepShard (points + configs)
        leases/shard-0007.lease  # JSON {pid, worker, host, created, time}
        results/shard-0007.jsonl # journal fragment (atomically renamed)
        STOP                 # coordinator is done; workers exit

Lifecycle: the coordinator (:class:`BrokerTransport`, selected with
``run_sweep(transport="broker", sweep_dir=...)``) publishes the cold
shards as task files and then loops -- consuming result fragments,
breaking leases whose holder died (same-host PID probe) or stopped
heartbeating (cross-host TTL), and, unless told otherwise, leasing and
executing shards itself so a sweep with zero attached workers still
completes.  Workers (``repro worker <sweep_dir>``, see
:mod:`repro.dist.worker`) claim leases, heartbeat while executing, and
stream results back as journal fragments.  A broken lease simply makes
the shard claimable again; per-shard attempts are counted by the
coordinator and bounded by ``max_attempts``
(:class:`~repro.dist.transport.WorkerLostError` names the shard when the
budget runs out).

Determinism: shard execution is deterministic and fragments are keyed by
grid indices, so however many workers race -- including duplicated
completions from workers that outlived an expired lease -- the merged
:class:`~repro.api.results.SweepResult` is byte-for-byte identical to the
serial transport's (pinned by ``tests/dist/`` and the CI ``dist-smoke``
job).

Task files are pickled (like every shard a process pool ships); a sweep
directory is private coordination state -- do not point workers at
directories you do not trust.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import tempfile
import time
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .locks import PidFileLock, pid_alive
from .transport import (
    ShardLease,
    ShardOutcomes,
    ShardRunner,
    ShardFinisher,
    ShardTransport,
    TransportError,
    TransportSpec,
    register_transport,
)

__all__ = [
    "MANIFEST_FILENAME",
    "STOP_FILENAME",
    "COORDINATOR_LOCK_FILENAME",
    "MANIFEST_FORMAT",
    "SweepManifestError",
    "DirectoryBroker",
    "BrokerTransport",
]

#: Manifest file name inside the sweep directory.
MANIFEST_FILENAME = "manifest.json"

#: Stop-sentinel file name: its existence tells workers to exit.
STOP_FILENAME = "STOP"

#: Coordinator PID-sentinel lock file name.
COORDINATOR_LOCK_FILENAME = "coordinator.lock"

#: Manifest layout stamp; bump on incompatible directory-layout changes.
MANIFEST_FORMAT = 1

_TASKS_DIR = "tasks"
_LEASES_DIR = "leases"
_RESULTS_DIR = "results"


class SweepManifestError(TransportError):
    """The sweep directory cannot be attached to.

    Raised when the manifest is missing (after the attach timeout),
    unreadable, from an incompatible package/schema version, or the
    directory's task files do not match it -- a worker must fail loudly
    rather than compute results the coordinator would discard.
    """


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp + fsync + replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temporary = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise


class DirectoryBroker:
    """The on-disk sweep-directory protocol, shared by both sides.

    One instance wraps one sweep directory; the coordinator uses the
    publish/consume half, workers the attach/lease/execute half.  All
    mutation is crash-safe: claims are ``O_EXCL`` creates, everything
    else is temp-file + ``os.replace``.

    Args:
        root: the shared sweep directory.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- paths ----------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """The sweep manifest (written last during publication)."""
        return self.root / MANIFEST_FILENAME

    @property
    def stop_path(self) -> Path:
        """The stop sentinel telling workers to exit."""
        return self.root / STOP_FILENAME

    def task_path(self, shard_index: int) -> Path:
        """The pickled task file of one shard."""
        return self.root / _TASKS_DIR / f"shard-{shard_index:04d}.task"

    def lease_path(self, shard_index: int) -> Path:
        """The lease sentinel of one shard."""
        return self.root / _LEASES_DIR / f"shard-{shard_index:04d}.lease"

    def result_path(self, shard_index: int) -> Path:
        """The result fragment of one shard."""
        return self.root / _RESULTS_DIR / f"shard-{shard_index:04d}.jsonl"

    # -- publication (coordinator) --------------------------------------
    def publish(self, shards: Sequence[Any], sweep_id: str) -> None:
        """Publish a fresh sweep: task files first, manifest last.

        Any state from a previous sweep in the same directory (tasks,
        leases, results, the stop sentinel, the old manifest) is removed
        first, so a re-used directory can never leak stale fragments into
        the new run.  The manifest is written last -- a worker that sees
        a manifest is guaranteed to find every task file it names.
        """
        try:
            os.unlink(self.manifest_path)
        except FileNotFoundError:
            pass
        for directory in (_TASKS_DIR, _LEASES_DIR, _RESULTS_DIR):
            path = self.root / directory
            path.mkdir(parents=True, exist_ok=True)
            for stale in path.iterdir():
                try:
                    os.unlink(stale)
                except OSError:
                    pass
        try:
            os.unlink(self.stop_path)
        except FileNotFoundError:
            pass
        for shard in shards:
            _atomic_write(
                self.task_path(shard.index),
                pickle.dumps(shard, protocol=pickle.HIGHEST_PROTOCOL),
            )
        from .. import __version__
        from ..api.results import SCHEMA_VERSION

        manifest = {
            "kind": "sweep-manifest",
            "format": MANIFEST_FORMAT,
            "sweep_id": sweep_id,
            "version": __version__,
            "schema_version": SCHEMA_VERSION,
            "shards": sorted(shard.index for shard in shards),
            "points": {
                str(shard.index): len(shard.points) for shard in shards
            },
            "created_at": time.time(),
        }
        _atomic_write(
            self.manifest_path,
            (json.dumps(manifest, sort_keys=True) + "\n").encode("utf-8"),
        )

    def read_manifest(
        self, wait_s: float = 0.0, poll_s: float = 0.1
    ) -> Dict[str, Any]:
        """Read (optionally waiting for) the sweep manifest.

        Args:
            wait_s: how long to keep polling for a manifest to appear --
                lets workers be started *before* the coordinator.
            poll_s: polling interval while waiting.

        Raises:
            SweepManifestError: no readable, compatible manifest appeared
                within the deadline.
        """
        from .. import __version__
        from ..api.results import SCHEMA_VERSION

        deadline = time.monotonic() + max(0.0, wait_s)
        while True:
            try:
                payload = json.loads(
                    self.manifest_path.read_text(encoding="utf-8")
                )
            except FileNotFoundError:
                payload = None
            except (OSError, ValueError) as error:
                raise SweepManifestError(
                    f"unreadable sweep manifest {self.manifest_path} "
                    f"({type(error).__name__}: {error})"
                ) from error
            if payload is not None:
                if payload.get("format") != MANIFEST_FORMAT:
                    raise SweepManifestError(
                        f"sweep manifest {self.manifest_path} has "
                        f"unsupported format {payload.get('format')!r} "
                        f"(this build speaks format {MANIFEST_FORMAT})"
                    )
                if (
                    payload.get("version") != __version__
                    or payload.get("schema_version") != SCHEMA_VERSION
                ):
                    raise SweepManifestError(
                        f"sweep manifest {self.manifest_path} was published "
                        f"by version {payload.get('version')!r} (schema "
                        f"{payload.get('schema_version')!r}); this worker "
                        f"runs {__version__!r} (schema {SCHEMA_VERSION!r}) "
                        "-- mixed-version fleets would poison the cache keys"
                    )
                return payload
            if time.monotonic() >= deadline:
                raise SweepManifestError(
                    f"no sweep manifest at {self.manifest_path}; is the "
                    "coordinator running? (start it with repro sweep "
                    "--transport broker --sweep-dir ...)"
                )
            time.sleep(poll_s)

    def write_stop(self) -> None:
        """Drop the stop sentinel so attached workers exit their loops."""
        try:
            _atomic_write(self.stop_path, b"stop\n")
        except OSError:
            pass  # best-effort: workers also exit on all-results-present

    def stopped(self) -> bool:
        """True once the coordinator dropped the stop sentinel."""
        return self.stop_path.exists()

    # -- tasks ----------------------------------------------------------
    def load_task(self, shard_index: int) -> Any:
        """Unpickle one shard's task file.

        Raises:
            SweepManifestError: the task file is missing or undecodable
                (the directory does not match its manifest).
        """
        try:
            payload = self.task_path(shard_index).read_bytes()
            return pickle.loads(payload)
        except FileNotFoundError:
            raise SweepManifestError(
                f"task file {self.task_path(shard_index)} named by the "
                "manifest is missing; the sweep directory is damaged or "
                "was re-published mid-claim"
            ) from None
        except Exception as error:
            raise SweepManifestError(
                f"task file {self.task_path(shard_index)} cannot be "
                f"decoded ({type(error).__name__}: {error})"
            ) from error

    # -- leases ---------------------------------------------------------
    def try_lease(self, shard_index: int, worker: str) -> bool:
        """Attempt to claim a shard (atomic ``O_EXCL`` create).

        Returns:
            True when this call won the claim; False when some other
            worker already holds (or just grabbed) the lease.
        """
        path = self.lease_path(shard_index)
        path.parent.mkdir(parents=True, exist_ok=True)
        now = time.time()
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "worker": worker,
                "host": socket.gethostname(),
                "created": now,
                "time": now,
            },
            sort_keys=True,
        )
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        return True

    def heartbeat_lease(self, shard_index: int, worker: str) -> bool:
        """Refresh a held lease's ``time`` stamp (atomic replace).

        Returns:
            True when the stamp was refreshed; False when the lease is
            gone or no longer ours (the coordinator broke it -- the
            worker should finish the shard anyway; completion is
            idempotent).
        """
        info = self.lease_info(shard_index)
        if info is None or info.get("worker") != worker:
            return False
        info["time"] = time.time()
        try:
            _atomic_write(
                self.lease_path(shard_index),
                (json.dumps(info, sort_keys=True) + "\n").encode("utf-8"),
            )
        except OSError:
            return False
        return True

    def lease_info(self, shard_index: int) -> Optional[Dict[str, Any]]:
        """The lease sentinel's payload (``None`` when absent/unreadable).

        An unreadable lease reads as held-by-nobody only after it has
        also failed the liveness test in :meth:`lease_is_dead` -- here it
        is reported as an empty claim so callers do not double-claim.
        """
        try:
            return json.loads(
                self.lease_path(shard_index).read_text(encoding="utf-8")
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # Torn mid-replace or damaged: report a claim with no
            # liveness data; the coordinator's TTL will break it.
            return {}

    def lease_is_dead(
        self, info: Optional[Dict[str, Any]], lease_ttl_s: float
    ) -> bool:
        """Whether a lease's holder should be presumed lost.

        Same-host holders are PID-probed (a SIGKILLed worker is detected
        within one poll interval, not one TTL); cross-host (or unreadable)
        leases fall back to the heartbeat TTL.
        """
        if info is None:
            return False  # no lease at all
        pid = info.get("pid")
        host = info.get("host")
        if (
            isinstance(pid, int)
            and host == socket.gethostname()
            and not pid_alive(pid)
        ):
            return True
        stamp = info.get("time")
        if not isinstance(stamp, (int, float)):
            return True  # unreadable/damaged lease: only the TTL applies
        return (time.time() - stamp) > lease_ttl_s

    def break_lease(self, shard_index: int) -> None:
        """Remove a (presumed-lost) lease so the shard is claimable again."""
        try:
            os.unlink(self.lease_path(shard_index))
        except FileNotFoundError:
            pass

    def release_lease(self, shard_index: int) -> None:
        """Drop a lease after completing (or abandoning) its shard."""
        self.break_lease(shard_index)

    # -- results --------------------------------------------------------
    def has_result(self, shard_index: int) -> bool:
        """Whether a result fragment exists for the shard."""
        return self.result_path(shard_index).exists()

    def write_outcomes(
        self,
        shard_index: int,
        outcomes: ShardOutcomes,
        worker: str,
        sweep_id: str,
    ) -> None:
        """Publish one shard's outcomes as a journal fragment.

        The fragment is a JSONL blob -- a header line followed by one
        ``{"kind": "outcome", "index", "cache_hit", "result"}`` line per
        grid point, the same serialisation contract the run journal uses
        -- written to a temp file and atomically renamed, so readers only
        ever see whole fragments.  Duplicated completions simply replace
        the fragment with identical bytes (idempotent).
        """
        lines = [
            json.dumps(
                {
                    "kind": "fragment",
                    "sweep_id": sweep_id,
                    "shard": shard_index,
                    "worker": worker,
                    "points": len(outcomes),
                },
                sort_keys=True,
            )
        ]
        for index, result, hit in outcomes:
            lines.append(
                json.dumps(
                    {
                        "kind": "outcome",
                        "index": int(index),
                        "cache_hit": bool(hit),
                        "result": result.to_dict(),
                    },
                    sort_keys=True,
                )
            )
        _atomic_write(
            self.result_path(shard_index),
            ("\n".join(lines) + "\n").encode("utf-8"),
        )

    def write_failure(
        self,
        shard_index: int,
        message: str,
        point_payload: Optional[Dict[str, Any]],
        worker: str,
        sweep_id: str,
    ) -> None:
        """Publish a shard's grid-point failure as an error fragment.

        A *deterministic* failure (a bad parameter, an experiment bug)
        must fail the sweep with the original
        :class:`~repro.api.sweep.SweepPointError` rather than burn the
        retry budget re-running a shard that can never succeed.
        """
        payload = {
            "kind": "fragment-error",
            "sweep_id": sweep_id,
            "shard": shard_index,
            "worker": worker,
            "message": message,
            "point": point_payload,
        }
        _atomic_write(
            self.result_path(shard_index),
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )

    def discard_result(self, shard_index: int) -> None:
        """Remove a damaged/foreign fragment so the shard re-runs."""
        try:
            os.unlink(self.result_path(shard_index))
        except FileNotFoundError:
            pass

    def read_result(
        self, shard_index: int, sweep_id: str
    ) -> Optional[Tuple[str, Any]]:
        """Consume one shard's fragment, if any.

        Returns:
            ``None`` when no fragment exists yet; otherwise one of
            ``("ok", outcomes)`` (grid-index/result/hit triples),
            ``("error", (message, point_payload))`` for a published
            grid-point failure, or ``("damaged", reason)`` when the
            fragment is unreadable or belongs to a different sweep (the
            coordinator discards it and lets the shard re-run).
        """
        from ..api.results import ExperimentResult

        try:
            text = self.result_path(shard_index).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as error:
            return ("damaged", f"unreadable fragment ({error})")
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return ("damaged", "empty fragment")
        try:
            header = json.loads(lines[0])
        except ValueError:
            return ("damaged", "unparseable fragment header")
        if header.get("sweep_id") != sweep_id:
            return (
                "damaged",
                f"fragment belongs to sweep {header.get('sweep_id')!r}, "
                f"not {sweep_id!r}",
            )
        if header.get("kind") == "fragment-error":
            return (
                "error",
                (str(header.get("message")), header.get("point")),
            )
        if header.get("kind") != "fragment":
            return ("damaged", f"unknown fragment kind {header.get('kind')!r}")
        outcomes: ShardOutcomes = []
        try:
            for line in lines[1:]:
                entry = json.loads(line)
                if entry.get("kind") != "outcome":
                    return (
                        "damaged",
                        f"unknown fragment line kind {entry.get('kind')!r}",
                    )
                outcomes.append(
                    (
                        int(entry["index"]),
                        ExperimentResult.from_dict(entry["result"]),
                        bool(entry["cache_hit"]),
                    )
                )
        except (KeyError, TypeError, ValueError) as error:
            return (
                "damaged",
                f"undecodable outcome line ({type(error).__name__}: {error})",
            )
        if len(outcomes) != header.get("points"):
            return (
                "damaged",
                f"fragment holds {len(outcomes)} outcomes but its header "
                f"promises {header.get('points')}",
            )
        return ("ok", outcomes)


class BrokerTransport(ShardTransport):
    """The coordinator side of the shared-directory broker.

    Selected with ``run_sweep(transport="broker", sweep_dir=...)``.
    Publishes the cold shards into the sweep directory, then loops:
    consume finished fragments, break dead leases (PID probe on this
    host, heartbeat TTL across hosts) and requeue their shards within the
    per-shard attempt budget, and -- by default -- lease and execute
    shards itself, so the sweep completes even with zero attached
    workers.  On exit (success or failure) the stop sentinel is dropped
    so workers terminate.

    Args:
        sweep_dir: the shared coordination directory (required).
        lease_ttl_s: heartbeat age after which a lease is presumed lost.
        poll_s: coordinator polling interval while waiting on workers.
        max_attempts: per-shard lease budget before
            :class:`~repro.dist.transport.WorkerLostError`.
        coordinator_executes: whether the coordinator leases and runs
            shards itself alongside the workers (True by default; pass
            False to make it a pure coordinator).
    """

    name = "broker"
    distributed = True

    def __init__(
        self,
        sweep_dir: Optional[Union[str, Path]] = None,
        lease_ttl_s: float = 15.0,
        poll_s: float = 0.05,
        max_attempts: int = 3,
        coordinator_executes: bool = True,
    ) -> None:
        super().__init__(max_attempts=max_attempts)
        if sweep_dir is None:
            raise ValueError(
                "the broker transport requires sweep_dir= (the shared "
                "coordination directory workers attach to)"
            )
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if poll_s <= 0:
            raise ValueError("poll_s must be positive")
        self.sweep_dir = Path(sweep_dir)
        self.lease_ttl_s = lease_ttl_s
        self.poll_s = poll_s
        self.coordinator_executes = coordinator_executes
        self.worker_id = f"coordinator-{os.getpid()}"
        self.broker = DirectoryBroker(self.sweep_dir)
        #: Last observed (worker, pid, created) signature per shard, so
        #: each distinct lease counts exactly one attempt.
        self._observed: Dict[int, Tuple[Any, Any, Any]] = {}

    # -- attempt accounting over disk leases ----------------------------
    def _observe_lease(self, shard_index: int, info: Dict[str, Any]) -> None:
        """Count a newly appeared lease as one attempt."""
        signature = (info.get("worker"), info.get("pid"), info.get("created"))
        if self._observed.get(shard_index) != signature:
            self._observed[shard_index] = signature
            self._attempts[shard_index] = (
                self._attempts.get(shard_index, 0) + 1
            )

    def _lost(self, shard: Any, info: Dict[str, Any]) -> None:
        """Break a dead lease and requeue its shard (bounded)."""
        warnings.warn(
            f"sweep shard {shard.index} lost its worker "
            f"{info.get('worker')!r} (pid {info.get('pid')}); requeueing "
            f"(attempt {self._attempts.get(shard.index, 0)} of "
            f"{self.max_attempts})",
            RuntimeWarning,
            stacklevel=4,
        )
        self.broker.break_lease(shard.index)
        self._observed.pop(shard.index, None)
        lease = ShardLease(
            shard=shard,
            worker=str(info.get("worker")),
            attempt=self._attempts.get(shard.index, 1),
        )
        self.requeue(lease)  # raises WorkerLostError past the budget

    def _raise_point_error(
        self, message: str, point_payload: Optional[Dict[str, Any]]
    ) -> None:
        """Re-raise a worker-published grid-point failure, typed."""
        from ..api.sweep import SweepPoint, SweepPointError

        point = None
        if isinstance(point_payload, dict):
            try:
                point = SweepPoint(
                    experiment=str(point_payload["experiment"]),
                    config=str(point_payload["config"]),
                    seed=int(point_payload["seed"]),
                    params=dict(point_payload.get("params") or {}),
                    engine=str(point_payload["engine"]),
                )
            except Exception:
                point = None  # unknown engine/config in this process
        raise SweepPointError(message, point)

    # -- driver ---------------------------------------------------------
    def run(
        self,
        shards: Sequence[Any],
        runner: ShardRunner,
        finish: ShardFinisher,
        max_workers: int,
    ) -> None:
        """Coordinate the sweep over the shared directory.

        One coordinator per directory: a second concurrent coordinator
        fails fast on the ``coordinator.lock`` PID sentinel
        (:class:`~repro.dist.transport.TransportError`); a dead
        coordinator's lock is reclaimed with a :class:`RuntimeWarning`.
        """
        lock = PidFileLock(
            self.sweep_dir / COORDINATOR_LOCK_FILENAME,
            error=TransportError,
            contended=(
                "sweep directory {path} already has a live coordinator "
                "(pid {holder}); one sweep directory serves one sweep at "
                "a time"
            ),
            stale=(
                "reclaiming stale coordinator lock {path} (holder pid "
                "{holder} is gone)"
            ),
        )
        lock.acquire(stacklevel=3)
        try:
            sweep_id = f"{os.getpid():x}-{time.time_ns():x}"
            self.broker.publish(shards, sweep_id)
            self.submit(shards)
            pending: Dict[int, Any] = {shard.index: shard for shard in shards}
            try:
                while pending:
                    progressed = self._consume(pending, sweep_id, finish)
                    progressed = self._reap(pending) or progressed
                    if pending and self.coordinator_executes:
                        progressed = (
                            self._execute_one(pending, sweep_id, runner, finish)
                            or progressed
                        )
                    if pending and not progressed:
                        time.sleep(self.poll_s)
            finally:
                # Success or failure, tell the workers the sweep is over.
                self.broker.write_stop()
        finally:
            lock.release()

    def _consume(
        self,
        pending: Dict[int, Any],
        sweep_id: str,
        finish: ShardFinisher,
    ) -> bool:
        """Merge every available fragment; True when any was consumed."""
        progressed = False
        for shard_index in sorted(pending):
            status = self.broker.read_result(shard_index, sweep_id)
            if status is None:
                continue
            kind, payload = status
            if kind == "error":
                message, point_payload = payload
                self._raise_point_error(message, point_payload)
            if kind == "damaged":
                warnings.warn(
                    f"discarding bad result fragment for shard "
                    f"{shard_index}: {payload}; the shard will re-run",
                    RuntimeWarning,
                    stacklevel=4,
                )
                self.broker.discard_result(shard_index)
                continue
            shard = pending.pop(shard_index)
            lease = self._leases.pop(shard_index, None) or ShardLease(
                shard=shard,
                worker="remote",
                attempt=self._attempts.get(shard_index, 1),
            )
            if self.complete(lease, payload):
                finish(shard, payload)
            progressed = True
        return progressed

    def _reap(self, pending: Dict[int, Any]) -> bool:
        """Observe live leases, break dead ones; True when any broke."""
        progressed = False
        for shard_index in sorted(pending):
            info = self.broker.lease_info(shard_index)
            if info is None:
                continue
            self._observe_lease(shard_index, info)
            if info.get("worker") == self.worker_id:
                continue  # our own inline lease is reaped by completion
            if self.broker.lease_is_dead(info, self.lease_ttl_s):
                self._lost(pending[shard_index], info)
                progressed = True
        return progressed

    def _execute_one(
        self,
        pending: Dict[int, Any],
        sweep_id: str,
        runner: ShardRunner,
        finish: ShardFinisher,
    ) -> bool:
        """Lease and execute one available shard inline (coordinator)."""
        from ..api.sweep import SweepPointError

        for shard_index in sorted(pending):
            if self.broker.has_result(shard_index):
                continue
            if self.broker.lease_info(shard_index) is not None:
                continue
            if not self.broker.try_lease(shard_index, self.worker_id):
                continue  # a worker won the race; let it run
            shard = pending[shard_index]
            self._attempts[shard_index] = (
                self._attempts.get(shard_index, 0) + 1
            )
            self._observed[shard_index] = (
                self.worker_id,
                os.getpid(),
                None,
            )
            lease = ShardLease(
                shard=shard,
                worker=self.worker_id,
                attempt=self._attempts[shard_index],
            )
            self._leases[shard_index] = lease
            try:
                outcomes = runner(shard)
            except SweepPointError as error:
                point = getattr(error, "point", None)
                self.broker.write_failure(
                    shard_index,
                    str(error),
                    {
                        "experiment": point.experiment,
                        "config": point.config,
                        "seed": point.seed,
                        "params": point.params,
                        "engine": point.engine,
                    }
                    if point is not None
                    else None,
                    self.worker_id,
                    sweep_id,
                )
                raise
            finally:
                self.broker.release_lease(shard_index)
            # Publish for lingering workers' exit checks, then merge
            # directly (complete() makes any duplicate harmless).
            self.broker.write_outcomes(
                shard_index, outcomes, self.worker_id, sweep_id
            )
            pending.pop(shard_index)
            if self.complete(lease, outcomes):
                finish(shard, outcomes)
            return True
        return False


register_transport(
    TransportSpec(
        name="broker",
        title=(
            "shared-directory broker: lease-and-requeue fabric for "
            "'repro worker' fleets"
        ),
        factory=BrokerTransport,
        distributed=True,
    )
)
