"""Shared PID-sentinel exclusive lock (stale-holder reclaim included).

Three subsystems grew the same on-disk mutual-exclusion idiom
independently: the sweep journal (two concurrent sweeps must not
interleave appends into one ``sweep.jsonl``), the packed result store (two
writers must not interleave records into one ``pack.data``) and now the
directory broker's shard leases.  This module is the single shared
implementation:

* the lock is a sidecar file created with ``O_CREAT | O_EXCL`` (atomic on
  every platform the test suite runs on) holding the owner's PID;
* a lock whose recorded PID belongs to a **live** process is contended --
  :meth:`PidFileLock.acquire` raises the caller-supplied exception type
  with the caller-supplied message, so the historical public errors
  (``SweepJournalLockedError``, ``PackedStoreLockedError``) and their
  pinned wordings keep working unchanged;
* a lock whose holder is dead (a killed sweep, a crashed writer) is
  *stale* and is reclaimed automatically with a :class:`RuntimeWarning`,
  so one SIGKILL never wedges a cache directory forever.

The liveness probe (:func:`pid_alive`) is same-host best-effort: PID 0 /
negative PIDs are never alive, ``EPERM`` means "exists, owned by someone
else", anything else unexpected reads as dead.  Cross-host coordination
(the broker) therefore layers a heartbeat timestamp on top of the PID --
see :mod:`repro.dist.broker`.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Optional, Type, Union

__all__ = ["PidFileLockError", "PidFileLock", "pid_alive"]


class PidFileLockError(RuntimeError):
    """Another live process holds the PID-sentinel lock.

    The default contention error; callers with a historical public
    exception type pass it as :class:`PidFileLock` 's ``error`` so their
    callers keep catching what they always caught.
    """


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe of another process on this host.

    ``os.kill(pid, 0)`` performs permission checks without delivering a
    signal: ``ProcessLookupError`` means dead, ``PermissionError`` means
    alive but owned by someone else, anything else unexpected is treated
    as dead (a stale lock must never wedge the caller forever).
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


class PidFileLock:
    """An exclusive on-disk lock: one sentinel file holding the owner PID.

    The generalisation of the locks the sweep journal and the packed
    result store each hand-rolled.  Their acquire/reclaim/release
    semantics -- and exact messages -- are pinned by their original test
    suites, which now run against this implementation: the three message
    templates are caller-supplied ``str.format`` strings taking ``{path}``
    and (where a holder exists) ``{holder}``.

    Args:
        path: the sentinel file location.
        error: exception type raised when a live process holds the lock.
        contended: message template when a live holder is found.
        stale: :class:`RuntimeWarning` template when a dead holder's lock
            is reclaimed.
        exhausted: message template when acquisition keeps losing the
            ``O_EXCL`` race after a reclaim.
    """

    def __init__(
        self,
        path: Union[str, Path],
        error: Type[Exception] = PidFileLockError,
        contended: str = (
            "{path} is locked by a running process (pid {holder})"
        ),
        stale: str = (
            "reclaiming stale lock {path} (holder pid {holder} is gone)"
        ),
        exhausted: str = (
            "could not acquire lock {path}: another process keeps "
            "re-creating it"
        ),
    ) -> None:
        self.path = Path(path)
        self.error = error
        self.contended = contended
        self.stale = stale
        self.exhausted = exhausted
        self._locked = False

    @property
    def locked(self) -> bool:
        """True while this instance holds the lock."""
        return self._locked

    def holder(self) -> Optional[int]:
        """PID recorded in the lock file (``None`` when unreadable)."""
        try:
            return int(self.path.read_text(encoding="utf-8").strip())
        except (OSError, ValueError):
            return None

    def acquire(self, stacklevel: int = 2) -> None:
        """Take the lock (``O_EXCL`` create), reclaiming stale holders.

        If the sentinel already exists and its PID belongs to a live
        process the configured ``error`` is raised; a dead holder's lock
        is reclaimed with a :class:`RuntimeWarning` and acquisition
        retried once.

        Args:
            stacklevel: forwarded to :func:`warnings.warn` for the stale
                reclaim, so the warning points at the caller's caller.

        Raises:
            Exception: the configured ``error`` type, when a live process
                holds the lock (or keeps re-creating it).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):  # one retry after reclaiming a stale lock
            try:
                handle = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                holder = self.holder()
                if holder is not None and pid_alive(holder):
                    raise self.error(
                        self.contended.format(path=self.path, holder=holder)
                    )
                warnings.warn(
                    self.stale.format(path=self.path, holder=holder),
                    RuntimeWarning,
                    stacklevel=stacklevel,
                )
                try:
                    os.unlink(self.path)
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(f"{os.getpid()}\n")
            self._locked = True
            return
        raise self.error(self.exhausted.format(path=self.path))

    def release(self) -> None:
        """Drop the lock taken by :meth:`acquire` (idempotent).

        Releasing a lock this instance does not hold is a no-op -- it
        never unlinks a sentinel some *other* process created.
        """
        if not self._locked:
            return
        self._locked = False
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "PidFileLock":
        """Context-manager support: acquire on entry."""
        self.acquire(stacklevel=3)
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager support: release on exit."""
        self.release()
