"""The :class:`ShardTransport` protocol and the local transport adapters.

A *transport* is the execution layer of the sweep service: it takes the
:class:`~repro.api.sweep.SweepShard` s the planner produced and gets each
of them executed exactly once, wherever the compute happens to live.  The
protocol is a work-queue lifecycle, not a thread pool:

``submit``
    enqueue the shards (each starts with zero attempts);
``lease``
    claim the next available shard for a named worker -- the shard leaves
    the queue and its attempt count increments;
``heartbeat``
    refresh a lease's liveness stamp (distributed transports persist it;
    the in-memory transports just record it);
``complete``
    deliver a shard's outcomes; idempotent per shard, so a worker that
    was wrongly presumed dead and finishes anyway is harmless (results
    are deterministic, duplicates are dropped);
``requeue``
    return a lost shard to the queue.  Bounded: once a shard has burned
    ``max_attempts`` leases it surfaces a typed :class:`WorkerLostError`
    naming the shard instead of retrying forever.

The three historical executor backends are re-implemented here as local
transports pinned byte-identical to the code they replaced:
:class:`SerialTransport` literally drives the lease loop in-process,
:class:`ThreadTransport` / :class:`ProcessTransport` dispatch leased
shards onto a :mod:`concurrent.futures` pool with the exact inline/pool
decision, completion ordering and cancel-on-failure semantics of the old
``run_sweep`` branch.  The first distributed transport (the shared-
directory broker + ``repro worker`` protocol) lives in
:mod:`repro.dist.broker`.

Transports are looked up through a registry mirroring the engine registry
(:mod:`repro.sim.engines`): :func:`register_transport` a
:class:`TransportSpec`, and ``run_sweep(transport=...)`` and the CLI
(including its "did you mean" suggestions) pick it up automatically.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "DEFAULT_TRANSPORT",
    "ShardLease",
    "ShardOutcomes",
    "TransportError",
    "WorkerLostError",
    "TransportSpec",
    "ShardTransport",
    "LocalTransport",
    "SerialTransport",
    "ThreadTransport",
    "ProcessTransport",
    "register_transport",
    "unregister_transport",
    "get_transport",
    "list_transports",
    "transport_names",
]

#: Transport used when none is requested: the conservative in-process
#: thread pool (same default the deprecated ``executor=`` knob had).
DEFAULT_TRANSPORT = "thread"

#: The outcome triples one executed shard produces, in grid order --
#: exactly what :func:`repro.api.sweep.run_shard` returns.
ShardOutcomes = List[Tuple[int, Any, bool]]

#: A callable executing one shard (``run_shard`` with the cache dir bound).
ShardRunner = Callable[[Any], ShardOutcomes]

#: A callable recording one finished shard's outcomes (persist + journal).
ShardFinisher = Callable[[Any, ShardOutcomes], None]


class TransportError(RuntimeError):
    """A transport-level coordination failure (not a grid-point failure).

    Grid points that fail keep raising
    :class:`~repro.api.sweep.SweepPointError`; this type covers the
    fabric itself -- a second coordinator attaching to a sweep directory,
    a worker attaching to a foreign manifest, a shard exceeding its retry
    budget (:class:`WorkerLostError`).
    """


class WorkerLostError(TransportError):
    """A shard's workers kept dying and its retry budget is exhausted.

    Raised by :meth:`ShardTransport.requeue` when a shard has already
    burned ``max_attempts`` leases.  The message names the shard index
    and the attempt count so the failing unit of work is identifiable in
    a multi-host log; the indices of the shard's grid points ride along
    in :attr:`point_indices`.

    Attributes:
        shard_index: the lost shard's index within the plan.
        attempts: leases the shard burned before giving up.
        point_indices: grid indices of the shard's points.
    """

    def __init__(
        self,
        message: str,
        shard_index: int,
        attempts: int,
        point_indices: Tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.attempts = attempts
        self.point_indices = point_indices


@dataclass
class ShardLease:
    """One worker's claim on one shard.

    Attributes:
        shard: the leased :class:`~repro.api.sweep.SweepShard`.
        worker: identifier of the claiming worker.
        attempt: 1-based lease count of this shard (per-shard attempts
            are how the retry budget is enforced).
        heartbeat_at: monotonic timestamp of the most recent
            :meth:`ShardTransport.heartbeat` (lease creation counts).
    """

    shard: Any
    worker: str
    attempt: int
    heartbeat_at: float = field(default_factory=time.monotonic)


class ShardTransport:
    """Base class / protocol of every sweep execution backend.

    Subclasses implement :meth:`run` -- the coordinator-side driver that
    pushes every submitted shard through the lease lifecycle -- on top of
    the in-memory queue/lease/attempt bookkeeping provided here.  The
    bookkeeping is the *reference semantics* of the protocol: distributed
    transports mirror it onto durable state (lease sentinel files), local
    transports use it directly.

    Args:
        max_attempts: per-shard lease budget; the attempt that would
            exceed it raises :class:`WorkerLostError` from
            :meth:`requeue` instead of requeueing.
    """

    #: Registry name (subclasses override).
    name = "abstract"

    #: True when shards execute outside this process's address space (the
    #: sweep service then keeps workers cache-less and persists results
    #: coordinator-side, exactly like the packed backend's single-writer
    #: rule).
    distributed = False

    def __init__(self, max_attempts: int = 3) -> None:
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self.max_attempts = max_attempts
        self._queue: Deque[Any] = deque()
        self._leases: Dict[int, ShardLease] = {}
        self._attempts: Dict[int, int] = {}
        self._completed: Dict[int, ShardOutcomes] = {}

    # -- lifecycle ------------------------------------------------------
    def submit(self, shards: Sequence[Any]) -> None:
        """Enqueue shards for execution (each starts at zero attempts)."""
        for shard in shards:
            self._attempts.setdefault(shard.index, 0)
            self._queue.append(shard)

    def lease(self, worker: str = "local") -> Optional[ShardLease]:
        """Claim the next queued shard for ``worker`` (``None`` if empty).

        The shard's attempt count increments; the lease must end in
        :meth:`complete` or :meth:`requeue`.
        """
        if not self._queue:
            return None
        shard = self._queue.popleft()
        attempt = self._attempts.get(shard.index, 0) + 1
        self._attempts[shard.index] = attempt
        lease = ShardLease(shard=shard, worker=worker, attempt=attempt)
        self._leases[shard.index] = lease
        return lease

    def heartbeat(self, lease: ShardLease) -> None:
        """Refresh a lease's liveness stamp."""
        lease.heartbeat_at = time.monotonic()

    def complete(self, lease: ShardLease, outcomes: ShardOutcomes) -> bool:
        """Deliver a leased shard's outcomes.

        Idempotent per shard: the first completion wins and returns True;
        a duplicate (a worker that outlived its expired lease) returns
        False and is otherwise ignored -- shard execution is
        deterministic, so the dropped duplicate carried identical bytes.
        """
        self._leases.pop(lease.shard.index, None)
        if lease.shard.index in self._completed:
            return False
        self._completed[lease.shard.index] = outcomes
        return True

    def requeue(self, lease: ShardLease) -> None:
        """Return a lost shard to the queue (bounded by the retry budget).

        Raises:
            WorkerLostError: the shard already burned ``max_attempts``
                leases; the error names the shard.
        """
        self._leases.pop(lease.shard.index, None)
        if lease.shard.index in self._completed:
            return  # completed by someone else meanwhile; nothing to redo
        attempts = self._attempts.get(lease.shard.index, lease.attempt)
        if attempts >= self.max_attempts:
            raise WorkerLostError(
                f"shard {lease.shard.index} was lost {attempts} times "
                f"(last worker {lease.worker!r}); giving up after "
                f"max_attempts={self.max_attempts}",
                shard_index=lease.shard.index,
                attempts=attempts,
                point_indices=tuple(lease.shard.indices),
            )
        self._queue.append(lease.shard)

    def attempts(self, shard_index: int) -> int:
        """Leases the shard has burned so far (0 before the first)."""
        return self._attempts.get(shard_index, 0)

    def outstanding(self) -> int:
        """Shards submitted but not yet completed."""
        return len(self._queue) + len(self._leases)

    # -- driver ---------------------------------------------------------
    def run(
        self,
        shards: Sequence[Any],
        runner: ShardRunner,
        finish: ShardFinisher,
        max_workers: int,
    ) -> None:
        """Execute every shard and hand each outcome batch to ``finish``.

        Args:
            shards: the planned shards to execute.
            runner: executes one shard (``run_shard`` with the worker
                cache directory bound by the sweep service).
            finish: coordinator-side completion hook (fills the outcome
                table, persists to cache/journal); called exactly once
                per shard, in completion order.
            max_workers: the worker budget the sweep resolved.
        """
        raise NotImplementedError


class LocalTransport(ShardTransport):
    """Shared base of the in-process transports (serial/thread/process)."""

    def _run_inline(
        self, runner: ShardRunner, finish: ShardFinisher
    ) -> None:
        """Drive the lease lifecycle literally, one shard at a time."""
        while True:
            lease = self.lease()
            if lease is None:
                return
            outcomes = runner(lease.shard)
            if self.complete(lease, outcomes):
                finish(lease.shard, outcomes)


class SerialTransport(LocalTransport):
    """In-process, one-shard-at-a-time execution (debugging reference)."""

    name = "serial"

    def run(
        self,
        shards: Sequence[Any],
        runner: ShardRunner,
        finish: ShardFinisher,
        max_workers: int,
    ) -> None:
        """Execute every shard inline, in plan order."""
        self.submit(shards)
        self._run_inline(runner, finish)


class _PoolTransport(LocalTransport):
    """Shared driver of the thread/process pool transports.

    Byte-identical to the historical ``run_sweep`` executor branch: one
    shard (or a single-worker thread pool) runs inline; otherwise every
    shard is submitted up front, completions are consumed in
    :func:`~concurrent.futures.as_completed` order, and a failing shard
    (or Ctrl-C) cancels everything not yet started.
    """

    #: Pool class (subclasses set Thread/Process).
    pool_type: Any = None

    #: Whether a 1-worker pool collapses to inline execution (threads do
    #: -- a single worker thread buys nothing; a single worker *process*
    #: still isolates the GIL, so it keeps the pool).
    inline_single_worker = False

    def run(
        self,
        shards: Sequence[Any],
        runner: ShardRunner,
        finish: ShardFinisher,
        max_workers: int,
    ) -> None:
        """Dispatch the shards over the pool (inline when it buys nothing)."""
        self.submit(shards)
        if len(shards) <= 1 or (self.inline_single_worker and max_workers == 1):
            self._run_inline(runner, finish)
            return
        pool = self.pool_type(max_workers=max_workers)
        try:
            futures = {}
            while True:
                lease = self.lease(worker=f"{self.name}-pool")
                if lease is None:
                    break
                futures[pool.submit(runner, lease.shard)] = lease
            for future in as_completed(futures):
                lease = futures[future]
                outcomes = future.result()
                if self.complete(lease, outcomes):
                    finish(lease.shard, outcomes)
        finally:
            # A failing shard (or Ctrl-C) must not let the rest of the
            # grid drain pointlessly: drop everything not yet started.
            pool.shutdown(wait=True, cancel_futures=True)


class ThreadTransport(_PoolTransport):
    """Thread-pool transport: warm-cache / I/O-bound re-runs."""

    name = "thread"
    pool_type = ThreadPoolExecutor
    inline_single_worker = True


class ProcessTransport(_PoolTransport):
    """Process-pool transport: cold CPU-bound grids (bypasses the GIL)."""

    name = "process"
    pool_type = ProcessPoolExecutor
    inline_single_worker = False


# ---------------------------------------------------------------------------
# Registry (mirrors repro.sim.engines)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TransportSpec:
    """One registered transport backend.

    Attributes:
        name: registry key (the ``transport=`` / ``--transport`` value).
        title: one-line human description (CLI listings, docs).
        factory: builds a fresh :class:`ShardTransport` per sweep; called
            with the transport options ``run_sweep`` collected (e.g. the
            broker's ``sweep_dir`` / ``lease_ttl_s``).
        distributed: shards execute outside the coordinator process (the
            sweep keeps workers cache-less and persists coordinator-side).
    """

    name: str
    title: str
    factory: Callable[..., ShardTransport]
    distributed: bool = False

    def create(self, **options: Any) -> ShardTransport:
        """Build a transport instance, naming the transport on bad knobs.

        Raises:
            ValueError: the factory rejected ``options`` (unknown or
                invalid knob for this transport).
        """
        try:
            return self.factory(**options)
        except TypeError as error:
            raise ValueError(
                f"invalid options for transport {self.name!r}: {error}"
            ) from error


_REGISTRY: Dict[str, TransportSpec] = {}


def register_transport(spec: TransportSpec, replace: bool = False) -> TransportSpec:
    """Register a transport backend.

    Args:
        spec: the transport descriptor.
        replace: allow overwriting an existing registration.

    Raises:
        ValueError: the name is taken and ``replace`` is False.
    """
    if not replace and spec.name in _REGISTRY:
        raise ValueError(
            f"transport {spec.name!r} is already registered; pass "
            "replace=True to overwrite"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_transport(name: str) -> None:
    """Remove a registered transport (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def get_transport(name: str) -> TransportSpec:
    """Look a transport up by name.

    Raises:
        KeyError: unknown transport; the message lists the registered
            names (the CLI adds difflib suggestions on top).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown transport {name!r}; registered transports: "
            f"{sorted(_REGISTRY)}"
        ) from None


def list_transports() -> List[TransportSpec]:
    """Every registered transport, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def transport_names() -> Tuple[str, ...]:
    """The registered transport names, sorted."""
    return tuple(sorted(_REGISTRY))


register_transport(
    TransportSpec(
        name="serial",
        title="in-process, one shard at a time (debugging reference)",
        factory=SerialTransport,
    )
)
register_transport(
    TransportSpec(
        name="thread",
        title="in-process thread pool (warm-cache / I/O-bound re-runs)",
        factory=ThreadTransport,
    )
)
register_transport(
    TransportSpec(
        name="process",
        title="process pool (cold CPU-bound grids; bypasses the GIL)",
        factory=ProcessTransport,
    )
)
