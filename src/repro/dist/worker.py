"""The ``repro worker`` protocol: attach, lease, execute, stream back.

A worker is stateless and disposable: it attaches to a sweep directory
published by a :class:`~repro.dist.broker.BrokerTransport` coordinator
(``repro sweep --transport broker --sweep-dir ...``), then loops -- claim
an unleased, unfinished shard (atomic ``O_EXCL`` lease create), execute
it through the very same :func:`repro.api.sweep.run_shard` every local
transport uses, publish the outcomes as an atomically-renamed journal
fragment, release the lease, repeat.  A background thread refreshes the
lease's heartbeat stamp while a shard runs, so a *busy* worker is never
mistaken for a dead one by a cross-host coordinator.

Workers run cache-less (``run_shard(shard, None)``): the coordinator owns
the result cache and persists merged outcomes itself, which keeps the
packed store's single-writer rule intact and the sweep's cache-hit
accounting byte-identical to a serial run.  Kill a worker -- even
``SIGKILL`` mid-shard -- and nothing is lost: its lease stops
heartbeating, the coordinator breaks it, and the shard is requeued for
someone else (bounded by the coordinator's ``max_attempts``).

Entry points: ``repro worker <sweep_dir>`` on the command line, or
:func:`run_worker` programmatically.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Union

from .broker import DirectoryBroker
from .transport import ShardOutcomes

__all__ = ["WorkerConfig", "run_worker"]


def _default_worker_id() -> str:
    """Host- and PID-qualified identifier for lease sentinels and logs."""
    return f"worker-{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerConfig:
    """Tuning knobs of one ``repro worker`` process.

    Attributes:
        sweep_dir: the shared sweep directory to attach to.
        worker_id: identifier recorded in leases and result fragments
            (defaults to ``worker-<host>-<pid>``).
        poll_s: idle polling interval while no shard is claimable.
        heartbeat_s: lease heartbeat period while executing a shard; keep
            it well under the coordinator's ``lease_ttl_s`` (the default
            2 s vs. 15 s leaves seven missed beats of slack).
        attach_timeout_s: how long to wait for a manifest to appear, so
            workers may be started *before* the coordinator.
        max_shards: stop after executing this many shards (``None`` runs
            until the sweep completes); useful for tests and for draining
            a host gracefully.
        on_shard: optional callback ``(shard, outcomes)`` after each
            published shard (progress reporting).
    """

    sweep_dir: Union[str, Path]
    worker_id: str = field(default_factory=_default_worker_id)
    poll_s: float = 0.05
    heartbeat_s: float = 2.0
    attach_timeout_s: float = 30.0
    max_shards: Optional[int] = None
    on_shard: Optional[Any] = None


class _Heartbeat:
    """Background lease-refresher running while a shard executes."""

    def __init__(
        self, broker: DirectoryBroker, shard_index: int, config: WorkerConfig
    ) -> None:
        self._broker = broker
        self._shard_index = shard_index
        self._config = config
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._beat,
            name=f"repro-worker-heartbeat-{shard_index}",
            daemon=True,
        )

    def _beat(self) -> None:
        while not self._stop.wait(self._config.heartbeat_s):
            self._broker.heartbeat_lease(
                self._shard_index, self._config.worker_id
            )

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=self._config.heartbeat_s + 1.0)


def _claim_next(
    broker: DirectoryBroker, shard_ids: List[int], worker_id: str
) -> Optional[int]:
    """Claim the first shard with no result and no lease (``None`` if none)."""
    for shard_index in shard_ids:
        if broker.has_result(shard_index):
            continue
        if broker.lease_info(shard_index) is not None:
            continue
        if broker.try_lease(shard_index, worker_id):
            return shard_index
    return None


def _sweep_finished(broker: DirectoryBroker, shard_ids: List[int]) -> bool:
    """True when every shard already has a published result fragment."""
    return all(broker.has_result(shard_index) for shard_index in shard_ids)


def run_worker(config: WorkerConfig) -> int:
    """Attach to a sweep directory and execute shards until it completes.

    The worker loop of the ``repro worker`` command: wait for the
    manifest, then lease / execute / publish until the coordinator drops
    the stop sentinel, every shard has a result, or ``max_shards`` is
    reached.  Shards run cache-less; results stream back as journal
    fragments the coordinator merges deterministically.

    Args:
        config: the worker's tuning knobs (see :class:`WorkerConfig`).

    Returns:
        The number of shards this worker executed and published.

    Raises:
        SweepManifestError: no compatible manifest appeared within
            ``attach_timeout_s``, or the directory contradicts it.
        SweepPointError: a grid point failed deterministically; the
            failure is also published as an error fragment so the
            coordinator fails the sweep with the same typed error
            instead of burning the shard's retry budget.
    """
    from ..api.sweep import SweepPointError, run_shard

    broker = DirectoryBroker(config.sweep_dir)
    manifest = broker.read_manifest(wait_s=config.attach_timeout_s)
    sweep_id = str(manifest["sweep_id"])
    shard_ids = [int(index) for index in manifest.get("shards", [])]
    executed = 0
    while True:
        if broker.stopped():
            break
        if config.max_shards is not None and executed >= config.max_shards:
            break
        shard_index = _claim_next(broker, shard_ids, config.worker_id)
        if shard_index is None:
            if _sweep_finished(broker, shard_ids):
                break
            time.sleep(config.poll_s)
            continue
        try:
            shard = broker.load_task(shard_index)
            with _Heartbeat(broker, shard_index, config):
                try:
                    outcomes: ShardOutcomes = run_shard(shard, None)
                except SweepPointError as error:
                    point = getattr(error, "point", None)
                    broker.write_failure(
                        shard_index,
                        str(error),
                        {
                            "experiment": point.experiment,
                            "config": point.config,
                            "seed": point.seed,
                            "params": point.params,
                            "engine": point.engine,
                        }
                        if point is not None
                        else None,
                        config.worker_id,
                        sweep_id,
                    )
                    raise
            broker.write_outcomes(
                shard_index, outcomes, config.worker_id, sweep_id
            )
        finally:
            broker.release_lease(shard_index)
        executed += 1
        if config.on_shard is not None:
            config.on_shard(shard, outcomes)
    return executed
