"""Experiment drivers: one module per table / figure of the paper."""

from .fig2_sparsity import (
    InputSparsityRow,
    WeightSparsityRow,
    input_sparsity_table,
    weight_sparsity_table,
)
from .fig7_speedup_energy import SparsityBenefitRow, speedup_energy_table
from .table1_related import SparsitySupportRow, related_work_table
from .table2_accuracy import AccuracyRow, accuracy_table, evaluate_model_accuracy
from .table3_comparison import ComparisonColumn, comparison_table, ours_column
from .table4_area import AreaRow, area_table

__all__ = [
    "WeightSparsityRow",
    "InputSparsityRow",
    "weight_sparsity_table",
    "input_sparsity_table",
    "SparsityBenefitRow",
    "speedup_energy_table",
    "SparsitySupportRow",
    "related_work_table",
    "AccuracyRow",
    "accuracy_table",
    "evaluate_model_accuracy",
    "ComparisonColumn",
    "comparison_table",
    "ours_column",
    "AreaRow",
    "area_table",
]
