"""Fig. 2 — bit-level sparsity in weights and input features.

* Fig. 2(a): zero-bit ratio of INT8 weights under three encodings (plain
  binary, CSD, CSD+FTA) for each of the five evaluation networks.
* Fig. 2(b): probability that an entire bit column of an input-feature group
  (group sizes 1, 8 and 16) is zero.

Weights and activations are synthesised per the substitution documented in
DESIGN.md; the encodings and group analyses run the real library code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.quantization import quantize_weights
from ..core.sparsity import analyze_input_sparsity, analyze_weight_sparsity
from ..workloads.models import list_workloads, get_workload
from ..workloads.profiles import synthesize_activations, synthesize_layer_weights

__all__ = [
    "WeightSparsityRow",
    "InputSparsityRow",
    "weight_sparsity_table",
    "input_sparsity_table",
    "format_weight_sparsity",
    "format_input_sparsity",
]

#: Layers sampled per model (keeps the figure regeneration fast while still
#: averaging over early/middle/late layers).
MAX_LAYERS_SAMPLED = 6


@dataclass(frozen=True)
class WeightSparsityRow:
    """One bar group of Fig. 2(a)."""

    model: str
    binary_zero_ratio: float
    csd_zero_ratio: float
    fta_zero_ratio: float


@dataclass(frozen=True)
class InputSparsityRow:
    """One bar group of Fig. 2(b)."""

    model: str
    zero_column_ratio: Dict[int, float]


def _sampled_layers(name: str) -> List:
    workload = get_workload(name)
    layers = list(workload.layers)
    if len(layers) <= MAX_LAYERS_SAMPLED:
        return layers
    indices = np.linspace(0, len(layers) - 1, MAX_LAYERS_SAMPLED).astype(int)
    return [layers[i] for i in indices]


def weight_sparsity_table(
    models: Sequence[str] = (), seed: int = 0
) -> List[WeightSparsityRow]:
    """Compute Fig. 2(a): per-model zero-bit ratios of the three encodings."""
    rows = []
    for name in models or list_workloads():
        workload = get_workload(name)
        quantized_layers = []
        for layer in _sampled_layers(name):
            float_weights = synthesize_layer_weights(layer, workload.redundancy, seed)
            int_weights, _ = quantize_weights(float_weights, per_channel=True)
            quantized_layers.append(int_weights)
        report = analyze_weight_sparsity(quantized_layers)
        rows.append(
            WeightSparsityRow(
                model=name,
                binary_zero_ratio=report.binary,
                csd_zero_ratio=report.csd,
                fta_zero_ratio=report.fta,
            )
        )
    return rows


def input_sparsity_table(
    models: Sequence[str] = (),
    group_sizes: Tuple[int, ...] = (1, 8, 16),
    seed: int = 0,
) -> List[InputSparsityRow]:
    """Compute Fig. 2(b): per-model zero bit-column ratios by group size."""
    rows = []
    for name in models or list_workloads():
        workload = get_workload(name)
        activations = np.concatenate(
            [
                synthesize_activations(layer, workload.activation_density, seed)
                for layer in _sampled_layers(name)
            ]
        )
        rows.append(
            InputSparsityRow(
                model=name,
                zero_column_ratio=analyze_input_sparsity(activations, group_sizes),
            )
        )
    return rows


def format_weight_sparsity(rows: Sequence[WeightSparsityRow]) -> str:
    """Render Fig. 2(a) as an aligned text table."""
    lines = [f"{'Model':<16}{'Ori_Zero':>10}{'CSD_Zero':>10}{'Ours':>10}"]
    for row in rows:
        lines.append(
            f"{row.model:<16}{row.binary_zero_ratio:>9.1%}"
            f"{row.csd_zero_ratio:>9.1%}{row.fta_zero_ratio:>9.1%}"
        )
    return "\n".join(lines)


def format_input_sparsity(rows: Sequence[InputSparsityRow]) -> str:
    """Render Fig. 2(b) as an aligned text table."""
    if not rows:
        return ""
    group_sizes = sorted(rows[0].zero_column_ratio)
    header = f"{'Model':<16}" + "".join(f"{'group ' + str(g):>12}" for g in group_sizes)
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.model:<16}"
            + "".join(f"{row.zero_column_ratio[g]:>11.1%}" for g in group_sizes)
        )
    return "\n".join(lines)
