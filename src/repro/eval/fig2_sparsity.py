"""Fig. 2 — bit-level sparsity in weights and input features.

* Fig. 2(a): zero-bit ratio of INT8 weights under three encodings (plain
  binary, CSD, CSD+FTA) for each of the five evaluation networks.
* Fig. 2(b): probability that an entire bit column of an input-feature group
  (group sizes 1, 8 and 16) is zero.

Weights and activations are synthesised per the substitution documented in
DESIGN.md; the encodings and group analyses run the real library code.

This module is a thin backwards-compatible wrapper: the computation lives on
:class:`repro.api.Experiment` (experiment ids ``"fig2a"`` / ``"fig2b"``) and
the row records / formatters in :mod:`repro.api.results` /
:mod:`repro.api.formatting`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..api.experiment import MAX_LAYERS_SAMPLED, Experiment
from ..api.formatting import format_input_sparsity, format_weight_sparsity
from ..api.results import InputSparsityRow, WeightSparsityRow

__all__ = [
    "WeightSparsityRow",
    "InputSparsityRow",
    "weight_sparsity_table",
    "input_sparsity_table",
    "format_weight_sparsity",
    "format_input_sparsity",
    "MAX_LAYERS_SAMPLED",
]


def weight_sparsity_table(
    models: Sequence[str] = (), seed: int = 0
) -> List[WeightSparsityRow]:
    """Compute Fig. 2(a): per-model zero-bit ratios of the three encodings."""
    return Experiment(seed=seed).weight_sparsity(models or None)


def input_sparsity_table(
    models: Sequence[str] = (),
    group_sizes: Tuple[int, ...] = (1, 8, 16),
    seed: int = 0,
) -> List[InputSparsityRow]:
    """Compute Fig. 2(b): per-model zero bit-column ratios by group size."""
    return Experiment(seed=seed).input_sparsity(models or None, group_sizes=group_sizes)
