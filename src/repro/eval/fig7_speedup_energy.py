"""Fig. 7 — speedup and energy saving over the dense PIM baseline.

For every evaluation network the cycle model runs the four configurations
(base, input-sparsity-only, weight-sparsity-only, hybrid) and reports the
speedup (Fig. 7(a) is plotted as energy saving and 7(b) as speedup in the
paper; both series are produced here) relative to the dense baseline.

This module is a thin backwards-compatible wrapper: the computation lives on
:class:`repro.api.Experiment` (experiment id ``"fig7"``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api.experiment import Experiment
from ..api.formatting import format_speedup_energy as format_table
from ..api.results import SparsityBenefitRow
from ..arch.config import DBPIMConfig

__all__ = ["SparsityBenefitRow", "speedup_energy_table", "format_table"]


def speedup_energy_table(
    models: Sequence[str] = (),
    config: Optional[DBPIMConfig] = None,
    seed: int = 0,
) -> List[SparsityBenefitRow]:
    """Run the Fig. 7 experiment for a list of models."""
    return Experiment(config=config, seed=seed).speedup_energy(models or None)
