"""Fig. 7 — speedup and energy saving over the dense PIM baseline.

For every evaluation network the cycle model runs the four configurations
(base, input-sparsity-only, weight-sparsity-only, hybrid) and reports the
speedup (Fig. 7(a) is plotted as energy saving and 7(b) as speedup in the
paper; both series are produced here) relative to the dense baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..arch.config import DBPIMConfig
from ..sim.cycle_model import CycleModel
from ..workloads.models import list_workloads, get_workload
from ..workloads.profiles import profile_model

__all__ = ["SparsityBenefitRow", "speedup_energy_table", "format_table"]


@dataclass(frozen=True)
class SparsityBenefitRow:
    """Speedups and energy savings of one model (one bar group of Fig. 7)."""

    model: str
    speedup: Dict[str, float]
    energy_saving: Dict[str, float]
    utilization: Dict[str, float]


def speedup_energy_table(
    models: Sequence[str] = (),
    config: Optional[DBPIMConfig] = None,
    seed: int = 0,
) -> List[SparsityBenefitRow]:
    """Run the Fig. 7 experiment for a list of models."""
    cycle_model = CycleModel(config)
    rows = []
    for name in models or list_workloads():
        profile = profile_model(get_workload(name), seed=seed)
        runs = cycle_model.run_all_variants(profile)
        base = runs["base"]
        speedup = {
            variant: cycle_model.speedup(base, runs[variant])
            for variant in ("input", "weight", "hybrid")
        }
        saving = {
            variant: cycle_model.energy_saving(base, runs[variant])
            for variant in ("input", "weight", "hybrid")
        }
        utilization = {
            variant: runs[variant].actual_utilization for variant in runs
        }
        rows.append(
            SparsityBenefitRow(
                model=name,
                speedup=speedup,
                energy_saving=saving,
                utilization=utilization,
            )
        )
    return rows


def format_table(rows: Sequence[SparsityBenefitRow]) -> str:
    """Render Fig. 7 as aligned text (speedup / energy-saving per variant)."""
    header = (
        f"{'Model':<16}{'in x':>8}{'wgt x':>8}{'hyb x':>8}"
        f"{'in sav':>9}{'wgt sav':>9}{'hyb sav':>9}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.model:<16}"
            f"{row.speedup['input']:>7.2f}{row.speedup['weight']:>8.2f}"
            f"{row.speedup['hybrid']:>8.2f}"
            f"{row.energy_saving['input']:>8.1%}{row.energy_saving['weight']:>8.1%}"
            f"{row.energy_saving['hybrid']:>8.1%}"
        )
    return "\n".join(lines)
