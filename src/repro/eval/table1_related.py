"""Table 1 — sparsity-exploitation comparison among SRAM-PIM designs.

Table 1 of the paper is a qualitative feature matrix.  The prior-work rows
are literature facts reproduced as static records; the "Ours" row is derived
from the live configuration so the table stays truthful if the framework's
feature flags change.

This module is a thin backwards-compatible wrapper: the computation lives on
:class:`repro.api.Experiment` (experiment id ``"table1"``) and the literature
records in :data:`repro.api.results.PRIOR_WORK_ROWS`.
"""

from __future__ import annotations

from typing import List, Optional

from ..api.experiment import Experiment
from ..api.formatting import format_related_work as format_table
from ..api.results import PRIOR_WORK_ROWS, SparsitySupportRow
from ..arch.config import DBPIMConfig

__all__ = [
    "SparsitySupportRow",
    "PRIOR_WORK_ROWS",
    "ours_row",
    "related_work_table",
    "format_table",
]


def ours_row(config: Optional[DBPIMConfig] = None) -> SparsitySupportRow:
    """Derive the "Ours" column from the live configuration."""
    return Experiment(config=config).related_work_ours()


def related_work_table(
    config: Optional[DBPIMConfig] = None,
) -> List[SparsitySupportRow]:
    """The full Table 1: prior works plus the derived "Ours" row."""
    return Experiment(config=config).related_work()
