"""Table 1 — sparsity-exploitation comparison among SRAM-PIM designs.

Table 1 of the paper is a qualitative feature matrix.  The prior-work rows
are literature facts reproduced as static records; the "Ours" row is derived
from the live configuration so the table stays truthful if the framework's
feature flags change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..arch.config import DBPIMConfig

__all__ = ["SparsitySupportRow", "related_work_table", "format_table"]


@dataclass(frozen=True)
class SparsitySupportRow:
    """One column of Table 1 (transposed to a row record here)."""

    design: str
    sparsity_type: str  # "value" or "bit"
    weight_or_input: str  # "W", "I" or "W+I"
    digital: bool
    unstructured: bool
    ineffectual_mac_removed: str


#: Literature rows of Table 1.
PRIOR_WORK_ROWS = (
    SparsitySupportRow("Yue et al. [12]", "value", "W", False, False, "Zero W+V"),
    SparsitySupportRow("SDP [11]", "value", "W", True, False, "Zero W+V"),
    SparsitySupportRow("Liu et al. [13]", "value", "W", True, True, "Zero W+V"),
    SparsitySupportRow("Tu et al. [14]", "bit", "I", True, True, "Zero I+B"),
    SparsitySupportRow("TT@CIM [15]", "bit", "W", True, True, "Zero W+B"),
)


def ours_row(config: Optional[DBPIMConfig] = None) -> SparsitySupportRow:
    """Derive the "Ours" column from the live configuration."""
    config = config or DBPIMConfig()
    targets = []
    removed = []
    if config.weight_sparsity:
        targets.append("W")
        removed.append("Zero W+B")
    if config.input_sparsity:
        targets.append("I")
        removed.append("Zero I+B")
    return SparsitySupportRow(
        design="DB-PIM (Ours)",
        sparsity_type="bit" if config.weight_sparsity or config.input_sparsity else "none",
        weight_or_input="+".join(targets) if targets else "-",
        digital=True,
        unstructured=True,
        ineffectual_mac_removed=" and ".join(removed) if removed else "-",
    )


def related_work_table(
    config: Optional[DBPIMConfig] = None,
) -> List[SparsitySupportRow]:
    """The full Table 1: prior works plus the derived "Ours" row."""
    return list(PRIOR_WORK_ROWS) + [ours_row(config)]


def format_table(rows: Sequence[SparsitySupportRow]) -> str:
    """Render Table 1 as aligned text."""
    header = (
        f"{'Design':<18}{'Type':>7}{'W/I':>6}{'D/A':>5}{'U/S':>5}"
        f"  {'Ineffectual MAC removed'}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.design:<18}{row.sparsity_type:>7}{row.weight_or_input:>6}"
            f"{'D' if row.digital else 'A':>5}{'U' if row.unstructured else 'S':>5}"
            f"  {row.ineffectual_mac_removed}"
        )
    return "\n".join(lines)
