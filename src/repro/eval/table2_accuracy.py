"""Table 2 — Top-1 accuracy of INT8 models before and after FTA.

The paper fine-tunes pre-trained CIFAR-100 checkpoints with FTA-aware QAT
and reports a <1% top-1 drop.  This reproduction trains the mini versions of
the same five topologies on the synthetic dataset (see DESIGN.md for the
substitution), optionally runs a short FTA-aware QAT fine-tune, then
compares the accuracy of the plain INT8 model against the FTA-approximated
INT8 model produced by the identical quantization pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.fta import FTAConfig
from ..nn.data import SyntheticImageDataset
from ..nn.models import build_model
from ..nn.qat import apply_weight_override, quantize_model, restore_weights
from ..nn.training import Trainer

__all__ = ["AccuracyRow", "evaluate_model_accuracy", "accuracy_table", "format_table"]

#: Paper model names in Table 2 order.
PAPER_MODEL_ORDER = ("alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0")


@dataclass(frozen=True)
class AccuracyRow:
    """One row of Table 2."""

    model: str
    float_accuracy: float
    int8_accuracy: float
    fta_accuracy: float

    @property
    def accuracy_drop(self) -> float:
        """Drop of the FTA model relative to the plain INT8 model."""
        return self.int8_accuracy - self.fta_accuracy


def evaluate_model_accuracy(
    name: str,
    dataset: Optional[SyntheticImageDataset] = None,
    epochs: int = 10,
    qat_epochs: int = 2,
    fta_config: Optional[FTAConfig] = None,
    seed: int = 0,
) -> AccuracyRow:
    """Train one mini model and measure float / INT8 / FTA accuracy.

    Args:
        name: paper model name (``"alexnet"`` ... ``"efficientnetb0"``).
        dataset: synthetic dataset; generated with default sizes if omitted.
        epochs: float pre-training epochs.
        qat_epochs: FTA-aware QAT fine-tuning epochs (0 disables QAT).
        fta_config: FTA configuration shared by QAT and the final transform.
        seed: controls dataset generation and weight initialisation.
    """
    dataset = dataset or SyntheticImageDataset.generate(
        num_classes=8, samples_per_class=30, test_samples_per_class=10, seed=seed
    )
    model = build_model(name, num_classes=dataset.num_classes, seed=seed)
    trainer = Trainer(model, dataset, batch_size=32, seed=seed)
    trainer.train(epochs=epochs)
    if qat_epochs > 0:
        trainer.fine_tune_with_qat(
            epochs=qat_epochs, apply_fta=True, fta_config=fta_config, learning_rate=0.01
        )
    float_accuracy = trainer.evaluate()

    records = quantize_model(model, fta_config=fta_config)
    apply_weight_override(records, use_fta=False)
    int8_accuracy = trainer.evaluate()
    restore_weights(records)
    apply_weight_override(records, use_fta=True)
    fta_accuracy = trainer.evaluate()
    restore_weights(records)
    return AccuracyRow(
        model=name,
        float_accuracy=float_accuracy,
        int8_accuracy=int8_accuracy,
        fta_accuracy=fta_accuracy,
    )


def accuracy_table(
    models: Sequence[str] = PAPER_MODEL_ORDER,
    epochs: int = 10,
    qat_epochs: int = 2,
    seed: int = 0,
) -> List[AccuracyRow]:
    """Table 2 for a list of models (shared dataset across models)."""
    dataset = SyntheticImageDataset.generate(
        num_classes=8, samples_per_class=30, test_samples_per_class=10, seed=seed
    )
    return [
        evaluate_model_accuracy(
            name, dataset=dataset, epochs=epochs, qat_epochs=qat_epochs, seed=seed
        )
        for name in models
    ]


def format_table(rows: Sequence[AccuracyRow]) -> str:
    """Render Table 2 as aligned text."""
    header = (
        f"{'Model':<16}{'W/I':>8}{'Ori. Accu.':>12}{'FTA Accu.':>12}{'Accu. Drop':>12}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.model:<16}{'8b/8b':>8}{row.int8_accuracy:>11.2%}"
            f"{row.fta_accuracy:>11.2%}{row.accuracy_drop:>11.2%}"
        )
    return "\n".join(lines)
