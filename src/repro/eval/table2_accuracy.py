"""Table 2 — Top-1 accuracy of INT8 models before and after FTA.

The paper fine-tunes pre-trained CIFAR-100 checkpoints with FTA-aware QAT
and reports a <1% top-1 drop.  This reproduction trains the mini versions of
the same five topologies on the synthetic dataset (see DESIGN.md for the
substitution), optionally runs a short FTA-aware QAT fine-tune, then
compares the accuracy of the plain INT8 model against the FTA-approximated
INT8 model produced by the identical quantization pipeline.

This module is a thin backwards-compatible wrapper: the computation lives on
:class:`repro.api.Experiment` (experiment id ``"table2"``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api.experiment import Experiment
from ..api.formatting import format_accuracy as format_table
from ..api.results import PAPER_MODEL_ORDER, AccuracyRow
from ..core.fta import FTAConfig
from ..nn.data import SyntheticImageDataset

__all__ = [
    "AccuracyRow",
    "PAPER_MODEL_ORDER",
    "evaluate_model_accuracy",
    "accuracy_table",
    "format_table",
]


def evaluate_model_accuracy(
    name: str,
    dataset: Optional[SyntheticImageDataset] = None,
    epochs: int = 10,
    qat_epochs: int = 2,
    fta_config: Optional[FTAConfig] = None,
    seed: int = 0,
) -> AccuracyRow:
    """Train one mini model and measure float / INT8 / FTA accuracy.

    Args:
        name: paper model name (``"alexnet"`` ... ``"efficientnetb0"``).
        dataset: synthetic dataset; generated with default sizes if omitted.
        epochs: float pre-training epochs.
        qat_epochs: FTA-aware QAT fine-tuning epochs (0 disables QAT).
        fta_config: FTA configuration shared by QAT and the final transform.
        seed: controls dataset generation and weight initialisation.
    """
    return Experiment(fta_config=fta_config, seed=seed).evaluate_accuracy(
        name, epochs=epochs, qat_epochs=qat_epochs, dataset=dataset
    )


def accuracy_table(
    models: Sequence[str] = PAPER_MODEL_ORDER,
    epochs: int = 10,
    qat_epochs: int = 2,
    seed: int = 0,
) -> List[AccuracyRow]:
    """Table 2 for a list of models (shared dataset across models)."""
    if not models:
        return []
    return Experiment(seed=seed).accuracy(models, epochs=epochs, qat_epochs=qat_epochs)
