"""Table 3 — detailed comparison with prior SRAM-PIM accelerators.

Prior-work columns are literature constants copied from the paper's Table 3;
the DB-PIM column is measured by running the cycle model and the area model
on this repository's implementation.  The benchmark checks the *relative*
claims (utilisation ~2-3x better, highest throughput per macro, highest
energy efficiency per area), not the absolute literature values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..arch.area import AreaModel
from ..arch.config import DBPIMConfig
from ..sim.cycle_model import CycleModel
from ..sim.metrics import compute_metrics
from ..workloads.models import get_workload, list_workloads
from ..workloads.profiles import profile_model

__all__ = ["ComparisonColumn", "PRIOR_WORK_COLUMNS", "ours_column", "comparison_table", "format_table"]


@dataclass(frozen=True)
class ComparisonColumn:
    """One design (column) of Table 3."""

    design: str
    technology_nm: int
    die_area_mm2: float
    sram_size_kb: float
    pim_size_kb: float
    num_macros: int
    actual_utilization: Dict[str, float]
    peak_throughput_tops: float
    peak_gops_per_macro: float
    energy_efficiency_tops_w: float
    efficiency_per_area: float


#: Literature columns (numbers as reported in the paper's Table 3; the
#: utilisation entries are the representative values the paper quotes).
PRIOR_WORK_COLUMNS = (
    ComparisonColumn(
        design="Yue et al. [12]", technology_nm=65, die_area_mm2=12.0,
        sram_size_kb=294, pim_size_kb=8, num_macros=4,
        actual_utilization={"resnet18": 0.3204}, peak_throughput_tops=0.10,
        peak_gops_per_macro=24.69, energy_efficiency_tops_w=2.37,
        efficiency_per_area=2.97,
    ),
    ComparisonColumn(
        design="SDP [11]", technology_nm=28, die_area_mm2=6.07,
        sram_size_kb=384, pim_size_kb=128, num_macros=512,
        actual_utilization={"resnet50": 0.4864}, peak_throughput_tops=26.21,
        peak_gops_per_macro=51.19, energy_efficiency_tops_w=107.60,
        efficiency_per_area=17.73,
    ),
    ComparisonColumn(
        design="Liu et al. [13]", technology_nm=28, die_area_mm2=3.93,
        sram_size_kb=96, pim_size_kb=144, num_macros=96,
        actual_utilization={}, peak_throughput_tops=3.33,
        peak_gops_per_macro=34.68, energy_efficiency_tops_w=25.22,
        efficiency_per_area=6.42,
    ),
    ComparisonColumn(
        design="Tu et al. [14]", technology_nm=28, die_area_mm2=14.36,
        sram_size_kb=192, pim_size_kb=128, num_macros=128,
        actual_utilization={}, peak_throughput_tops=3.55,
        peak_gops_per_macro=27.73, energy_efficiency_tops_w=101.0,
        efficiency_per_area=7.03,
    ),
    ComparisonColumn(
        design="TT@CIM [15]", technology_nm=28, die_area_mm2=8.97,
        sram_size_kb=114, pim_size_kb=128, num_macros=16,
        actual_utilization={"resnet20": 0.50}, peak_throughput_tops=0.40,
        peak_gops_per_macro=25.1, energy_efficiency_tops_w=13.75,
        efficiency_per_area=1.53,
    ),
)


def ours_column(
    models: Sequence[str] = (),
    config: Optional[DBPIMConfig] = None,
    seed: int = 0,
) -> ComparisonColumn:
    """Measure the DB-PIM column of Table 3 from this implementation."""
    config = config or DBPIMConfig()
    cycle_model = CycleModel(config)
    area = AreaModel().breakdown(config)
    utilization: Dict[str, float] = {}
    best_tops_w = 0.0
    peak_tops = 0.0
    peak_per_macro = 0.0
    for name in models or list_workloads():
        profile = profile_model(get_workload(name), seed=seed)
        performance = cycle_model.run_model(profile, "hybrid")
        metrics = compute_metrics(performance, config)
        utilization[name] = metrics.actual_utilization
        best_tops_w = max(best_tops_w, metrics.tops_per_watt)
        peak_tops = metrics.peak_tops
        peak_per_macro = metrics.peak_gops_per_macro
    return ComparisonColumn(
        design="DB-PIM (this repo)",
        technology_nm=config.technology_nm,
        die_area_mm2=area.total_mm2,
        sram_size_kb=config.buffers.total_sram_bytes / 1024,
        pim_size_kb=config.pim_size_kilobytes,
        num_macros=config.num_macros,
        actual_utilization=utilization,
        peak_throughput_tops=peak_tops,
        peak_gops_per_macro=peak_per_macro,
        energy_efficiency_tops_w=best_tops_w,
        efficiency_per_area=best_tops_w / area.total_mm2,
    )


def comparison_table(
    models: Sequence[str] = (),
    config: Optional[DBPIMConfig] = None,
    seed: int = 0,
) -> List[ComparisonColumn]:
    """Table 3: prior-work literature columns plus the measured DB-PIM column."""
    return list(PRIOR_WORK_COLUMNS) + [ours_column(models, config, seed)]


def format_table(columns: Sequence[ComparisonColumn]) -> str:
    """Render Table 3 as aligned text (one design per line)."""
    header = (
        f"{'Design':<20}{'nm':>4}{'mm2':>7}{'SRAM KB':>9}{'PIM KB':>8}"
        f"{'macros':>8}{'GOPS/macro':>12}{'TOPS/W':>9}{'eff/mm2':>9}{'  U_act'}"
    )
    lines = [header]
    for column in columns:
        if column.actual_utilization:
            utilization = ", ".join(
                f"{name}={value:.1%}"
                for name, value in column.actual_utilization.items()
            )
        else:
            utilization = "n/a"
        lines.append(
            f"{column.design:<20}{column.technology_nm:>4}{column.die_area_mm2:>7.2f}"
            f"{column.sram_size_kb:>9.0f}{column.pim_size_kb:>8.0f}"
            f"{column.num_macros:>8}{column.peak_gops_per_macro:>12.1f}"
            f"{column.energy_efficiency_tops_w:>9.2f}{column.efficiency_per_area:>9.2f}"
            f"  {utilization}"
        )
    return "\n".join(lines)
