"""Table 3 — detailed comparison with prior SRAM-PIM accelerators.

Prior-work columns are literature constants copied from the paper's Table 3;
the DB-PIM column is measured by running the cycle model and the area model
on this repository's implementation.  The benchmark checks the *relative*
claims (utilisation ~2-3x better, highest throughput per macro, highest
energy efficiency per area), not the absolute literature values.

This module is a thin backwards-compatible wrapper: the computation lives on
:class:`repro.api.Experiment` (experiment id ``"table3"``) and the literature
records in :data:`repro.api.results.PRIOR_WORK_COLUMNS`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api.experiment import Experiment
from ..api.formatting import format_comparison as format_table
from ..api.results import PRIOR_WORK_COLUMNS, ComparisonColumn
from ..arch.config import DBPIMConfig

__all__ = [
    "ComparisonColumn",
    "PRIOR_WORK_COLUMNS",
    "ours_column",
    "comparison_table",
    "format_table",
]


def ours_column(
    models: Sequence[str] = (),
    config: Optional[DBPIMConfig] = None,
    seed: int = 0,
) -> ComparisonColumn:
    """Measure the DB-PIM column of Table 3 from this implementation."""
    return Experiment(config=config, seed=seed).ours_column(models or None)


def comparison_table(
    models: Sequence[str] = (),
    config: Optional[DBPIMConfig] = None,
    seed: int = 0,
) -> List[ComparisonColumn]:
    """Table 3: prior-work literature columns plus the measured DB-PIM column."""
    return Experiment(config=config, seed=seed).comparison(models or None)
