"""Table 4 — area breakdown of DB-PIM.

Thin driver around :class:`repro.arch.area.AreaModel` that produces the
rows of Table 4 (component, mm^2, percentage of total).

This module is a thin backwards-compatible wrapper: the computation lives on
:class:`repro.api.Experiment` (experiment id ``"table4"``).
"""

from __future__ import annotations

from typing import List, Optional

from ..api.experiment import Experiment
from ..api.formatting import format_area as format_table
from ..api.results import AreaRow
from ..arch.config import DBPIMConfig

__all__ = ["AreaRow", "area_table", "format_table"]


def area_table(config: Optional[DBPIMConfig] = None) -> List[AreaRow]:
    """Compute the Table 4 rows (plus the total as the last row)."""
    return Experiment(config=config).area()
