"""Table 4 — area breakdown of DB-PIM.

Thin driver around :class:`repro.arch.area.AreaModel` that produces the
rows of Table 4 (component, mm^2, percentage of total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..arch.area import AreaModel
from ..arch.config import DBPIMConfig

__all__ = ["AreaRow", "area_table", "format_table"]


@dataclass(frozen=True)
class AreaRow:
    """One row of Table 4."""

    module: str
    area_mm2: float
    breakdown: float


def area_table(config: Optional[DBPIMConfig] = None) -> List[AreaRow]:
    """Compute the Table 4 rows (plus the total as the last row)."""
    config = config or DBPIMConfig()
    breakdown = AreaModel().breakdown(config)
    fractions = breakdown.fractions()
    rows = [
        AreaRow(module=name, area_mm2=value, breakdown=fractions[name])
        for name, value in breakdown.as_dict().items()
    ]
    rows.append(AreaRow(module="Total", area_mm2=breakdown.total_mm2, breakdown=1.0))
    return rows


def format_table(rows: Sequence[AreaRow]) -> str:
    """Render Table 4 as aligned text."""
    lines = [f"{'Modules':<32}{'Area (mm2)':>12}{'Breakdown':>12}"]
    for row in rows:
        lines.append(f"{row.module:<32}{row.area_mm2:>12.5f}{row.breakdown:>11.2%}")
    return "\n".join(lines)
