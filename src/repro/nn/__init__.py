"""Numpy NN substrate: layers, training, quantization-aware fine-tuning.

This package replaces the PyTorch dependency of the original paper so the
whole FTA pipeline (train → quantize → approximate → evaluate accuracy) runs
offline on numpy alone.
"""

from . import functional
from .data import SyntheticImageDataset, batch_iterator
from .layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2D,
    ReLU,
    ReLU6,
    Residual,
    Sequential,
)
from .loss import CrossEntropyLoss, accuracy
from .optim import SGD, Adam, Optimizer
from .qat import (
    QuantizedLayerRecord,
    apply_weight_override,
    collect_weighted_layers,
    quantize_model,
    restore_weights,
)
from .training import Trainer, TrainingHistory, disable_model_qat, enable_model_qat

__all__ = [
    "functional",
    "SyntheticImageDataset",
    "batch_iterator",
    "Layer",
    "Conv2D",
    "Linear",
    "BatchNorm2D",
    "ReLU",
    "ReLU6",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool",
    "Flatten",
    "Sequential",
    "Residual",
    "CrossEntropyLoss",
    "accuracy",
    "Optimizer",
    "SGD",
    "Adam",
    "Trainer",
    "TrainingHistory",
    "enable_model_qat",
    "disable_model_qat",
    "QuantizedLayerRecord",
    "collect_weighted_layers",
    "quantize_model",
    "apply_weight_override",
    "restore_weights",
]
