"""Synthetic image-classification dataset.

The paper reports Top-1 accuracy on CIFAR-100.  CIFAR-100 is not available
in this offline environment, so the accuracy experiment runs on a synthetic
multi-class image dataset with the same interface: small RGB images with
integer class labels.  Each class is defined by a smooth random template
(low-frequency pattern) and samples are noisy, randomly shifted copies of
the template, which gives the classifiers a non-trivial but learnable task.

The quantity the experiment measures -- the accuracy *difference* between a
plain INT8 model and its FTA-approximated counterpart -- is produced by the
same code path regardless of the underlying dataset, which is why this
substitution preserves the behaviour Table 2 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["SyntheticImageDataset", "batch_iterator"]


@dataclass
class SyntheticImageDataset:
    """A train/test split of synthetic labelled images.

    Attributes:
        train_images: ``(N_train, C, H, W)`` float images in ``[0, 1]``.
        train_labels: integer labels.
        test_images: ``(N_test, C, H, W)`` float images.
        test_labels: integer labels.
        num_classes: number of classes.
    """

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    num_classes: int

    @classmethod
    def generate(
        cls,
        num_classes: int = 10,
        samples_per_class: int = 40,
        test_samples_per_class: int = 10,
        image_size: int = 16,
        channels: int = 3,
        noise: float = 0.15,
        seed: int = 0,
    ) -> "SyntheticImageDataset":
        """Generate a dataset.

        Args:
            num_classes: number of distinct classes.
            samples_per_class: training samples per class.
            test_samples_per_class: held-out samples per class.
            image_size: spatial size of the square images.
            channels: number of channels (3 for RGB-like inputs).
            noise: standard deviation of the additive noise.
            seed: RNG seed; the dataset is fully deterministic given the seed.
        """
        if num_classes < 2:
            raise ValueError("need at least two classes")
        rng = np.random.default_rng(seed)
        templates = _smooth_templates(rng, num_classes, channels, image_size)

        def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
            images = np.zeros((count * num_classes, channels, image_size, image_size))
            labels = np.zeros(count * num_classes, dtype=np.int64)
            index = 0
            for class_id in range(num_classes):
                for _ in range(count):
                    shift_y, shift_x = rng.integers(-1, 2, size=2)
                    image = np.roll(
                        templates[class_id], (shift_y, shift_x), axis=(1, 2)
                    )
                    image = image + rng.normal(0, noise, size=image.shape)
                    images[index] = np.clip(image, 0.0, 1.0)
                    labels[index] = class_id
                    index += 1
            order = rng.permutation(count * num_classes)
            return images[order], labels[order]

        train_images, train_labels = sample(samples_per_class)
        test_images, test_labels = sample(test_samples_per_class)
        return cls(
            train_images=train_images,
            train_labels=train_labels,
            test_images=test_images,
            test_labels=test_labels,
            num_classes=num_classes,
        )

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """``(C, H, W)`` of one image."""
        return tuple(self.train_images.shape[1:])


def _smooth_templates(
    rng: np.random.Generator, num_classes: int, channels: int, image_size: int
) -> np.ndarray:
    """Low-frequency class templates built from a few random cosine waves."""
    grid_y, grid_x = np.meshgrid(
        np.linspace(0, 2 * np.pi, image_size),
        np.linspace(0, 2 * np.pi, image_size),
        indexing="ij",
    )
    templates = np.zeros((num_classes, channels, image_size, image_size))
    for class_id in range(num_classes):
        for channel in range(channels):
            pattern = np.zeros_like(grid_y)
            for _ in range(3):
                freq_y, freq_x = rng.integers(1, 4, size=2)
                phase = rng.uniform(0, 2 * np.pi)
                pattern += rng.uniform(0.3, 1.0) * np.cos(
                    freq_y * grid_y + freq_x * grid_x + phase
                )
            pattern -= pattern.min()
            pattern /= max(pattern.max(), 1e-9)
            templates[class_id, channel] = pattern
    return templates


def batch_iterator(
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    seed: int = 0,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield mini-batches of ``(images, labels)``."""
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    count = images.shape[0]
    order = np.arange(count)
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        yield images[index], labels[index]
