"""Numerical building blocks of the numpy NN substrate.

The paper evaluates its algorithm on standard CNNs implemented in a deep
learning framework.  Because this reproduction runs offline with numpy only,
the required functionality (im2col convolution, pooling, batch
normalisation, activations, softmax / cross entropy) is implemented here
from scratch.  All functions operate on ``NCHW`` float arrays and return the
intermediate values needed by the corresponding backward passes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "relu_forward",
    "relu_backward",
    "relu6_forward",
    "relu6_backward",
    "max_pool2d_forward",
    "max_pool2d_backward",
    "avg_pool2d_forward",
    "avg_pool2d_backward",
    "global_avg_pool_forward",
    "global_avg_pool_backward",
    "batchnorm_forward",
    "batchnorm_backward",
    "softmax",
    "cross_entropy",
    "cross_entropy_grad",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    inputs: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold an NCHW tensor into convolution columns.

    Returns:
        ``(columns, (out_h, out_w))`` where ``columns`` has shape
        ``(N * out_h * out_w, C * kernel * kernel)``.
    """
    batch, channels, height, width = inputs.shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    padded = np.pad(
        inputs,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )
    columns = np.zeros(
        (batch, channels, kernel, kernel, out_h, out_w), dtype=inputs.dtype
    )
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            columns[:, :, ky, kx, :, :] = padded[:, :, ky:y_end:stride, kx:x_end:stride]
    columns = columns.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    return columns, (out_h, out_w)


def col2im(
    columns: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold convolution columns back into an NCHW tensor (adjoint of im2col)."""
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    columns = columns.reshape(batch, out_h, out_w, channels, kernel, kernel)
    columns = columns.transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding),
        dtype=columns.dtype,
    )
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += columns[:, :, ky, kx, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def conv2d_forward(
    inputs: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tuple[np.ndarray, dict]:
    """Grouped 2-D convolution via im2col.

    Args:
        inputs: ``(N, Cin, H, W)``.
        weights: ``(Cout, Cin // groups, K, K)``.
        bias: optional ``(Cout,)``.
        groups: number of channel groups (``groups == Cin`` for depthwise).

    Returns:
        ``(output, cache)`` with ``output`` of shape ``(N, Cout, out_h, out_w)``.
    """
    batch, in_channels, _, _ = inputs.shape
    out_channels, group_in, kernel, _ = weights.shape
    if in_channels % groups or out_channels % groups:
        raise ValueError("channel counts must be divisible by groups")
    if group_in != in_channels // groups:
        raise ValueError(
            f"weight shape {weights.shape} inconsistent with groups={groups} "
            f"and Cin={in_channels}"
        )
    group_out = out_channels // groups
    outputs = []
    caches = []
    for g in range(groups):
        in_slice = inputs[:, g * group_in : (g + 1) * group_in]
        w_slice = weights[g * group_out : (g + 1) * group_out]
        columns, (out_h, out_w) = im2col(in_slice, kernel, stride, padding)
        w_matrix = w_slice.reshape(group_out, -1)
        out = columns @ w_matrix.T
        out = out.reshape(batch, out_h, out_w, group_out).transpose(0, 3, 1, 2)
        outputs.append(out)
        caches.append((columns, in_slice.shape, w_slice.shape, w_matrix))
    output = np.concatenate(outputs, axis=1)
    if bias is not None:
        output = output + bias.reshape(1, -1, 1, 1)
    cache = {
        "caches": caches,
        "stride": stride,
        "padding": padding,
        "groups": groups,
        "kernel": kernel,
        "has_bias": bias is not None,
        "input_shape": inputs.shape,
    }
    return output, cache


def conv2d_backward(
    grad_output: np.ndarray, cache: dict
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Backward pass of :func:`conv2d_forward`.

    Returns:
        ``(grad_input, grad_weights, grad_bias)``.
    """
    groups = cache["groups"]
    stride, padding, kernel = cache["stride"], cache["padding"], cache["kernel"]
    batch = grad_output.shape[0]
    grad_bias = grad_output.sum(axis=(0, 2, 3)) if cache["has_bias"] else None
    grad_inputs = []
    grad_weights = []
    group_out = grad_output.shape[1] // groups
    for g in range(groups):
        columns, in_shape, w_shape, w_matrix = cache["caches"][g]
        grad_slice = grad_output[:, g * group_out : (g + 1) * group_out]
        out_h, out_w = grad_slice.shape[2], grad_slice.shape[3]
        grad_matrix = grad_slice.transpose(0, 2, 3, 1).reshape(
            batch * out_h * out_w, group_out
        )
        grad_w = (grad_matrix.T @ columns).reshape(w_shape)
        grad_cols = grad_matrix @ w_matrix
        grad_in = col2im(grad_cols, in_shape, kernel, stride, padding)
        grad_inputs.append(grad_in)
        grad_weights.append(grad_w)
    grad_input = np.concatenate(grad_inputs, axis=1)
    grad_weight = np.concatenate(grad_weights, axis=0)
    return grad_input, grad_weight, grad_bias


def relu_forward(inputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """ReLU activation; returns output and the positive mask for backward."""
    mask = inputs > 0
    return inputs * mask, mask


def relu_backward(grad_output: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return grad_output * mask


def relu6_forward(inputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """ReLU6 (used by MobileNetV2/EfficientNet blocks)."""
    mask = (inputs > 0) & (inputs < 6)
    return np.clip(inputs, 0, 6), mask


def relu6_backward(grad_output: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return grad_output * mask


def max_pool2d_forward(
    inputs: np.ndarray, kernel: int, stride: Optional[int] = None
) -> Tuple[np.ndarray, dict]:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    columns, (out_h, out_w) = im2col(inputs, kernel, stride, 0)
    batch, channels = inputs.shape[0], inputs.shape[1]
    columns = columns.reshape(batch * out_h * out_w, channels, kernel * kernel)
    argmax = columns.argmax(axis=2)
    output = columns.max(axis=2)
    output = output.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)
    cache = {
        "argmax": argmax,
        "input_shape": inputs.shape,
        "kernel": kernel,
        "stride": stride,
        "out_hw": (out_h, out_w),
    }
    return output, cache


def max_pool2d_backward(grad_output: np.ndarray, cache: dict) -> np.ndarray:
    kernel, stride = cache["kernel"], cache["stride"]
    batch, channels, _, _ = cache["input_shape"]
    out_h, out_w = cache["out_hw"]
    grad_cols = np.zeros(
        (batch * out_h * out_w, channels, kernel * kernel), dtype=grad_output.dtype
    )
    grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, channels)
    rows = np.arange(grad_cols.shape[0])[:, None]
    cols = np.arange(channels)[None, :]
    grad_cols[rows, cols, cache["argmax"]] = grad_flat
    grad_cols = grad_cols.reshape(batch * out_h * out_w, channels * kernel * kernel)
    return col2im(grad_cols, cache["input_shape"], kernel, stride, 0)


def avg_pool2d_forward(
    inputs: np.ndarray, kernel: int, stride: Optional[int] = None
) -> Tuple[np.ndarray, dict]:
    """Average pooling."""
    stride = stride or kernel
    columns, (out_h, out_w) = im2col(inputs, kernel, stride, 0)
    batch, channels = inputs.shape[0], inputs.shape[1]
    columns = columns.reshape(batch * out_h * out_w, channels, kernel * kernel)
    output = columns.mean(axis=2)
    output = output.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)
    cache = {
        "input_shape": inputs.shape,
        "kernel": kernel,
        "stride": stride,
        "out_hw": (out_h, out_w),
    }
    return output, cache


def avg_pool2d_backward(grad_output: np.ndarray, cache: dict) -> np.ndarray:
    kernel, stride = cache["kernel"], cache["stride"]
    batch, channels, _, _ = cache["input_shape"]
    out_h, out_w = cache["out_hw"]
    grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, channels)
    grad_cols = np.repeat(grad_flat[:, :, None], kernel * kernel, axis=2) / (
        kernel * kernel
    )
    grad_cols = grad_cols.reshape(batch * out_h * out_w, channels * kernel * kernel)
    return col2im(grad_cols, cache["input_shape"], kernel, stride, 0)


def global_avg_pool_forward(inputs: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Global average pooling to ``(N, C)``."""
    return inputs.mean(axis=(2, 3)), inputs.shape


def global_avg_pool_backward(
    grad_output: np.ndarray, input_shape: Tuple[int, ...]
) -> np.ndarray:
    _, _, height, width = input_shape
    scale = 1.0 / (height * width)
    return (
        np.broadcast_to(
            grad_output[:, :, None, None], input_shape
        ).astype(grad_output.dtype)
        * scale
    )


def batchnorm_forward(
    inputs: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float = 0.1,
    eps: float = 1e-5,
    training: bool = True,
) -> Tuple[np.ndarray, dict]:
    """Batch normalisation over the channel axis of an NCHW tensor.

    ``running_mean`` / ``running_var`` are updated in place during training,
    mirroring the usual framework semantics.
    """
    axes = (0, 2, 3) if inputs.ndim == 4 else (0,)
    if training:
        mean = inputs.mean(axis=axes)
        var = inputs.var(axis=axes)
        running_mean *= 1 - momentum
        running_mean += momentum * mean
        running_var *= 1 - momentum
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var
    shape = (1, -1, 1, 1) if inputs.ndim == 4 else (1, -1)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = (inputs - mean.reshape(shape)) * inv_std.reshape(shape)
    output = gamma.reshape(shape) * normalized + beta.reshape(shape)
    cache = {
        "normalized": normalized,
        "inv_std": inv_std,
        "gamma": gamma,
        "axes": axes,
        "shape": shape,
    }
    return output, cache


def batchnorm_backward(
    grad_output: np.ndarray, cache: dict
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of batch normalisation (training statistics)."""
    normalized = cache["normalized"]
    inv_std = cache["inv_std"]
    gamma = cache["gamma"]
    axes = cache["axes"]
    shape = cache["shape"]
    count = grad_output.size / gamma.size
    grad_gamma = (grad_output * normalized).sum(axis=axes)
    grad_beta = grad_output.sum(axis=axes)
    grad_normalized = grad_output * gamma.reshape(shape)
    grad_input = (
        grad_normalized
        - grad_normalized.mean(axis=axes).reshape(shape)
        - normalized * (grad_normalized * normalized).mean(axis=axes).reshape(shape)
    ) * inv_std.reshape(shape)
    # ``count`` kept for clarity; the means above already divide by it.
    del count
    return grad_input, grad_gamma, grad_beta


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer labels under ``softmax(logits)``."""
    probabilities = softmax(logits)
    batch = logits.shape[0]
    picked = probabilities[np.arange(batch), labels]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of :func:`cross_entropy` with respect to the logits."""
    probabilities = softmax(logits)
    batch = logits.shape[0]
    grad = probabilities.copy()
    grad[np.arange(batch), labels] -= 1.0
    return grad / batch
