"""Trainable layers of the numpy NN substrate.

Layers follow a minimal forward/backward protocol: ``forward(x)`` stores the
cache it needs, ``backward(grad)`` returns the gradient with respect to the
input and accumulates parameter gradients in ``layer.grads``.  Parameters
live in ``layer.params`` keyed by name, so optimizers can iterate over all
``(layer, name)`` pairs generically.

The conv and linear layers support *fake quantization* hooks used by the
FTA-aware QAT loop: when ``quantize`` is enabled the forward pass replaces
the float weights by their quantize→(optionally FTA)→dequantize image while
gradients still flow to the float master weights (straight-through
estimator), matching the paper's training procedure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.fta import FTAConfig
from ..core.quantization import dequantize, fta_quantize_weights, quantize_weights
from . import functional as F

__all__ = [
    "Layer",
    "Conv2D",
    "Linear",
    "BatchNorm2D",
    "ReLU",
    "ReLU6",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool",
    "Flatten",
    "Sequential",
    "Residual",
]


class Layer:
    """Base class of all layers."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.training = True

    def forward(self, inputs: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def train(self) -> None:
        """Switch the layer (and any sub-layers) to training mode."""
        self.training = True
        for child in self.children():
            child.train()

    def eval(self) -> None:
        """Switch the layer (and any sub-layers) to inference mode."""
        self.training = False
        for child in self.children():
            child.eval()

    def children(self) -> List["Layer"]:
        """Direct sub-layers; composite layers override this."""
        return []

    def parameters(self) -> List[Tuple["Layer", str]]:
        """All ``(layer, parameter-name)`` pairs below this layer."""
        pairs = [(self, name) for name in self.params]
        for child in self.children():
            pairs.extend(child.parameters())
        return pairs

    def zero_grad(self) -> None:
        for layer, name in self.parameters():
            layer.grads[name] = np.zeros_like(layer.params[name])


class _QuantizedWeightMixin:
    """Shared fake-quantization logic of Conv2D and Linear."""

    def __init__(self) -> None:
        self.quantize = False
        self.apply_fta = False
        self.fta_config: Optional[FTAConfig] = None
        self.weight_bits = 8

    def enable_qat(self, apply_fta: bool = False, fta_config: Optional[FTAConfig] = None) -> None:
        """Turn on fake weight quantization (optionally with FTA) in forward."""
        self.quantize = True
        self.apply_fta = apply_fta
        self.fta_config = fta_config

    def disable_qat(self) -> None:
        self.quantize = False
        self.apply_fta = False

    def effective_weights(self, weights: np.ndarray) -> np.ndarray:
        """Weights actually used in the forward pass."""
        if not self.quantize:
            return weights
        if self.apply_fta:
            _, approximated, params, _ = fta_quantize_weights(
                weights, num_bits=self.weight_bits, fta_config=self.fta_config
            )
            return dequantize(approximated, params)
        quantized, params = quantize_weights(weights, num_bits=self.weight_bits)
        return dequantize(quantized, params)


def _kaiming_init(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation used for conv and linear weights."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


class Conv2D(Layer, _QuantizedWeightMixin):
    """2-D convolution (supports grouped / depthwise convolution)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        Layer.__init__(self)
        _QuantizedWeightMixin.__init__(self)
        if in_channels % groups or out_channels % groups:
            raise ValueError("in/out channels must be divisible by groups")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.params["weight"] = _kaiming_init(
            (out_channels, in_channels // groups, kernel_size, kernel_size),
            fan_in,
            rng,
        )
        if bias:
            self.params["bias"] = np.zeros(out_channels)
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        weights = self.effective_weights(self.params["weight"])
        bias = self.params.get("bias")
        output, cache = F.conv2d_forward(
            inputs, weights, bias, self.stride, self.padding, self.groups
        )
        self._cache = cache
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_input, grad_weight, grad_bias = F.conv2d_backward(grad_output, self._cache)
        self.grads["weight"] = self.grads.get("weight", 0) + grad_weight
        if grad_bias is not None:
            self.grads["bias"] = self.grads.get("bias", 0) + grad_bias
        return grad_input


class Linear(Layer, _QuantizedWeightMixin):
    """Fully connected layer operating on ``(N, features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        Layer.__init__(self)
        _QuantizedWeightMixin.__init__(self)
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.params["weight"] = _kaiming_init(
            (out_features, in_features), in_features, rng
        )
        if bias:
            self.params["bias"] = np.zeros(out_features)
        self._inputs: Optional[np.ndarray] = None
        self._weights_used: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        weights = self.effective_weights(self.params["weight"])
        self._inputs = inputs
        self._weights_used = weights
        output = inputs @ weights.T
        if "bias" in self.params:
            output = output + self.params["bias"]
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None or self._weights_used is None:
            raise RuntimeError("backward called before forward")
        self.grads["weight"] = self.grads.get("weight", 0) + grad_output.T @ self._inputs
        if "bias" in self.params:
            self.grads["bias"] = self.grads.get("bias", 0) + grad_output.sum(axis=0)
        return grad_output @ self._weights_used


class BatchNorm2D(Layer):
    """Batch normalisation over the channel axis of NCHW tensors."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(num_features)
        self.params["beta"] = np.zeros(num_features)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, cache = F.batchnorm_forward(
            inputs,
            self.params["gamma"],
            self.params["beta"],
            self.running_mean,
            self.running_var,
            self.momentum,
            self.eps,
            self.training,
        )
        self._cache = cache
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_input, grad_gamma, grad_beta = F.batchnorm_backward(grad_output, self._cache)
        self.grads["gamma"] = self.grads.get("gamma", 0) + grad_gamma
        self.grads["beta"] = self.grads.get("beta", 0) + grad_beta
        return grad_input


class ReLU(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._mask = F.relu_forward(inputs)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.relu_backward(grad_output, self._mask)


class ReLU6(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._mask = F.relu6_forward(inputs)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.relu6_backward(grad_output, self._mask)


class MaxPool2D(Layer):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._cache = F.max_pool2d_forward(inputs, self.kernel_size, self.stride)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.max_pool2d_backward(grad_output, self._cache)


class AvgPool2D(Layer):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._cache = F.avg_pool2d_forward(inputs, self.kernel_size, self.stride)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.avg_pool2d_backward(grad_output, self._cache)


class GlobalAvgPool(Layer):
    """Global average pooling producing ``(N, C)`` feature vectors."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output, self._input_shape = F.global_avg_pool_forward(inputs)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return F.global_avg_pool_backward(grad_output, self._input_shape)


class Flatten(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)


class Sequential(Layer):
    """Composite layer applying sub-layers in order."""

    def __init__(self, *layers: Layer) -> None:
        super().__init__()
        self.layers = list(layers)

    def children(self) -> List[Layer]:
        return list(self.layers)

    def append(self, layer: Layer) -> None:
        self.layers.append(layer)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for layer in self.layers:
            output = layer.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


class Residual(Layer):
    """Residual connection: ``output = body(x) + shortcut(x)``.

    The shortcut defaults to identity; a projection (e.g. a 1×1 conv +
    batch-norm Sequential) can be supplied for dimension changes, mirroring
    ResNet basic blocks and MobileNetV2 inverted residuals.
    """

    def __init__(self, body: Layer, shortcut: Optional[Layer] = None) -> None:
        super().__init__()
        self.body = body
        self.shortcut = shortcut

    def children(self) -> List[Layer]:
        children = [self.body]
        if self.shortcut is not None:
            children.append(self.shortcut)
        return children

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        branch = self.body.forward(inputs)
        identity = inputs if self.shortcut is None else self.shortcut.forward(inputs)
        return branch + identity

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_body = self.body.backward(grad_output)
        if self.shortcut is None:
            grad_identity = grad_output
        else:
            grad_identity = self.shortcut.backward(grad_output)
        return grad_body + grad_identity
