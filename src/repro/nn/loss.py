"""Loss functions for the numpy NN substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import functional as F

__all__ = ["CrossEntropyLoss", "accuracy"]


class CrossEntropyLoss:
    """Softmax cross entropy with integer class labels."""

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return ``(loss, grad_logits)`` for a batch."""
        labels = np.asarray(labels, dtype=np.int64)
        loss = F.cross_entropy(logits, labels)
        grad = F.cross_entropy_grad(logits, labels)
        return loss, grad


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy of a batch of logits."""
    predictions = np.argmax(logits, axis=-1)
    return float((predictions == np.asarray(labels)).mean())
