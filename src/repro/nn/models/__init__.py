"""Mini trainable model zoo mirroring the paper's evaluation networks."""

from .blocks import basic_block, conv_bn_relu, inverted_residual
from .zoo import (
    MODEL_BUILDERS,
    build_model,
    mini_alexnet,
    mini_efficientnet_b0,
    mini_mobilenet_v2,
    mini_resnet,
    mini_vgg,
)

__all__ = [
    "conv_bn_relu",
    "basic_block",
    "inverted_residual",
    "MODEL_BUILDERS",
    "build_model",
    "mini_alexnet",
    "mini_vgg",
    "mini_resnet",
    "mini_mobilenet_v2",
    "mini_efficientnet_b0",
]
