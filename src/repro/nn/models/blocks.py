"""Reusable building blocks of the mini model zoo."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..layers import (
    BatchNorm2D,
    Conv2D,
    Layer,
    ReLU,
    ReLU6,
    Residual,
    Sequential,
)

__all__ = ["conv_bn_relu", "basic_block", "inverted_residual"]


def conv_bn_relu(
    in_channels: int,
    out_channels: int,
    kernel_size: int = 3,
    stride: int = 1,
    padding: Optional[int] = None,
    groups: int = 1,
    relu6: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Conv → BatchNorm → ReLU(6) block (the workhorse of every model)."""
    if padding is None:
        padding = kernel_size // 2
    activation: Layer = ReLU6() if relu6 else ReLU()
    return Sequential(
        Conv2D(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=False,
            rng=rng,
        ),
        BatchNorm2D(out_channels),
        activation,
    )


def basic_block(
    in_channels: int,
    out_channels: int,
    stride: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> Layer:
    """ResNet basic block: two 3×3 convs with an identity/projection shortcut."""
    body = Sequential(
        Conv2D(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng),
        BatchNorm2D(out_channels),
        ReLU(),
        Conv2D(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng),
        BatchNorm2D(out_channels),
    )
    shortcut: Optional[Layer] = None
    if stride != 1 or in_channels != out_channels:
        shortcut = Sequential(
            Conv2D(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
            BatchNorm2D(out_channels),
        )
    return Sequential(Residual(body, shortcut), ReLU())


def inverted_residual(
    in_channels: int,
    out_channels: int,
    stride: int = 1,
    expansion: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> Layer:
    """MobileNetV2 / EfficientNet inverted residual (MBConv) block.

    Expansion 1×1 conv → depthwise 3×3 conv → linear 1×1 projection, with a
    residual connection when the spatial size and channel count match.  The
    squeeze-and-excite stage of EfficientNet is omitted in the mini models;
    it does not interact with the weight-quantization path the experiments
    exercise.
    """
    hidden = in_channels * expansion
    body = Sequential(
        # Expansion.
        Conv2D(in_channels, hidden, 1, bias=False, rng=rng),
        BatchNorm2D(hidden),
        ReLU6(),
        # Depthwise.
        Conv2D(hidden, hidden, 3, stride=stride, padding=1, groups=hidden, bias=False, rng=rng),
        BatchNorm2D(hidden),
        ReLU6(),
        # Linear projection.
        Conv2D(hidden, out_channels, 1, bias=False, rng=rng),
        BatchNorm2D(out_channels),
    )
    if stride == 1 and in_channels == out_channels:
        return Residual(body)
    return body
