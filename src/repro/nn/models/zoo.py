"""Mini trainable versions of the paper's five evaluation networks.

The paper evaluates AlexNet, VGG-19, ResNet-18, MobileNetV2 and
EfficientNet-B0 on CIFAR-100.  Full-size versions of those networks are far
too expensive to train in a numpy-only environment, so this module provides
*mini* versions that preserve the architectural traits that matter to the
FTA/DB-PIM experiments:

* AlexNet / VGG  -- plain convolution stacks with large dense classifiers
  (high weight redundancy → FTA thresholds mostly 1),
* ResNet         -- residual basic blocks,
* MobileNetV2 / EfficientNet -- inverted residual (MBConv) blocks with
  depthwise convolutions and narrow channel counts (low redundancy → FTA
  thresholds mostly 2).

The default input resolution is 16×16×3, matching
:class:`repro.nn.data.SyntheticImageDataset`.  The *full-size* layer shapes
used by the performance simulator live in :mod:`repro.workloads`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..layers import (
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
)
from .blocks import basic_block, conv_bn_relu, inverted_residual

__all__ = [
    "mini_alexnet",
    "mini_vgg",
    "mini_resnet",
    "mini_mobilenet_v2",
    "mini_efficientnet_b0",
    "MODEL_BUILDERS",
    "build_model",
]


def mini_alexnet(num_classes: int = 10, seed: int = 0) -> Sequential:
    """Miniature AlexNet: three conv stages and a two-layer classifier."""
    rng = np.random.default_rng(seed)
    return Sequential(
        conv_bn_relu(3, 16, 3, rng=rng),
        MaxPool2D(2),
        conv_bn_relu(16, 32, 3, rng=rng),
        MaxPool2D(2),
        conv_bn_relu(32, 32, 3, rng=rng),
        Flatten(),
        Linear(32 * 4 * 4, 64, rng=rng),
        ReLU(),
        Linear(64, num_classes, rng=rng),
    )


def mini_vgg(num_classes: int = 10, seed: int = 0) -> Sequential:
    """Miniature VGG: double-conv stages followed by a dense classifier."""
    rng = np.random.default_rng(seed)
    return Sequential(
        conv_bn_relu(3, 16, 3, rng=rng),
        conv_bn_relu(16, 16, 3, rng=rng),
        MaxPool2D(2),
        conv_bn_relu(16, 32, 3, rng=rng),
        conv_bn_relu(32, 32, 3, rng=rng),
        MaxPool2D(2),
        conv_bn_relu(32, 48, 3, rng=rng),
        conv_bn_relu(48, 48, 3, rng=rng),
        MaxPool2D(2),
        Flatten(),
        Linear(48 * 2 * 2, 64, rng=rng),
        ReLU(),
        Linear(64, num_classes, rng=rng),
    )


def mini_resnet(num_classes: int = 10, seed: int = 0) -> Sequential:
    """Miniature ResNet: stem + three basic-block stages + GAP classifier."""
    rng = np.random.default_rng(seed)
    return Sequential(
        conv_bn_relu(3, 16, 3, rng=rng),
        basic_block(16, 16, stride=1, rng=rng),
        basic_block(16, 32, stride=2, rng=rng),
        basic_block(32, 48, stride=2, rng=rng),
        GlobalAvgPool(),
        Linear(48, num_classes, rng=rng),
    )


def mini_mobilenet_v2(num_classes: int = 10, seed: int = 0) -> Sequential:
    """Miniature MobileNetV2: stem + three inverted residual blocks."""
    rng = np.random.default_rng(seed)
    return Sequential(
        conv_bn_relu(3, 16, 3, relu6=True, rng=rng),
        inverted_residual(16, 16, stride=1, expansion=2, rng=rng),
        inverted_residual(16, 24, stride=2, expansion=4, rng=rng),
        inverted_residual(24, 32, stride=2, expansion=4, rng=rng),
        GlobalAvgPool(),
        Linear(32, num_classes, rng=rng),
    )


def mini_efficientnet_b0(num_classes: int = 10, seed: int = 0) -> Sequential:
    """Miniature EfficientNet-B0: MBConv stages with slightly wider channels."""
    rng = np.random.default_rng(seed)
    return Sequential(
        conv_bn_relu(3, 16, 3, relu6=True, rng=rng),
        inverted_residual(16, 16, stride=1, expansion=1, rng=rng),
        inverted_residual(16, 24, stride=2, expansion=4, rng=rng),
        inverted_residual(24, 24, stride=1, expansion=4, rng=rng),
        inverted_residual(24, 40, stride=2, expansion=4, rng=rng),
        GlobalAvgPool(),
        Linear(40, num_classes, rng=rng),
    )


#: Registry keyed by the model names the paper uses.
MODEL_BUILDERS: Dict[str, Callable[..., Sequential]] = {
    "alexnet": mini_alexnet,
    "vgg19": mini_vgg,
    "resnet18": mini_resnet,
    "mobilenetv2": mini_mobilenet_v2,
    "efficientnetb0": mini_efficientnet_b0,
}


def build_model(name: str, num_classes: int = 10, seed: Optional[int] = None) -> Sequential:
    """Build a mini model by paper name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        )
    return MODEL_BUILDERS[key](num_classes=num_classes, seed=seed or 0)
