"""Optimizers for the numpy NN substrate."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .layers import Layer

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over the ``(layer, parameter-name)`` pairs of a model."""

    def __init__(self, model: Layer, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.model = model
        self.learning_rate = learning_rate

    @property
    def parameters(self) -> List[Tuple[Layer, str]]:
        return self.model.parameters()

    def zero_grad(self) -> None:
        self.model.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        model: Layer,
        learning_rate: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(model, learning_rate)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, Dict[str, np.ndarray]] = {}

    def step(self) -> None:
        for layer, name in self.parameters:
            grad = layer.grads.get(name)
            if grad is None:
                continue
            param = layer.params[name]
            if self.weight_decay and name == "weight":
                grad = grad + self.weight_decay * param
            store = self._velocity.setdefault(id(layer), {})
            velocity = store.get(name)
            if velocity is None:
                velocity = np.zeros_like(param)
            velocity = self.momentum * velocity - self.learning_rate * grad
            store[name] = velocity
            layer.params[name] = param + velocity


class Adam(Optimizer):
    """Adam optimizer."""

    def __init__(
        self,
        model: Layer,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(model, learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first: Dict[int, Dict[str, np.ndarray]] = {}
        self._second: Dict[int, Dict[str, np.ndarray]] = {}

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1 - self.beta1**self._step_count
        correction2 = 1 - self.beta2**self._step_count
        for layer, name in self.parameters:
            grad = layer.grads.get(name)
            if grad is None:
                continue
            param = layer.params[name]
            if self.weight_decay and name == "weight":
                grad = grad + self.weight_decay * param
            first_store = self._first.setdefault(id(layer), {})
            second_store = self._second.setdefault(id(layer), {})
            first = first_store.get(name, np.zeros_like(param))
            second = second_store.get(name, np.zeros_like(param))
            first = self.beta1 * first + (1 - self.beta1) * grad
            second = self.beta2 * second + (1 - self.beta2) * grad * grad
            first_store[name] = first
            second_store[name] = second
            update = (first / correction1) / (np.sqrt(second / correction2) + self.eps)
            layer.params[name] = param - self.learning_rate * update
