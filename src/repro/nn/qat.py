"""Post-training model transforms: INT8 quantization and FTA approximation.

These helpers operate on a trained model and produce, per weighted layer,
the plain quantized integer weights, the FTA-approximated integer weights,
and the per-filter thresholds -- exactly the artefacts the compiler consumes
and the accuracy study (Table 2) compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.fta import FTAConfig
from ..core.quantization import QuantizationParams, dequantize, fta_quantize_weights
from .layers import Conv2D, Layer, Linear

__all__ = [
    "QuantizedLayerRecord",
    "collect_weighted_layers",
    "quantize_model",
    "apply_weight_override",
    "restore_weights",
]


@dataclass
class QuantizedLayerRecord:
    """Quantization artefacts of one Conv2D / Linear layer.

    Attributes:
        layer: the live layer object (weights may be overridden in place).
        name: dotted path of the layer inside the model.
        float_weights: copy of the original float weights.
        int_weights: plain symmetric INT8 weights.
        fta_int_weights: FTA-approximated INT8 weights.
        params: quantization parameters (per-channel scales).
        thresholds: per-filter FTA thresholds.
    """

    layer: Layer
    name: str
    float_weights: np.ndarray
    int_weights: np.ndarray
    fta_int_weights: np.ndarray
    params: QuantizationParams
    thresholds: np.ndarray

    @property
    def filter_major_int_weights(self) -> np.ndarray:
        """Plain quantized weights reshaped to ``(filters, elements)``."""
        return self.int_weights.reshape(self.int_weights.shape[0], -1)

    @property
    def filter_major_fta_weights(self) -> np.ndarray:
        """FTA weights reshaped to ``(filters, elements)``."""
        return self.fta_int_weights.reshape(self.fta_int_weights.shape[0], -1)


def collect_weighted_layers(model: Layer, prefix: str = "model") -> List[tuple]:
    """Depth-first list of ``(name, layer)`` for every Conv2D / Linear."""
    found = []

    def visit(layer: Layer, name: str) -> None:
        if isinstance(layer, (Conv2D, Linear)):
            found.append((name, layer))
        for index, child in enumerate(layer.children()):
            visit(child, f"{name}.{index}")

    visit(model, prefix)
    return found


def quantize_model(
    model: Layer,
    num_bits: int = 8,
    fta_config: Optional[FTAConfig] = None,
) -> List[QuantizedLayerRecord]:
    """Quantize every weighted layer of a model and apply FTA per layer."""
    records = []
    for name, layer in collect_weighted_layers(model):
        weights = layer.params["weight"]
        int_weights, fta_int_weights, params, thresholds = fta_quantize_weights(
            weights, num_bits=num_bits, fta_config=fta_config
        )
        records.append(
            QuantizedLayerRecord(
                layer=layer,
                name=name,
                float_weights=weights.copy(),
                int_weights=int_weights,
                fta_int_weights=fta_int_weights,
                params=params,
                thresholds=thresholds,
            )
        )
    return records


def apply_weight_override(
    records: List[QuantizedLayerRecord], use_fta: bool
) -> None:
    """Replace each layer's float weights by the dequantized integer weights.

    Args:
        records: output of :func:`quantize_model`.
        use_fta: when True the FTA-approximated integers are used, otherwise
            the plain quantized integers.
    """
    for record in records:
        integers = record.fta_int_weights if use_fta else record.int_weights
        record.layer.params["weight"] = dequantize(integers, record.params)


def restore_weights(records: List[QuantizedLayerRecord]) -> None:
    """Undo :func:`apply_weight_override`, restoring the float weights."""
    for record in records:
        record.layer.params["weight"] = record.float_weights.copy()


def layer_threshold_summary(records: List[QuantizedLayerRecord]) -> Dict[str, Dict[int, int]]:
    """Per-layer histogram of FTA thresholds (useful for the speedup model)."""
    summary: Dict[str, Dict[int, int]] = {}
    for record in records:
        histogram: Dict[int, int] = {}
        for value in record.thresholds:
            histogram[int(value)] = histogram.get(int(value), 0) + 1
        summary[record.name] = histogram
    return summary
