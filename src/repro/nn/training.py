"""Training / evaluation loops, including FTA-aware QAT.

The paper's training procedure has two stages:

1. **FTA-aware QAT** -- quantization-aware fine-tuning of a pre-trained
   float model so the quantization parameters already account for the
   approximation (forward passes use the fake-quantized, optionally
   FTA-approximated, weights; gradients flow to the float master copy via a
   straight-through estimator).
2. **FTA quantization** -- the final offline step that produces the INT8 +
   FTA approximated model handed to the compiler.

``Trainer`` implements plain float training (the "pre-trained model" step)
and QAT fine-tuning on top of the same loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.fta import FTAConfig
from .data import SyntheticImageDataset, batch_iterator
from .layers import Conv2D, Layer, Linear
from .loss import CrossEntropyLoss, accuracy
from .optim import SGD, Optimizer

__all__ = ["TrainingHistory", "Trainer", "enable_model_qat", "disable_model_qat"]


@dataclass
class TrainingHistory:
    """Loss/accuracy trace of a training run."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else float("nan")


def enable_model_qat(
    model: Layer, apply_fta: bool = False, fta_config: Optional[FTAConfig] = None
) -> int:
    """Enable fake weight quantization on every Conv2D/Linear of a model.

    Returns:
        The number of layers switched to QAT mode.
    """
    count = 0
    stack = [model]
    while stack:
        layer = stack.pop()
        if isinstance(layer, (Conv2D, Linear)):
            layer.enable_qat(apply_fta=apply_fta, fta_config=fta_config)
            count += 1
        stack.extend(layer.children())
    return count


def disable_model_qat(model: Layer) -> int:
    """Disable fake weight quantization everywhere; returns layers touched."""
    count = 0
    stack = [model]
    while stack:
        layer = stack.pop()
        if isinstance(layer, (Conv2D, Linear)):
            layer.disable_qat()
            count += 1
        stack.extend(layer.children())
    return count


class Trainer:
    """Mini-batch trainer for the numpy models."""

    def __init__(
        self,
        model: Layer,
        dataset: SyntheticImageDataset,
        optimizer: Optional[Optimizer] = None,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.optimizer = optimizer or SGD(model, learning_rate=0.05, momentum=0.9)
        self.batch_size = batch_size
        self.seed = seed
        self.loss_fn = CrossEntropyLoss()

    def evaluate(self, images: Optional[np.ndarray] = None, labels: Optional[np.ndarray] = None) -> float:
        """Top-1 accuracy of the model on a dataset split (test by default)."""
        if images is None:
            images, labels = self.dataset.test_images, self.dataset.test_labels
        self.model.eval()
        correct = 0.0
        total = 0
        for batch_images, batch_labels in batch_iterator(
            images, labels, self.batch_size, shuffle=False
        ):
            logits = self.model.forward(batch_images)
            correct += accuracy(logits, batch_labels) * batch_images.shape[0]
            total += batch_images.shape[0]
        self.model.train()
        return correct / max(total, 1)

    def train(self, epochs: int, verbose: bool = False) -> TrainingHistory:
        """Run the training loop for a number of epochs."""
        history = TrainingHistory()
        self.model.train()
        for epoch in range(epochs):
            epoch_loss = 0.0
            epoch_accuracy = 0.0
            batches = 0
            for batch_images, batch_labels in batch_iterator(
                self.dataset.train_images,
                self.dataset.train_labels,
                self.batch_size,
                shuffle=True,
                seed=self.seed + epoch,
            ):
                self.optimizer.zero_grad()
                logits = self.model.forward(batch_images)
                loss, grad = self.loss_fn(logits, batch_labels)
                self.model.backward(grad)
                self.optimizer.step()
                epoch_loss += loss
                epoch_accuracy += accuracy(logits, batch_labels)
                batches += 1
            history.train_loss.append(epoch_loss / max(batches, 1))
            history.train_accuracy.append(epoch_accuracy / max(batches, 1))
            history.test_accuracy.append(self.evaluate())
            if verbose:  # pragma: no cover - cosmetic output
                print(
                    f"epoch {epoch + 1}/{epochs}: "
                    f"loss={history.train_loss[-1]:.4f} "
                    f"train_acc={history.train_accuracy[-1]:.3f} "
                    f"test_acc={history.test_accuracy[-1]:.3f}"
                )
        return history

    def fine_tune_with_qat(
        self,
        epochs: int,
        apply_fta: bool = False,
        fta_config: Optional[FTAConfig] = None,
        learning_rate: float = 0.01,
    ) -> TrainingHistory:
        """FTA-aware QAT fine-tuning on top of the current weights."""
        enable_model_qat(self.model, apply_fta=apply_fta, fta_config=fta_config)
        previous_optimizer = self.optimizer
        self.optimizer = SGD(self.model, learning_rate=learning_rate, momentum=0.9)
        try:
            history = self.train(epochs)
        finally:
            self.optimizer = previous_optimizer
        return history
