"""repro.serve -- long-lived experiment service with request coalescing.

Every ``repro run`` invocation pays process startup, registry construction
and workload profiling before its first simulated cycle.  This package
keeps all of that warm in one long-lived daemon:

* :class:`~repro.serve.service.ExperimentService` -- the asyncio core:
  warm per-(config, seed, engine) :class:`~repro.api.experiment.Experiment`
  sessions, an admission-controlled queue with per-request deadlines and
  bounded backpressure, and a coalescing batcher that merges compatible
  concurrent requests into single vectorized simulator passes with results
  byte-identical to solo dispatch;
* :class:`~repro.serve.service.ServiceRuntime` -- the synchronous wrapper
  (event loop on a daemon thread) used by the HTTP façade, the CLI, tests
  and benchmarks;
* :mod:`repro.serve.http` -- the stdlib-only HTTP transport
  (``POST /v1/run``, ``POST /v1/sweep``, ``GET /v1/metrics``,
  ``GET /v1/health``), started by ``repro serve``;
* :class:`~repro.serve.cache.HotResultCache` -- in-memory TTL/LRU result
  cache layered over the sweep service's content-hash disk cache;
* :class:`~repro.serve.metrics.MetricsRegistry` -- live counters, gauges
  and latency percentiles behind ``GET /v1/metrics``.

See ``docs/serving.md`` for the architecture and endpoint reference.
"""

from .cache import HotResultCache
from .http import ServeHTTPServer, make_server
from .metrics import LatencyWindow, MetricsRegistry
from .service import (
    DeadlineExceededError,
    ExperimentService,
    QueueFullError,
    RequestValidationError,
    RunFailedError,
    RunOutcome,
    RunRequest,
    ServeConfig,
    ServeError,
    ServiceClosedError,
    ServiceRuntime,
)

__all__ = [
    "ServeError",
    "RequestValidationError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "RunFailedError",
    "ServeConfig",
    "RunRequest",
    "RunOutcome",
    "ExperimentService",
    "ServiceRuntime",
    "HotResultCache",
    "LatencyWindow",
    "MetricsRegistry",
    "ServeHTTPServer",
    "make_server",
]
