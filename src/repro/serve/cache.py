"""Hot in-memory result cache of the experiment service (TTL + LRU).

The sweep service already has a content-hash *on-disk* cache
(``repro.api.sweep``); the serve daemon layers this in-process cache on top
of it so repeated identical requests -- the common case for a dashboard
polling a handful of configurations -- are answered without touching the
disk or the simulator.  Keys are the same
:meth:`repro.api.sweep.SweepPoint.cache_key` content hashes the disk cache
uses, so the two layers can never disagree about identity.

Entries expire after a TTL (results are deterministic, but the TTL bounds
memory held for one-off requests and lets operators reason about staleness
after a redeploy) and are evicted least-recently-used beyond a capacity
bound.  The cache is thread-safe: the asyncio loop and HTTP threads probe
it concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Optional, Tuple

__all__ = ["HotResultCache"]


class HotResultCache:
    """Bounded, TTL-expiring, LRU-evicting in-memory result cache.

    Args:
        capacity: maximum retained entries; 0 disables the cache entirely
            (every :meth:`get` misses, every :meth:`put` is a no-op --
            useful for benchmarks that must exercise the batcher).
        ttl_s: seconds an entry stays servable after its last *write*;
            ``None`` disables expiry.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_s: Optional[float] = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None to disable)")
        self.capacity = int(capacity)
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (expiry deadline or None, value); insertion order is LRU.
        self._entries: "OrderedDict[str, Tuple[Optional[float], Any]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        """Number of currently retained (possibly expired) entries."""
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Any]:
        """The cached value of ``key``, or ``None`` on a miss.

        An expired entry is dropped and reported as a miss; a hit refreshes
        the entry's LRU position (but not its TTL).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            deadline, value = entry
            if deadline is not None and self._clock() >= deadline:
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries beyond capacity."""
        if self.capacity == 0:
            return
        deadline = (
            self._clock() + self.ttl_s if self.ttl_s is not None else None
        )
        with self._lock:
            self._entries[key] = (deadline, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self, key: Optional[str] = None) -> int:
        """Drop one entry (or, with ``None``, all); returns the count dropped."""
        with self._lock:
            if key is None:
                count = len(self._entries)
                self._entries.clear()
                return count
            return 1 if self._entries.pop(key, None) is not None else 0
