"""Stdlib-only HTTP façade over the experiment service.

The transport is deliberately pluggable and thin: all queueing, coalescing,
caching and metrics live in :class:`~repro.serve.service.ExperimentService`;
this module only parses JSON bodies, bridges handler threads into the
service's event loop (via :class:`~repro.serve.service.ServiceRuntime`) and
maps typed serve errors to HTTP statuses.  Only the Python standard library
(:mod:`http.server`) is used -- the daemon has zero dependencies beyond the
package itself.

Endpoints:

* ``POST /v1/run`` -- one experiment request; body is a JSON object with
  ``experiment`` (required) plus optional ``models``, ``config``, ``seed``,
  ``engine``, ``params``, ``timeout_s``.  Responds 200 with
  ``{"outcome": {...}, "result": <ExperimentResult.to_dict()>}``.
* ``POST /v1/sweep`` -- a sweep grid; body keys mirror
  :func:`repro.api.sweep.run_sweep` keywords.  Responds 200 with
  ``{"sweep": <SweepResult.to_dict()>}``.
* ``GET /v1/metrics`` -- live metrics snapshot (counters, gauges, latency
  percentiles, derived ratios, service state).
* ``GET /v1/health`` -- liveness probe: ``{"status": "ok", ...}``.

Error mapping: 400 malformed request, 503 queue full / shutting down,
504 deadline exceeded, 500 experiment failure -- each body is
``{"error": {"type": ..., "message": ...}}``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .service import (
    RequestValidationError,
    RunRequest,
    ServeConfig,
    ServeError,
    ServiceRuntime,
)

__all__ = ["ServeHTTPServer", "make_server"]

#: Request body size cap (the grids this service runs are tiny; anything
#: bigger than this is a client bug, not a workload).
_MAX_BODY_BYTES = 1 << 20


def _request_from_payload(payload: Any) -> RunRequest:
    """Build a :class:`RunRequest` from a decoded ``POST /v1/run`` body.

    Raises:
        RequestValidationError: non-object body or wrong field types
            (full semantic validation happens in ``RunRequest.validated``).
    """
    if not isinstance(payload, dict):
        raise RequestValidationError("request body must be a JSON object")
    unknown = set(payload) - {
        "experiment", "models", "config", "seed", "engine", "params",
        "timeout_s",
    }
    if unknown:
        raise RequestValidationError(
            f"unknown request fields {sorted(unknown)}"
        )
    experiment = payload.get("experiment")
    if not isinstance(experiment, str):
        raise RequestValidationError("'experiment' must be a string")
    models = payload.get("models")
    if models is not None:
        if isinstance(models, str) or not isinstance(models, (list, tuple)):
            raise RequestValidationError(
                "'models' must be a list of workload names"
            )
        models = tuple(str(name) for name in models)
    params = payload.get("params")
    if params is None:
        params = {}
    elif not isinstance(params, dict):
        raise RequestValidationError("'params' must be a JSON object")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise RequestValidationError("'seed' must be an integer")
    timeout_s = payload.get("timeout_s")
    if timeout_s is not None and not isinstance(timeout_s, (int, float)):
        raise RequestValidationError("'timeout_s' must be a number")
    return RunRequest(
        experiment=experiment,
        models=models,
        config=str(payload.get("config", "paper-28nm")),
        seed=seed,
        engine=str(payload.get("engine", RunRequest.engine)),
        params=params,
        timeout_s=float(timeout_s) if timeout_s is not None else None,
    )


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request; the server instance carries the runtime."""

    server: "ServeHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default stderr access log (metrics cover it)."""

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        """Serialise ``payload`` and send it with ``status``."""
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, error: Exception) -> None:
        """Map a (typed) error to its HTTP status and JSON body."""
        status = error.http_status if isinstance(error, ServeError) else 500
        self._send_json(
            status,
            {
                "error": {
                    "type": type(error).__name__,
                    "message": str(error),
                }
            },
        )
        self.server.runtime.service.metrics.increment("http_errors_total")

    def _read_body(self) -> Any:
        """Decode the JSON request body (empty body -> ``{}``)."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise RequestValidationError(
                f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError as error:
            raise RequestValidationError(
                f"request body is not valid JSON: {error}"
            ) from error

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        """Route ``GET``: ``/v1/metrics`` and ``/v1/health``."""
        try:
            if self.path == "/v1/metrics":
                self._send_json(200, self.server.runtime.metrics())
            elif self.path == "/v1/health":
                snapshot = self.server.runtime.metrics()["service"]
                self._send_json(
                    200,
                    {
                        "status": "ok" if snapshot["started"] else "closed",
                        "uptime_s": snapshot["uptime_s"],
                        "queue_depth": snapshot["queue_depth"],
                    },
                )
            else:
                self._send_json(
                    404, {"error": {"type": "NotFound", "message": self.path}}
                )
        except Exception as error:  # pragma: no cover - transport guard
            self._send_error(error)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        """Route ``POST``: ``/v1/run`` and ``/v1/sweep``."""
        try:
            if self.path == "/v1/run":
                request = _request_from_payload(self._read_body())
                outcome = self.server.runtime.run(request)
                self._send_json(
                    200,
                    {
                        "outcome": {
                            "cache_hit": outcome.cache_hit,
                            "batch_size": outcome.batch_size,
                            "latency_s": outcome.latency_s,
                        },
                        "result": outcome.result.to_dict(),
                    },
                )
            elif self.path == "/v1/sweep":
                payload = self._read_body()
                if not isinstance(payload, dict):
                    raise RequestValidationError(
                        "request body must be a JSON object"
                    )
                sweep = self.server.runtime.sweep(**payload)
                self._send_json(200, {"sweep": sweep.to_dict()})
            else:
                self._send_json(
                    404, {"error": {"type": "NotFound", "message": self.path}}
                )
        except Exception as error:
            self._send_error(error)


class ServeHTTPServer(ThreadingHTTPServer):
    """The daemon: a threading HTTP server bound to one service runtime.

    Handler threads block in :meth:`ServiceRuntime.run` bridges while the
    single event loop coalesces their requests -- which is exactly the
    concurrency shape the batcher exploits.

    Args:
        address: ``(host, port)`` to bind (port 0 picks a free port).
        runtime: a **started** :class:`ServiceRuntime`.
    """

    daemon_threads = True

    def __init__(
        self, address: Tuple[str, int], runtime: ServiceRuntime
    ) -> None:
        super().__init__(address, _Handler)
        self.runtime = runtime

    @property
    def url(self) -> str:
        """Base URL of the bound socket (usable even with port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self) -> None:
        """Stop serving, then drain and close the service runtime."""
        super().shutdown()
        self.runtime.close(drain=True)


def make_server(
    host: str = "127.0.0.1",
    port: int = 8642,
    config: Optional[ServeConfig] = None,
) -> ServeHTTPServer:
    """Build and start a serve daemon (service runtime + HTTP server).

    The returned server is bound but not serving; call
    ``serve_forever()`` (typically on a thread) and ``shutdown()`` to stop
    -- shutdown drains the request queue before returning, so accepted
    requests always complete.

    Args:
        host: interface to bind.
        port: TCP port (0 picks a free one; see :attr:`ServeHTTPServer.url`).
        config: service tunables (:class:`ServeConfig` defaults when
            omitted).
    """
    runtime = ServiceRuntime(config).start()
    try:
        return ServeHTTPServer((host, port), runtime)
    except Exception:
        runtime.close(drain=False)
        raise
