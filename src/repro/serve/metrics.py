"""Live metrics of the experiment service: counters, gauges, latencies.

The serve daemon is long-lived, so its health must be observable without
stopping it: every admission decision, batch dispatch and cache probe is
recorded here and exposed as one JSON-safe snapshot (``GET /v1/metrics`` on
the HTTP façade).  The registry is deliberately tiny and dependency-free --
plain counters, gauges and bounded-reservoir latency histograms behind one
lock -- because it is updated from both the asyncio event loop and the
executor/HTTP threads.

Derived quantities (coalesce ratio, cache hit rate, latency percentiles)
are computed at snapshot time from the raw counts, so recording stays O(1)
per event.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["LatencyWindow", "MetricsRegistry"]

#: Samples retained per latency window; percentiles are computed over the
#: most recent window, which is what a live dashboard wants anyway.
_WINDOW_SIZE = 1024


def _percentile(samples: list, fraction: float) -> float:
    """Nearest-rank percentile of a sorted sample list."""
    if not samples:
        return 0.0
    rank = min(len(samples) - 1, max(0, round(fraction * (len(samples) - 1))))
    return samples[rank]


class LatencyWindow:
    """Bounded reservoir of recent duration samples with percentile reads.

    Keeps the most recent :data:`_WINDOW_SIZE` samples in a ring buffer
    plus lifetime count/sum/max, so ``p50``/``p99`` reflect current service
    behaviour while totals keep accumulating.  Not thread-safe on its own;
    the owning :class:`MetricsRegistry` serialises access.
    """

    def __init__(self, window: int = _WINDOW_SIZE) -> None:
        self._samples: Deque[float] = deque(maxlen=window)
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        """Add one duration sample (in seconds)."""
        seconds = float(seconds)
        self._samples.append(seconds)
        self.count += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)

    def snapshot(self) -> Dict[str, float]:
        """Count, mean and p50/p99/max of the recent window (JSON-safe)."""
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "mean_s": (self.total_s / self.count) if self.count else 0.0,
            "p50_s": _percentile(ordered, 0.50),
            "p99_s": _percentile(ordered, 0.99),
            "max_s": self.max_s,
        }


class MetricsRegistry:
    """Thread-safe counters/gauges/latency windows of one service instance.

    Metric names are free-form strings; the service uses a fixed vocabulary
    (``requests_total``, ``batches_total``, ``cache_hits``, ...) documented
    in ``docs/serving.md``.  :meth:`snapshot` adds the derived ratios a
    dashboard wants -- coalesce ratio (requests dispatched per batch), hot
    cache hit rate and error totals -- so scrapers never have to re-derive
    them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._latencies: Dict[str, LatencyWindow] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the instantaneous gauge ``name`` to ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample into the latency window ``name``."""
        with self._lock:
            window = self._latencies.get(name)
            if window is None:
                window = self._latencies[name] = LatencyWindow()
            window.record(seconds)

    def counter(self, name: str) -> int:
        """Current value of the counter ``name`` (0 when never touched)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, object]:
        """One JSON-safe view: counters, gauges, latencies, derived ratios.

        Derived entries:

        * ``coalesce_ratio`` -- batched requests per dispatched batch
          (1.0 means no coalescing happened; higher is better);
        * ``cache_hit_rate`` -- hot-cache hits over hot-cache probes;
        * ``errors_total`` -- rejected + timed out + failed requests.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            latencies = {
                name: window.snapshot()
                for name, window in self._latencies.items()
            }
        batches = counters.get("batches_total", 0)
        batched = counters.get("batched_requests_total", 0)
        hits = counters.get("cache_hits", 0)
        probes = hits + counters.get("cache_misses", 0)
        derived = {
            "coalesce_ratio": (batched / batches) if batches else 0.0,
            "cache_hit_rate": (hits / probes) if probes else 0.0,
            "errors_total": (
                counters.get("rejected_total", 0)
                + counters.get("timeout_total", 0)
                + counters.get("failed_total", 0)
            ),
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "latency": latencies,
            "derived": derived,
        }
