"""The in-process asyncio core of the ``repro.serve`` experiment daemon.

Every ``repro run`` process today pays interpreter startup, registry
construction and workload profiling before its first simulated cycle.  This
module keeps all of that warm in one long-lived service:

* :class:`ExperimentService` -- an asyncio object owning warm
  :class:`~repro.api.experiment.Experiment` sessions (one per
  (config, seed, engine), so workload sparsity profiles and compiled
  programs are profiled once and reused), an admission-controlled request
  queue with per-request deadlines and bounded backpressure, and a
  **coalescing batcher** that drains compatible queued requests into single
  batched :meth:`~repro.api.experiment.Experiment.run` calls riding the
  vectorized :func:`~repro.sim.vectorized.simulate_jobs` kernel -- with
  results byte-identical to one-at-a-time dispatch (pinned by
  ``tests/serve/``);
* :class:`HotResultCache` (see :mod:`repro.serve.cache`) layered over the
  sweep service's content-hash disk cache, so repeated identical requests
  never touch the simulator;
* :class:`MetricsRegistry` (see :mod:`repro.serve.metrics`) recording
  request counts, queue depth, batch sizes, coalesce ratio, latency
  percentiles and cache hit rates;
* :class:`ServiceRuntime` -- a thread-hosted synchronous wrapper (event
  loop on a daemon thread) that the stdlib HTTP façade
  (:mod:`repro.serve.http`), the ``repro serve`` CLI and plain synchronous
  callers use.

Request identity reuses :meth:`repro.api.sweep.SweepPoint.cache_key` -- the
same content hash (experiment, canonical params, seed, engine, full config
digest, schema/package versions) keying the on-disk sweep cache -- so the
hot cache, the disk cache and the sweep service can never disagree about
which requests are "the same experiment".
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..api.experiment import EXPERIMENTS, Experiment, get_experiment_spec
from ..api.results import ExperimentResult, SweepResult, _jsonify
from ..api.sweep import (
    CACHE_BACKENDS,
    DEFAULT_CACHE_BACKEND,
    SweepPoint,
    _load_cached,
    _prime_sessions,
    _store_cached,
    run_sweep,
)
from ..sim.cycle_model import DEFAULT_ENGINE
from ..sim.engines import resolve_cycle_model_engine
from ..store import PackedResultStore, PackedStoreLockedError
from .cache import HotResultCache
from .metrics import MetricsRegistry

__all__ = [
    "ServeError",
    "RequestValidationError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "RunFailedError",
    "ServeConfig",
    "RunRequest",
    "RunOutcome",
    "ExperimentService",
    "ServiceRuntime",
]


# ---------------------------------------------------------------------------
# Typed errors (each carries the HTTP status the façade maps it to)
# ---------------------------------------------------------------------------
class ServeError(RuntimeError):
    """Base class of every typed serve-layer error.

    The class attribute :attr:`http_status` is the status code the HTTP
    façade responds with when this error reaches a handler.
    """

    #: HTTP status the façade maps this error class to.
    http_status = 500


class RequestValidationError(ServeError):
    """The request is malformed (unknown experiment/config/engine/model)."""

    http_status = 400


class QueueFullError(ServeError):
    """Admission control rejected the request: the queue is at capacity.

    The serve daemon prefers shedding load over unbounded queue growth --
    the HTTP façade maps this to ``503 Service Unavailable`` so clients
    can back off and retry.
    """

    http_status = 503


class DeadlineExceededError(ServeError):
    """The request's deadline expired before a result was produced."""

    http_status = 504


class ServiceClosedError(ServeError):
    """The service is shutting down (or never started); request refused."""

    http_status = 503


class RunFailedError(ServeError):
    """The experiment itself raised while executing; chains the cause."""

    http_status = 500


# ---------------------------------------------------------------------------
# Configuration and request/response records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`ExperimentService` instance.

    Attributes:
        max_queue: admission bound -- requests beyond this many queued (not
            yet dispatched) are rejected with :class:`QueueFullError`.
        batch_window_s: after the first queued request is picked up, the
            batcher keeps collecting compatible requests for this long
            before dispatching one coalesced batch (0 disables the wait;
            requests arriving while a batch executes still coalesce).
        default_timeout_s: per-request deadline applied when the request
            does not carry its own ``timeout_s``.
        hot_cache_size: capacity of the in-memory TTL/LRU result cache
            (0 disables it).
        hot_cache_ttl_s: TTL of hot-cache entries (``None`` never expires).
        cache_dir: optional on-disk result cache shared with the sweep
            service (same content-hash keys); probed on hot-cache misses
            and populated by every computed result.
        cache_backend: layout of ``cache_dir`` -- ``"files"`` (one JSON per
            point) or ``"packed"`` (the append-only
            :class:`repro.store.PackedResultStore`; hot-cache misses read
            it in one batch per dispatch group and computed results are
            appended in one batch).  Shared with ``repro sweep
            --cache-backend``.
        allow_heavy: admit training-based experiments (``table2``; runs for
            minutes and would monopolise the dispatch executor).  Off by
            default for a live service.
    """

    max_queue: int = 64
    batch_window_s: float = 0.005
    default_timeout_s: float = 60.0
    hot_cache_size: int = 256
    hot_cache_ttl_s: Optional[float] = 300.0
    cache_dir: Optional[Union[str, Path]] = None
    cache_backend: str = DEFAULT_CACHE_BACKEND
    allow_heavy: bool = False

    def __post_init__(self) -> None:
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.default_timeout_s <= 0:
            raise ValueError("default_timeout_s must be positive")
        if self.hot_cache_size < 0:
            raise ValueError("hot_cache_size must be >= 0")
        if self.cache_backend not in CACHE_BACKENDS:
            raise ValueError(
                f"unknown cache backend {self.cache_backend!r}; expected "
                f"one of {CACHE_BACKENDS}"
            )


@dataclass(frozen=True)
class RunRequest:
    """One experiment request submitted to the service.

    Attributes:
        experiment: experiment id (``"fig7"``, ``"table4"``, ...).
        models: workload names for model-parameterised experiments
            (``None`` expands to every registered workload at validation).
        config: registered hardware preset name.
        seed: RNG seed of the run.
        engine: registered cycle-model engine (``"vectorized"``,
            ``"scalar"``, or any backend registered via
            :func:`repro.sim.engines.register_engine`).
        params: extra experiment parameters (e.g. ``group_sizes``).
        timeout_s: per-request deadline override (``None`` uses the
            service default).
    """

    experiment: str
    models: Optional[Tuple[str, ...]] = None
    config: str = "paper-28nm"
    seed: int = 0
    engine: str = DEFAULT_ENGINE
    params: Mapping[str, Any] = field(default_factory=dict)
    timeout_s: Optional[float] = None

    def validated(self, allow_heavy: bool = False) -> "RunRequest":
        """Canonicalise and validate the request.

        Resolves the experiment spec, rejects unknown configs/engines/
        workloads and heavy (training) experiments unless admitted, and
        expands ``models=None`` to the full workload list for
        model-parameterised experiments -- so every canonical request has a
        stable :meth:`cache_key` and a well-defined row count (which is
        what makes coalesced row-splitting exact).

        Raises:
            RequestValidationError: naming the offending field.
        """
        from ..api.configs import get_config
        from ..workloads.models import get_workload, list_workloads

        try:
            spec = get_experiment_spec(self.experiment)
        except KeyError as error:
            raise RequestValidationError(str(error.args[0])) from error
        if spec.heavy and not allow_heavy:
            raise RequestValidationError(
                f"experiment {spec.id!r} trains networks (minutes-scale) and "
                "is not admitted by this service; start the daemon with "
                "allow_heavy to enable it"
            )
        try:
            get_config(self.config)
        except (KeyError, TypeError) as error:
            raise RequestValidationError(
                error.args[0] if error.args else str(error)
            ) from error
        try:
            resolve_cycle_model_engine(self.engine)
        except ValueError as error:
            raise RequestValidationError(str(error)) from error
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise RequestValidationError("timeout_s must be positive")
        models = self.models
        if spec.takes_models:
            if models is None:
                names = tuple(str(name) for name in list_workloads())
            else:
                names = tuple(str(name) for name in models)
            if not names:
                raise RequestValidationError(
                    "empty model list; omit 'models' to run every workload"
                )
            for name in names:
                try:
                    get_workload(name)
                except KeyError as error:
                    raise RequestValidationError(
                        str(error.args[0])
                    ) from error
            models = names
        elif models is not None:
            raise RequestValidationError(
                f"experiment {spec.id!r} does not take models"
            )
        extra = dict(self.params)
        if "models" in extra:
            raise RequestValidationError(
                "pass workloads via the 'models' field, not params"
            )
        allowed = set(spec.default_params)
        unknown = set(extra) - allowed
        if unknown:
            raise RequestValidationError(
                f"experiment {spec.id!r} got unexpected parameters "
                f"{sorted(unknown)}; allowed: {sorted(allowed) or 'none'}"
            )
        return RunRequest(
            experiment=spec.id,
            models=models,
            config=str(self.config),
            seed=int(self.seed),
            engine=self.engine,
            params=_jsonify(extra),
            timeout_s=self.timeout_s,
        )

    def point(self) -> SweepPoint:
        """The request as a sweep grid point (canonical cache identity)."""
        params = dict(self.params)
        if self.models is not None:
            params["models"] = list(self.models)
        return SweepPoint(
            experiment=self.experiment,
            config=self.config,
            seed=self.seed,
            params=params,
            engine=self.engine,
        )

    def cache_key(self) -> str:
        """Content hash shared with the sweep disk cache (see
        :meth:`repro.api.sweep.SweepPoint.cache_key`)."""
        return self.point().cache_key()


@dataclass(frozen=True)
class RunOutcome:
    """What the service returns for one successful request.

    Attributes:
        result: the typed experiment result (byte-identical to a direct
            ``Experiment.run`` with the same canonical parameters).
        cache_hit: True when served from the hot (in-memory) cache.
        batch_size: live requests dispatched in the same coalesced batch
            (1 for a solo dispatch; 0 for cache hits).
        latency_s: end-to-end service latency of this request.
    """

    result: ExperimentResult
    cache_hit: bool
    batch_size: int
    latency_s: float


#: Mergeable experiments (single batched run == per-request runs): the same
#: criterion the sweep shard executor applies.
_MERGEABLE = frozenset(
    spec.id
    for spec in EXPERIMENTS.values()
    if spec.takes_models and not spec.aggregates_models and not spec.heavy
)


@dataclass
class _Pending:
    """Internal queue entry: one admitted request awaiting dispatch."""

    request: RunRequest
    key: str
    point: SweepPoint
    future: "asyncio.Future[Tuple[ExperimentResult, int]]"
    deadline: float
    enqueued: float


_SHUTDOWN = object()  # queue sentinel terminating the batch loop


# ---------------------------------------------------------------------------
# The asyncio service core
# ---------------------------------------------------------------------------
class ExperimentService:
    """Long-lived async experiment service with request coalescing.

    Lifecycle: construct, ``await start()`` inside a running event loop,
    submit via :meth:`submit` / :meth:`submit_sweep`, and ``await
    close(drain=True)`` to stop -- a draining close finishes every admitted
    request before returning, so no accepted work is ever dropped.

    Dispatch model: a single batcher task pulls admitted requests off the
    queue, waits :attr:`ServeConfig.batch_window_s` for companions, groups
    compatible requests -- same (experiment, config, seed, engine,
    non-model params), mergeable experiment -- and executes each group as
    **one** batched ``Experiment.run`` on a dispatch thread (the simulation
    is CPU-bound synchronous NumPy; the event loop stays responsive).
    Requests arriving while a batch executes pile up in the queue and
    coalesce into the next batch, which is where the throughput under
    concurrent load comes from.

    Args:
        config: service tunables (:class:`ServeConfig` defaults when
            omitted).
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = MetricsRegistry()
        self.hot_cache = HotResultCache(
            capacity=self.config.hot_cache_size,
            ttl_s=self.config.hot_cache_ttl_s,
        )
        # One long-lived store instance: the in-memory index makes every
        # hot-cache-miss probe an in-process set lookup (refreshed only
        # when pack.index changes on disk).
        self._store: Optional[PackedResultStore] = (
            PackedResultStore(self.config.cache_dir)
            if self.config.cache_backend == "packed"
            and self.config.cache_dir is not None
            else None
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["asyncio.Queue[Any]"] = None
        self._batcher: Optional["asyncio.Task[None]"] = None
        self._run_executor: Optional[ThreadPoolExecutor] = None
        self._sweep_executor: Optional[ThreadPoolExecutor] = None
        self._sessions: Dict[Tuple[str, int, str], Experiment] = {}
        self._sessions_lock = threading.Lock()
        self._inflight_sweeps: set = set()
        self._started = False
        self._closing = False
        self.started_at: Optional[float] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "ExperimentService":
        """Bind to the running loop and start the batcher task."""
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._run_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-run"
        )
        self._sweep_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-serve-sweep"
        )
        self._batcher = self._loop.create_task(
            self._batch_loop(), name="repro-serve-batcher"
        )
        self._started = True
        self._closing = False
        self.started_at = time.monotonic()
        return self

    async def close(self, drain: bool = True) -> None:
        """Stop the service.

        Args:
            drain: finish every admitted request (and in-flight sweep)
                before returning -- the graceful-shutdown path.  With
                ``False``, queued requests fail with
                :class:`ServiceClosedError`.
        """
        if not self._started:
            return
        self._closing = True
        assert self._queue is not None and self._batcher is not None
        if drain:
            self._queue.put_nowait(_SHUTDOWN)
            await self._batcher
            if self._inflight_sweeps:
                await asyncio.gather(
                    *tuple(self._inflight_sweeps), return_exceptions=True
                )
        else:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is not _SHUTDOWN and not item.future.done():
                    item.future.set_exception(
                        ServiceClosedError("service closed before dispatch")
                    )
        for executor in (self._run_executor, self._sweep_executor):
            if executor is not None:
                executor.shutdown(wait=drain, cancel_futures=not drain)
        self._started = False
        self.metrics.set_gauge("queue_depth", 0)

    # -- submission -----------------------------------------------------
    async def submit(self, request: RunRequest) -> RunOutcome:
        """Admit, (possibly) coalesce and execute one experiment request.

        Returns:
            The :class:`RunOutcome` (typed result + serving metadata).

        Raises:
            RequestValidationError: malformed request.
            QueueFullError: admission control rejected the request.
            DeadlineExceededError: the deadline expired first.
            ServiceClosedError: the service is stopping or stopped.
            RunFailedError: the experiment raised while executing.
        """
        if not self._started or self._closing:
            self.metrics.increment("rejected_total")
            raise ServiceClosedError("service is not accepting requests")
        assert self._loop is not None and self._queue is not None
        start = time.monotonic()
        self.metrics.increment("requests_total")
        try:
            request = request.validated(allow_heavy=self.config.allow_heavy)
        except RequestValidationError:
            self.metrics.increment("rejected_total")
            raise
        # One SweepPoint per request: its memoized cache_key serves the hot
        # cache, the disk cache and the journal without re-hashing.
        point = request.point()
        key = point.cache_key()
        cached = self.hot_cache.get(key)
        if cached is not None:
            self.metrics.increment("cache_hits")
            self.metrics.increment("requests_ok")
            latency = time.monotonic() - start
            self.metrics.observe("request", latency)
            return RunOutcome(
                result=cached, cache_hit=True, batch_size=0, latency_s=latency
            )
        self.metrics.increment("cache_misses")
        if self._queue.qsize() >= self.config.max_queue:
            self.metrics.increment("rejected_total")
            raise QueueFullError(
                f"request queue is full ({self.config.max_queue} pending); "
                "retry later"
            )
        timeout = request.timeout_s or self.config.default_timeout_s
        pending = _Pending(
            request=request,
            key=key,
            point=point,
            future=self._loop.create_future(),
            deadline=time.monotonic() + timeout,
            enqueued=start,
        )
        self._queue.put_nowait(pending)
        self.metrics.set_gauge("queue_depth", self._queue.qsize())
        try:
            result, batch_size = await asyncio.wait_for(
                asyncio.shield(pending.future), timeout=timeout
            )
        except asyncio.TimeoutError:
            pending.future.cancel()
            self.metrics.increment("timeout_total")
            raise DeadlineExceededError(
                f"request missed its {timeout:.3f}s deadline "
                f"({request.experiment!r} on {request.config!r})"
            ) from None
        except DeadlineExceededError:
            self.metrics.increment("timeout_total")
            raise
        except ServeError:
            raise
        latency = time.monotonic() - start
        self.metrics.increment("requests_ok")
        self.metrics.observe("request", latency)
        return RunOutcome(
            result=result,
            cache_hit=False,
            batch_size=batch_size,
            latency_s=latency,
        )

    async def submit_sweep(self, **kwargs: Any) -> SweepResult:
        """Run a sweep grid on the sweep executor (off the event loop).

        Accepts the keyword arguments of :func:`repro.api.sweep.run_sweep`.
        Concurrent sweeps sharing a journal path fail fast via the
        journal's exclusive lock
        (:class:`~repro.api.sweep.SweepJournalLockedError`).

        Raises:
            ServiceClosedError: the service is stopping or stopped.
            RequestValidationError: unknown sweep parameter name.
        """
        if not self._started or self._closing:
            raise ServiceClosedError("service is not accepting requests")
        assert self._loop is not None and self._sweep_executor is not None
        allowed = {
            "experiments", "models", "configs", "seeds", "max_workers",
            "cache_dir", "params_by_experiment", "engine", "executor",
            "shards", "journal", "resume", "cache_backend",
            "transport", "sweep_dir", "transport_options",
        }
        unknown = set(kwargs) - allowed
        if unknown:
            raise RequestValidationError(
                f"unknown sweep parameters {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        self.metrics.increment("sweeps_total")
        started = time.monotonic()
        future = self._loop.run_in_executor(
            self._sweep_executor, functools.partial(run_sweep, **kwargs)
        )
        self._inflight_sweeps.add(future)
        try:
            result = await future
        except Exception:
            self.metrics.increment("sweep_failures_total")
            raise
        finally:
            self._inflight_sweeps.discard(future)
        self.metrics.observe("sweep", time.monotonic() - started)
        return result

    def snapshot(self) -> Dict[str, Any]:
        """Live metrics snapshot plus instantaneous service state."""
        payload = self.metrics.snapshot()
        payload["service"] = {
            "started": self._started,
            "closing": self._closing,
            "uptime_s": (
                time.monotonic() - self.started_at
                if self.started_at is not None
                else 0.0
            ),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "sessions": len(self._sessions),
            "hot_cache_entries": len(self.hot_cache),
            "max_queue": self.config.max_queue,
            "batch_window_s": self.config.batch_window_s,
        }
        return payload

    # -- batching -------------------------------------------------------
    @staticmethod
    def _coalesce_key(request: RunRequest) -> Optional[Tuple[Any, ...]]:
        """Compatibility bucket of a request, or ``None`` when standalone.

        Only mergeable experiments coalesce; the bucket pins everything
        except the model list *and the hardware configuration*, so a merged
        run differs from the solo runs only by model concatenation (which
        the vectorized kernel evaluates elementwise per layer -- hence
        byte-identical splitting).  Cross-config members of one bucket are
        partitioned back into per-config subgroups by
        :meth:`_execute_group`, which first precomputes their shared
        cycle-model work through the config-fused grid kernel
        (:func:`repro.sim.vectorized.simulate_grid`).
        """
        if request.experiment not in _MERGEABLE or not request.models:
            return None
        rest = tuple(sorted(dict(request.params).items()))
        return (
            request.experiment,
            request.seed,
            request.engine,
            repr(rest),
        )

    async def _batch_loop(self) -> None:
        """The batcher task: collect -> group -> dispatch, forever."""
        assert self._queue is not None and self._loop is not None
        stop = False
        while not stop:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                break
            batch: List[_Pending] = [item]
            if self.config.batch_window_s > 0:
                window_end = time.monotonic() + self.config.batch_window_s
                while True:
                    remaining = window_end - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        extra = await asyncio.wait_for(
                            self._queue.get(), timeout=remaining
                        )
                    except asyncio.TimeoutError:
                        break
                    if extra is _SHUTDOWN:
                        stop = True
                        break
                    batch.append(extra)
            while not stop:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _SHUTDOWN:
                    stop = True
                    break
                batch.append(extra)
            self.metrics.set_gauge("queue_depth", self._queue.qsize())
            await self._dispatch(batch)

    async def _dispatch(self, batch: List[_Pending]) -> None:
        """Group one drained batch and execute each group on the executor."""
        assert self._loop is not None and self._run_executor is not None
        groups: Dict[Any, List[_Pending]] = {}
        standalone: List[List[_Pending]] = []
        for pending in batch:
            key = self._coalesce_key(pending.request)
            if key is None:
                standalone.append([pending])
            else:
                groups.setdefault(key, []).append(pending)
        for group in list(groups.values()) + standalone:
            now = time.monotonic()
            live: List[_Pending] = []
            for pending in group:
                if pending.future.done():
                    continue  # caller gave up (deadline raced the batcher)
                if now >= pending.deadline:
                    pending.future.set_exception(
                        DeadlineExceededError(
                            "deadline expired while queued "
                            f"({pending.request.experiment!r})"
                        )
                    )
                    continue
                live.append(pending)
            if not live:
                continue
            self.metrics.increment("batches_total")
            self.metrics.increment("batched_requests_total", len(live))
            self.metrics.observe("batch_size", float(len(live)))
            started = time.monotonic()
            outcomes = await self._loop.run_in_executor(
                self._run_executor, self._execute_group, live
            )
            self.metrics.observe("batch_execute", time.monotonic() - started)
            for pending, outcome in zip(live, outcomes):
                if isinstance(outcome, Exception):
                    self.metrics.increment("failed_total")
                    if not pending.future.done():
                        pending.future.set_exception(outcome)
                else:
                    self.hot_cache.put(pending.key, outcome)
                    if not pending.future.done():
                        pending.future.set_result((outcome, len(live)))

    # -- synchronous execution (dispatch thread) ------------------------
    def _session_for(self, config: str, seed: int, engine: str) -> Experiment:
        """The warm session of (config, seed, engine), created on demand.

        Same-(seed, engine) sessions are cloned via
        :meth:`~repro.api.experiment.Experiment.with_config` so they share
        one workload-profile cache -- the prerequisite for the cross-config
        fused prime pass (primed entries are identity-checked against the
        profile object the consuming session resolves).
        """
        key = (config, seed, engine)
        with self._sessions_lock:
            session = self._sessions.get(key)
            if session is None:
                for (_, other_seed, other_engine), other in list(
                    self._sessions.items()
                ):
                    if other_seed == seed and other_engine == engine:
                        session = other.with_config(config)
                        break
                else:
                    session = Experiment(
                        config=config, seed=seed, engine=engine
                    )
                self._sessions[key] = session
                self.metrics.set_gauge("sessions", len(self._sessions))
        return session

    def _session(self, request: RunRequest) -> Experiment:
        """The warm session serving ``request`` (see :meth:`_session_for`)."""
        return self._session_for(request.config, request.seed, request.engine)

    def _execute_group(
        self, group: Sequence[_Pending]
    ) -> List[Union[ExperimentResult, Exception]]:
        """Execute one compatible group synchronously (on the executor).

        The group is partitioned into per-config subgroups (the coalesce
        key deliberately ignores the configuration).  When more than one
        config participates, the shared cycle-model work is first
        precomputed through the config-fused grid kernel and each config's
        session primed with its byte-identical slice (see
        :func:`repro.api.sweep._prime_sessions`); each subgroup then runs
        on its own warm session exactly as before -- so fused and unfused
        dispatch produce identical results.
        """
        subgroups: Dict[str, List[_Pending]] = {}
        for pending in group:
            subgroups.setdefault(pending.request.config, []).append(pending)
        if len(subgroups) > 1:
            self.metrics.increment("cross_config_groups")
            _prime_sessions(
                [(i, p.point) for i, p in enumerate(group)],
                self._session_for,
            )
        computed: Dict[str, Union[ExperimentResult, Exception]] = {}
        for members in subgroups.values():
            self._execute_subgroup(members, computed)
        return [computed[pending.key] for pending in group]

    def _execute_subgroup(
        self,
        members: Sequence[_Pending],
        computed: Dict[str, Union[ExperimentResult, Exception]],
    ) -> None:
        """Execute one same-config subgroup into ``computed``.

        Requests with identical cache keys are deduplicated (computed
        once, shared); the disk cache (when configured) is probed before
        any simulation -- on the packed backend that is ONE batched
        :meth:`~repro.store.PackedResultStore.get_many` read for the whole
        subgroup, the same store a ``repro sweep --cache-backend packed``
        populates; the remaining unique requests are merged into one
        batched ``Experiment.run`` when there is more than one, falling
        back to per-request execution on any merge failure so the
        offending request is identified precisely.  Computed results are
        written back the same way (one batched, best-effort store append,
        or one per-file write each).
        """
        session = self._session(members[0].request)
        cache_dir = self.config.cache_dir
        store = self._store
        candidates: List[_Pending] = []
        for pending in members:
            if pending.key in computed or any(
                p.key == pending.key for p in candidates
            ):
                continue
            candidates.append(pending)
        unique: List[_Pending] = []
        if store is not None:
            store.maybe_refresh()
            fetched = store.get_many(p.key for p in candidates)
            for pending in candidates:
                cached = fetched.get(pending.key)
                if cached is not None:
                    computed[pending.key] = cached
                    self.metrics.increment("disk_cache_hits")
                else:
                    unique.append(pending)
        elif cache_dir is not None:
            for pending in candidates:
                cached = _load_cached(pending.point, cache_dir)
                if cached is not None:
                    computed[pending.key] = cached
                    self.metrics.increment("disk_cache_hits")
                else:
                    unique.append(pending)
        else:
            unique = candidates
        merged: Dict[str, ExperimentResult] = {}
        if len(unique) > 1:
            merged = self._run_merged(session, unique)
        if merged:
            computed.update(merged)
        else:
            for pending in unique:
                computed[pending.key] = self._run_single(session, pending)
        if store is not None:
            fresh = [
                (pending.key, computed[pending.key])
                for pending in unique
                if isinstance(computed.get(pending.key), ExperimentResult)
            ]
            if fresh:
                try:
                    store.append_many(fresh)
                except PackedStoreLockedError as error:
                    # Persisting is best-effort for a live service: a
                    # concurrent writer must not fail the request.
                    warnings.warn(
                        f"skipping packed-store append ({error}); results "
                        "served from memory only",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        elif cache_dir is not None:
            for pending in unique:
                outcome = computed.get(pending.key)
                if isinstance(outcome, ExperimentResult):
                    _store_cached(pending.point, outcome, cache_dir)

    def _run_single(
        self, session: Experiment, pending: _Pending
    ) -> Union[ExperimentResult, Exception]:
        """One request, one ``Experiment.run``; failures become values."""
        try:
            return session.run(
                pending.request.experiment, **pending.point.params
            )
        except Exception as error:
            return RunFailedError(
                f"experiment failed: {pending.point.describe()}: "
                f"{type(error).__name__}: {error}"
            )

    def _run_merged(
        self, session: Experiment, group: Sequence[_Pending]
    ) -> Dict[str, ExperimentResult]:
        """Coalesce a group into one batched run and split the rows back.

        Mirrors the sweep shard executor's merge: the model lists are
        concatenated into a single ``Experiment.run`` (one vectorized
        cycle-model pass for the whole group) and the returned rows are
        sliced back per request -- byte-identical to solo dispatch because
        the vectorized kernel is elementwise per layer and row order
        follows model order.  Returns ``{}`` on any failure so the caller
        falls back to per-request execution.
        """
        first = group[0]
        counts = [len(pending.request.models or ()) for pending in group]
        models: List[str] = []
        for pending in group:
            models.extend(pending.request.models or ())
        base_params = {
            name: value
            for name, value in first.point.params.items()
            if name != "models"
        }
        try:
            combined = session.run(
                first.request.experiment, models=models, **base_params
            )
            if len(combined.rows) != len(models):
                raise ValueError(
                    f"merged run returned {len(combined.rows)} rows for "
                    f"{len(models)} models"
                )
        except Exception:
            return {}
        resolved = list(combined.params["models"])
        outcomes: Dict[str, ExperimentResult] = {}
        offset = 0
        for pending, count in zip(group, counts):
            params = dict(combined.params)
            params["models"] = resolved[offset : offset + count]
            outcomes[pending.key] = ExperimentResult(
                experiment=combined.experiment,
                rows=combined.rows[offset : offset + count],
                params=params,
                seed=combined.seed,
                config=combined.config,
            )
            offset += count
        return outcomes


# ---------------------------------------------------------------------------
# Thread-hosted synchronous wrapper
# ---------------------------------------------------------------------------
class ServiceRuntime:
    """A running :class:`ExperimentService` on a dedicated loop thread.

    This is the deployment shape of the service: the asyncio core runs on
    one daemon thread while synchronous callers -- the stdlib HTTP façade's
    handler threads, the CLI, tests, benchmarks -- submit through
    :func:`asyncio.run_coroutine_threadsafe` bridges.

    Use as a context manager, or call :meth:`start` / :meth:`close`::

        with ServiceRuntime() as runtime:
            outcome = runtime.run(RunRequest("fig7", models=("alexnet",)))

    Args:
        config: service tunables (:class:`ServeConfig` defaults when
            omitted).
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.service = ExperimentService(config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop", daemon=True
        )
        self._started = False

    def _run_loop(self) -> None:
        """Loop-thread body: run the event loop until :meth:`close`."""
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def start(self) -> "ServiceRuntime":
        """Start the loop thread and the service (idempotent)."""
        if self._started:
            return self
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.service.start(), self._loop
        ).result(timeout=10)
        self._started = True
        return self

    def __enter__(self) -> "ServiceRuntime":
        """Context-manager entry: :meth:`start`."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: draining :meth:`close`."""
        self.close()

    def run(self, request: RunRequest) -> RunOutcome:
        """Submit one request and block for its outcome (typed errors
        propagate unchanged)."""
        if not self._started:
            raise ServiceClosedError("runtime is not started")
        return asyncio.run_coroutine_threadsafe(
            self.service.submit(request), self._loop
        ).result()

    def sweep(self, **kwargs: Any) -> SweepResult:
        """Run a sweep through the service (see
        :meth:`ExperimentService.submit_sweep`)."""
        if not self._started:
            raise ServiceClosedError("runtime is not started")
        return asyncio.run_coroutine_threadsafe(
            self.service.submit_sweep(**kwargs), self._loop
        ).result()

    def metrics(self) -> Dict[str, Any]:
        """Live metrics snapshot (see :meth:`ExperimentService.snapshot`)."""
        return self.service.snapshot()

    def close(self, drain: bool = True) -> None:
        """Stop the service (draining by default) and the loop thread."""
        if not self._started:
            return
        self._started = False
        asyncio.run_coroutine_threadsafe(
            self.service.close(drain=drain), self._loop
        ).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
