"""Cycle-level performance simulation and system metrics."""

from .cycle_model import (
    SPARSITY_VARIANTS,
    CycleModel,
    LayerPerformance,
    ModelPerformance,
)
from .metrics import SystemMetrics, compute_metrics, peak_throughput_tops

__all__ = [
    "SPARSITY_VARIANTS",
    "CycleModel",
    "LayerPerformance",
    "ModelPerformance",
    "SystemMetrics",
    "compute_metrics",
    "peak_throughput_tops",
]
