"""Cycle-level performance simulation and system metrics.

Three execution styles back the simulator, all registered as first-class
engines in the registry of :mod:`repro.sim.engines`:

* the analytical cycle model with its two interchangeable engines -- the
  NumPy-vectorized batch kernel (:mod:`repro.sim.vectorized`, the default)
  and the per-layer scalar reference (``engine="scalar"``); both produce
  bitwise-identical results;
* the **trace-driven program simulator** (:mod:`repro.sim.trace`), which
  replays the compiler's whole-model programs through the top controller
  and is cross-checked against the analytical model within
  :data:`~repro.sim.trace.TRACE_TOLERANCE`.

New backends call :func:`~repro.sim.engines.register_engine` and are
automatically held to the cross-engine conformance contract
(:mod:`repro.sim.engines.conformance`, ``tests/engines/``,
``docs/testing.md``).
"""

from .engines import (
    EngineOutcome,
    EngineSpec,
    cycle_model_engines,
    engine_names,
    get_engine,
    list_engines,
    register_engine,
    resolve_cycle_model_engine,
    temporary_engine,
    unregister_engine,
)
from .cycle_model import (
    DEFAULT_ENGINE,
    ENGINES,
    SPARSITY_VARIANTS,
    CycleModel,
    LayerPerformance,
    ModelPerformance,
)
from .metrics import (
    CycleBreakdown,
    SystemMetrics,
    compute_metrics,
    peak_throughput_tops,
)
from .trace import (
    DEFAULT_SIMD_LANES,
    TRACE_TOLERANCE,
    LayerTrace,
    ProgramTrace,
    TraceSimulator,
    relative_cycle_error,
)
from .vectorized import (
    MAX_FTA_THRESHOLD,
    BatchActivity,
    ProfileArrays,
    invalidate_profile_arrays,
    profile_arrays,
    simulate_layers,
)

__all__ = [
    "SPARSITY_VARIANTS",
    "ENGINES",
    "DEFAULT_ENGINE",
    "EngineSpec",
    "EngineOutcome",
    "register_engine",
    "unregister_engine",
    "temporary_engine",
    "get_engine",
    "resolve_cycle_model_engine",
    "list_engines",
    "engine_names",
    "cycle_model_engines",
    "CycleModel",
    "LayerPerformance",
    "ModelPerformance",
    "CycleBreakdown",
    "SystemMetrics",
    "compute_metrics",
    "peak_throughput_tops",
    "TRACE_TOLERANCE",
    "DEFAULT_SIMD_LANES",
    "LayerTrace",
    "ProgramTrace",
    "TraceSimulator",
    "relative_cycle_error",
    "MAX_FTA_THRESHOLD",
    "BatchActivity",
    "ProfileArrays",
    "profile_arrays",
    "invalidate_profile_arrays",
    "simulate_layers",
]
