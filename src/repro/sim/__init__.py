"""Cycle-level performance simulation and system metrics.

Two engines back the cycle model: the NumPy-vectorized batch kernel
(:mod:`repro.sim.vectorized`, the default) and the per-layer scalar
reference (``engine="scalar"``); both produce bitwise-identical results.
"""

from .cycle_model import (
    DEFAULT_ENGINE,
    ENGINES,
    SPARSITY_VARIANTS,
    CycleModel,
    LayerPerformance,
    ModelPerformance,
)
from .metrics import SystemMetrics, compute_metrics, peak_throughput_tops
from .vectorized import (
    MAX_FTA_THRESHOLD,
    BatchActivity,
    ProfileArrays,
    simulate_layers,
)

__all__ = [
    "SPARSITY_VARIANTS",
    "ENGINES",
    "DEFAULT_ENGINE",
    "CycleModel",
    "LayerPerformance",
    "ModelPerformance",
    "SystemMetrics",
    "compute_metrics",
    "peak_throughput_tops",
    "MAX_FTA_THRESHOLD",
    "BatchActivity",
    "ProfileArrays",
    "simulate_layers",
]
