"""Cycle-level performance and energy model of DB-PIM vs the dense baseline.

This is the analytical counterpart of the paper's cycle-accurate C++
simulator: for every layer of a workload it derives, from the static mapping
and the layer's sparsity profile, the broadcast cycles, cell activity,
metadata traffic and buffer traffic -- and from those the latency and energy
of the four configurations compared in Fig. 7:

* ``base``            -- dense digital PIM baseline,
* ``input sparsity``  -- baseline mapping + IPU zero-column skipping,
* ``weight sparsity`` -- dyadic-block mapping, no input skipping,
* ``hybrid sparsity`` -- both (the full DB-PIM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.config import DBPIMConfig
from ..arch.energy import EnergyBreakdown, EnergyModel
from ..compiler.mapping import map_layer
from ..workloads.layers import LayerShape
from ..workloads.profiles import LayerSparsityProfile, ModelSparsityProfile

__all__ = ["LayerPerformance", "ModelPerformance", "CycleModel", "SPARSITY_VARIANTS"]

#: The four configurations of Fig. 7, in plotting order.
SPARSITY_VARIANTS = ("base", "input", "weight", "hybrid")


@dataclass
class LayerPerformance:
    """Latency / energy / activity of one layer under one configuration."""

    layer: LayerShape
    cycles: float
    cell_activations: float
    effective_cell_activations: float
    energy: EnergyBreakdown
    macs: int

    @property
    def actual_utilization(self) -> float:
        """``U_act`` of Eq. (1) for this layer."""
        if self.cell_activations == 0:
            return 0.0
        return self.effective_cell_activations / self.cell_activations


@dataclass
class ModelPerformance:
    """Aggregated performance of a whole workload under one configuration."""

    name: str
    variant: str
    layers: List[LayerPerformance] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return sum(layer.energy.total_pj for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def actual_utilization(self) -> float:
        total = sum(layer.cell_activations for layer in self.layers)
        effective = sum(layer.effective_cell_activations for layer in self.layers)
        return effective / total if total else 0.0

    def energy_breakdown(self) -> Dict[str, float]:
        """Component-wise energy of the whole model (pJ)."""
        combined = EnergyBreakdown()
        for layer in self.layers:
            combined.merge(layer.energy)
        return combined.as_dict()


class CycleModel:
    """Analytical latency/energy model over workload sparsity profiles."""

    def __init__(
        self,
        config: Optional[DBPIMConfig] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.config = config or DBPIMConfig()
        self.energy_model = energy_model or EnergyModel()

    # ------------------------------------------------------------------
    # Configuration variants
    # ------------------------------------------------------------------
    def variant_config(self, variant: str) -> DBPIMConfig:
        """The hardware configuration of one Fig. 7 variant."""
        if variant == "base":
            return self.config.dense_baseline()
        if variant == "input":
            return self.config.input_sparsity_only()
        if variant == "weight":
            return self.config.weight_sparsity_only()
        if variant == "hybrid":
            return self.config
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {SPARSITY_VARIANTS}"
        )

    # ------------------------------------------------------------------
    # Per-layer model
    # ------------------------------------------------------------------
    def run_layer(
        self, profile: LayerSparsityProfile, variant: str = "hybrid"
    ) -> LayerPerformance:
        """Latency/energy of one layer under one configuration."""
        config = self.variant_config(variant)
        layer = profile.layer
        mapping = map_layer(
            layer,
            config=config,
            thresholds=profile.thresholds if config.weight_sparsity else None,
            input_active_columns=(
                profile.input_active_columns if config.input_sparsity else None
            ),
        )
        cycles = mapping.total_cycles
        cell_activations = mapping.total_cell_activations
        if config.weight_sparsity:
            # Cells hold Comp. Pattern blocks; padding slots are the only
            # ineffective cells.
            effective = cell_activations * profile.storage_utilization
        else:
            # Cells hold plain binary weights; only the non-zero bits do
            # useful work.
            effective = cell_activations * (1.0 - profile.weight_zero_bit_ratio_binary)
        adder_ops = cell_activations
        post_processing_ops = cycles * mapping.filters_per_pass
        ipu_bits = layer.activation_count * config.macro.input_bits
        weight_bytes = layer.weight_count * (1 if config.weight_sparsity else 1)
        meta_bytes = (
            layer.weight_count if config.weight_sparsity else 0
        )
        feature_bytes = layer.activation_count + layer.out_channels * layer.output_positions
        energy = self.energy_model.layer_energy(
            cycles=cycles,
            cell_activations=cell_activations,
            adder_tree_ops=adder_ops,
            post_processing_ops=post_processing_ops,
            ipu_bits=ipu_bits,
            meta_rf_bytes=meta_bytes,
            buffer_bytes=weight_bytes + feature_bytes,
        )
        return LayerPerformance(
            layer=layer,
            cycles=cycles,
            cell_activations=cell_activations,
            effective_cell_activations=effective,
            energy=energy,
            macs=layer.macs,
        )

    # ------------------------------------------------------------------
    # Whole-model model
    # ------------------------------------------------------------------
    def run_model(
        self, profile: ModelSparsityProfile, variant: str = "hybrid"
    ) -> ModelPerformance:
        """Latency/energy of a whole workload under one configuration."""
        performance = ModelPerformance(
            name=profile.workload.name, variant=variant
        )
        for layer_profile in profile.layers:
            performance.layers.append(self.run_layer(layer_profile, variant))
        return performance

    def run_all_variants(
        self, profile: ModelSparsityProfile
    ) -> Dict[str, ModelPerformance]:
        """Run the four Fig. 7 configurations for one workload."""
        return {
            variant: self.run_model(profile, variant)
            for variant in SPARSITY_VARIANTS
        }

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @staticmethod
    def speedup(
        baseline: ModelPerformance, improved: ModelPerformance
    ) -> float:
        """Cycle-count speedup of ``improved`` over ``baseline``."""
        if improved.total_cycles <= 0:
            raise ValueError("improved configuration reports zero cycles")
        return baseline.total_cycles / improved.total_cycles

    @staticmethod
    def energy_saving(
        baseline: ModelPerformance, improved: ModelPerformance
    ) -> float:
        """Fractional energy saving of ``improved`` over ``baseline``."""
        if baseline.total_energy_pj <= 0:
            raise ValueError("baseline configuration reports zero energy")
        return 1.0 - improved.total_energy_pj / baseline.total_energy_pj
