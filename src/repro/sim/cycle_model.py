"""Cycle-level performance and energy model of DB-PIM vs the dense baseline.

This is the analytical counterpart of the paper's cycle-accurate C++
simulator: for every layer of a workload it derives, from the static mapping
and the layer's sparsity profile, the broadcast cycles, cell activity,
metadata traffic and buffer traffic -- and from those the latency and energy
of the four configurations compared in Fig. 7:

* ``base``            -- dense digital PIM baseline,
* ``input sparsity``  -- baseline mapping + IPU zero-column skipping,
* ``weight sparsity`` -- dyadic-block mapping, no input skipping,
* ``hybrid sparsity`` -- both (the full DB-PIM).

Interchangeable engines back the model, resolved through the engine
registry of :mod:`repro.sim.engines` (see :data:`ENGINES`,
``docs/performance.md`` and ``docs/testing.md``):

* ``"vectorized"`` (default) -- the NumPy batch kernel of
  :mod:`repro.sim.vectorized`, which evaluates whole layers -- and batches
  of (model, variant, config) jobs via :meth:`CycleModel.run_batch` -- as
  array operations;
* ``"scalar"`` -- the original per-layer reference implementation, kept
  selectable for auditing; every other registered cycle-model engine is
  pinned bitwise-equal to it by the auto-applied conformance suite in
  ``tests/engines/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__docformat__ = "numpy"

from ..arch.config import DBPIMConfig, SPARSITY_VARIANTS
from ..arch.energy import EnergyBreakdown, EnergyModel
from ..compiler.mapping import map_layer
from ..workloads.layers import LayerShape
from ..workloads.profiles import LayerSparsityProfile, ModelSparsityProfile
from .engines import (
    EngineSpec,
    cycle_model_engines,
    resolve_cycle_model_engine,
)
from .vectorized import (
    BatchActivity,
    ProfileArrays,
    profile_arrays,
)

__all__ = [
    "LayerPerformance",
    "ModelPerformance",
    "CycleModel",
    "SPARSITY_VARIANTS",
    "ENGINES",
    "DEFAULT_ENGINE",
]

#: The cycle-model-capable engines registered at import time, in
#: registration order.  Kept as a module constant for backwards
#: compatibility; the engine registry (:mod:`repro.sim.engines`) is the
#: live source of truth and also covers engines registered later.
ENGINES = cycle_model_engines()

#: Engine used when none is requested: the NumPy batch kernel.
DEFAULT_ENGINE = "vectorized"


@dataclass
class LayerPerformance:
    """Latency / energy / activity of one layer under one configuration.

    Attributes
    ----------
    layer : LayerShape
        The layer the numbers describe.
    cycles : float
        Bit-serial broadcast cycles of the whole layer.
    cell_activations : float
        6T cells driven over all cycles.
    effective_cell_activations : float
        Cells whose activation did useful work (``U_act`` numerator).
    energy : EnergyBreakdown
        Component-wise energy of the layer (pJ).
    macs : int
        Multiply-accumulate operations of the layer.
    """

    layer: LayerShape
    cycles: float
    cell_activations: float
    effective_cell_activations: float
    energy: EnergyBreakdown
    macs: int

    @property
    def actual_utilization(self) -> float:
        """``U_act`` of Eq. (1) for this layer."""
        if self.cell_activations == 0:
            return 0.0
        return self.effective_cell_activations / self.cell_activations


@dataclass
class ModelPerformance:
    """Aggregated performance of a whole workload under one configuration.

    Attributes
    ----------
    name : str
        Workload name.
    variant : str
        The Fig. 7 configuration the numbers belong to (``"base"``,
        ``"input"``, ``"weight"`` or ``"hybrid"``).
    layers : list of LayerPerformance
        Per-layer results, in network order.
    """

    name: str
    variant: str
    layers: List[LayerPerformance] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """Broadcast cycles summed over every layer."""
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_energy_pj(self) -> float:
        """Energy summed over every layer, in pJ."""
        return sum(layer.energy.total_pj for layer in self.layers)

    @property
    def total_macs(self) -> int:
        """Multiply-accumulates summed over every layer."""
        return sum(layer.macs for layer in self.layers)

    @property
    def actual_utilization(self) -> float:
        """Model-level ``U_act``: effective / total cell activations."""
        total = sum(layer.cell_activations for layer in self.layers)
        effective = sum(layer.effective_cell_activations for layer in self.layers)
        return effective / total if total else 0.0

    def energy_breakdown(self) -> Dict[str, float]:
        """Component-wise energy of the whole model (pJ)."""
        combined = EnergyBreakdown()
        for layer in self.layers:
            combined.merge(layer.energy)
        return combined.as_dict()


class CycleModel:
    """Analytical latency/energy model over workload sparsity profiles.

    Parameters
    ----------
    config : DBPIMConfig, optional
        Hardware configuration (the paper's DB-PIM default when omitted).
    energy_model : EnergyModel, optional
        Activity-to-energy pricing (shared component library default).
    engine : str, optional
        Name of a registered cycle-model engine (see
        :mod:`repro.sim.engines`): ``"vectorized"`` (default) for the NumPy
        batch kernel or ``"scalar"`` for the per-layer reference
        implementation; all cycle-model engines produce bitwise-identical
        results (pinned by the conformance suite in ``tests/engines/``).

    Raises
    ------
    ValueError
        For an unregistered engine name (listing the registered engines
        sorted), or a registered engine that is not cycle-model-capable.
    """

    def __init__(
        self,
        config: Optional[DBPIMConfig] = None,
        energy_model: Optional[EnergyModel] = None,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.engine_spec: EngineSpec = resolve_cycle_model_engine(engine)
        self.config = config or DBPIMConfig()
        self.energy_model = energy_model or EnergyModel()
        self.engine = self.engine_spec.name
        #: ``(id(profile), variant) -> (profile, performance)`` hand-off
        #: memo filled by :meth:`prime` and consumed (once per entry) by
        #: :meth:`run_batch`; the stored profile reference both keeps the
        #: ``id`` stable and lets lookups verify identity.
        self._primed: Dict[
            Tuple[int, str], Tuple[ModelSparsityProfile, ModelPerformance]
        ] = {}

    # ------------------------------------------------------------------
    # Configuration variants
    # ------------------------------------------------------------------
    @staticmethod
    def variant_config_of(config: DBPIMConfig, variant: str) -> DBPIMConfig:
        """The Fig. 7 variant of an arbitrary base configuration.

        Parameters
        ----------
        config : DBPIMConfig
            Base (hybrid) hardware configuration.
        variant : str
            One of :data:`SPARSITY_VARIANTS`.

        Returns
        -------
        DBPIMConfig
            ``config`` with the variant's sparsity flags applied.
        """
        return config.for_variant(variant)

    def variant_config(self, variant: str) -> DBPIMConfig:
        """The hardware configuration of one Fig. 7 variant."""
        return self.variant_config_of(self.config, variant)

    # ------------------------------------------------------------------
    # Per-layer model (scalar reference; also the single-layer API)
    # ------------------------------------------------------------------
    def run_layer(
        self, profile: LayerSparsityProfile, variant: str = "hybrid"
    ) -> LayerPerformance:
        """Latency/energy of one layer under one configuration.

        Always evaluated by the scalar reference path (a single layer has
        nothing to batch).

        Parameters
        ----------
        profile : LayerSparsityProfile
            The layer's sparsity statistics.
        variant : str, optional
            One of :data:`SPARSITY_VARIANTS` (default ``"hybrid"``).

        Returns
        -------
        LayerPerformance
            The layer's cycles, cell activity and energy.
        """
        config = self.variant_config(variant)
        layer = profile.layer
        mapping = map_layer(
            layer,
            config=config,
            thresholds=profile.thresholds if config.weight_sparsity else None,
            input_active_columns=(
                profile.input_active_columns if config.input_sparsity else None
            ),
        )
        cycles = mapping.total_cycles
        cell_activations = mapping.total_cell_activations
        if config.weight_sparsity:
            # Cells hold Comp. Pattern blocks; padding slots are the only
            # ineffective cells.
            effective = cell_activations * profile.storage_utilization
        else:
            # Cells hold plain binary weights; only the non-zero bits do
            # useful work.
            effective = cell_activations * (1.0 - profile.weight_zero_bit_ratio_binary)
        adder_ops = cell_activations
        post_processing_ops = cycles * mapping.filters_per_pass
        ipu_bits = layer.activation_count * config.macro.input_bits
        weight_bytes = layer.weight_count * (1 if config.weight_sparsity else 1)
        meta_bytes = (
            layer.weight_count if config.weight_sparsity else 0
        )
        feature_bytes = layer.activation_count + layer.out_channels * layer.output_positions
        energy = self.energy_model.layer_energy(
            cycles=cycles,
            cell_activations=cell_activations,
            adder_tree_ops=adder_ops,
            post_processing_ops=post_processing_ops,
            ipu_bits=ipu_bits,
            meta_rf_bytes=meta_bytes,
            buffer_bytes=weight_bytes + feature_bytes,
        )
        return LayerPerformance(
            layer=layer,
            cycles=cycles,
            cell_activations=cell_activations,
            effective_cell_activations=effective,
            energy=energy,
            macs=layer.macs,
        )

    # ------------------------------------------------------------------
    # Whole-model model
    # ------------------------------------------------------------------
    def run_model(
        self, profile: ModelSparsityProfile, variant: str = "hybrid"
    ) -> ModelPerformance:
        """Latency/energy of a whole workload under one configuration.

        Dispatches to the engine selected at construction; every
        registered cycle-model engine returns identical numbers.

        Parameters
        ----------
        profile : ModelSparsityProfile
            The profiled workload.
        variant : str, optional
            One of :data:`SPARSITY_VARIANTS` (default ``"hybrid"``).

        Returns
        -------
        ModelPerformance
            Per-layer and aggregate performance of the workload.
        """
        if not self.engine_spec.batch:
            return self._run_model_scalar(profile, variant)
        return self.run_batch([(profile, variant)])[0]

    def _run_model_scalar(
        self,
        profile: ModelSparsityProfile,
        variant: str,
        base_config: Optional[DBPIMConfig] = None,
    ) -> ModelPerformance:
        """Reference per-layer loop (the original engine)."""
        if base_config is not None and base_config is not self.config:
            reference = CycleModel(
                base_config, self.energy_model, engine="scalar"
            )
            return reference._run_model_scalar(profile, variant)
        performance = ModelPerformance(
            name=profile.workload.name, variant=variant
        )
        for layer_profile in profile.layers:
            performance.layers.append(self.run_layer(layer_profile, variant))
        return performance

    def run_all_variants(
        self, profile: ModelSparsityProfile
    ) -> Dict[str, ModelPerformance]:
        """Run the four Fig. 7 configurations for one workload.

        With the vectorized engine all four variants are evaluated as one
        batched array pass over the profile.

        Parameters
        ----------
        profile : ModelSparsityProfile
            The profiled workload.

        Returns
        -------
        dict of str to ModelPerformance
            One entry per :data:`SPARSITY_VARIANTS` name.
        """
        if not self.engine_spec.batch:
            return {
                variant: self._run_model_scalar(profile, variant)
                for variant in SPARSITY_VARIANTS
            }
        performances = self.run_batch(
            [(profile, variant) for variant in SPARSITY_VARIANTS]
        )
        return dict(zip(SPARSITY_VARIANTS, performances))

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def run_batch(
        self,
        jobs: Sequence[Tuple[ModelSparsityProfile, str]],
        configs: Optional[Sequence[DBPIMConfig]] = None,
    ) -> List[ModelPerformance]:
        """Evaluate many (profile, variant) jobs in one vectorized pass.

        Dispatches through the engine's registered
        :attr:`~repro.sim.engines.EngineSpec.run_jobs` hook.  With the
        vectorized engine the layers of every job are concatenated into a
        single structure-of-arrays batch -- hardware geometry and sparsity
        flags become per-layer arrays -- so an entire design-space axis
        (models, variants, macro counts, ...) is simulated by one NumPy
        expression instead of nested Python loops.  With the scalar engine
        the jobs fall back to a per-job reference loop.

        Parameters
        ----------
        jobs : sequence of (ModelSparsityProfile, str)
            The (workload profile, Fig. 7 variant) pairs to evaluate.
        configs : sequence of DBPIMConfig, optional
            Per-job base hardware configuration; defaults to this model's
            configuration for every job.  Must align with ``jobs``.

        Returns
        -------
        list of ModelPerformance
            One result per job, in job order.

        Raises
        ------
        ValueError
            If ``configs`` is given with a different length than ``jobs``,
            or a variant name is unknown.
        """
        jobs = list(jobs)
        if configs is None:
            if self._primed:
                return self._run_batch_primed(jobs)
            config_list = [self.config] * len(jobs)
        else:
            config_list = list(configs)
            if len(config_list) != len(jobs):
                raise ValueError(
                    f"got {len(jobs)} jobs but {len(config_list)} configs"
                )
        variant_configs = [
            self.variant_config_of(config, variant)
            for (_, variant), config in zip(jobs, config_list)
        ]
        return self.engine_spec.run_jobs(
            self, jobs, config_list, variant_configs
        )

    # ------------------------------------------------------------------
    # Cross-config result priming
    # ------------------------------------------------------------------
    def prime(
        self,
        jobs: Sequence[Tuple[ModelSparsityProfile, str]],
        performances: Sequence[ModelPerformance],
    ) -> None:
        """Pre-populate results for jobs already evaluated elsewhere.

        The hand-off half of the config-fused sweep/serve path: a single
        :meth:`run_batch` call with an explicit cross-config ``configs``
        grid evaluates every (config, profile, variant) cell through one
        fused :func:`repro.sim.vectorized.simulate_grid` pass, then each
        per-config session primes *its* cycle model with its slice.  A
        later :meth:`run_batch` under this model's own base configuration
        serves those jobs from the memo instead of recomputing them --
        byte-identical, because the primed values *are* the fused kernel's
        outputs for exactly this configuration.

        Each primed entry is consumed at most once (the memo is a hand-off,
        not a cache), and entries are verified by profile object identity
        on lookup.

        Parameters
        ----------
        jobs : sequence of (ModelSparsityProfile, str)
            The (profile, variant) jobs the results belong to.  They must
            have been evaluated under **this** model's base configuration.
        performances : sequence of ModelPerformance
            The evaluated results, aligned with ``jobs``.

        Raises
        ------
        ValueError
            If ``jobs`` and ``performances`` have different lengths.
        """
        jobs = list(jobs)
        performances = list(performances)
        if len(jobs) != len(performances):
            raise ValueError(
                f"got {len(jobs)} jobs but {len(performances)} performances"
            )
        for (profile, variant), performance in zip(jobs, performances):
            self._primed[(id(profile), str(variant))] = (profile, performance)

    def _run_batch_primed(
        self, jobs: List[Tuple[ModelSparsityProfile, str]]
    ) -> List[ModelPerformance]:
        """Serve a base-config batch from the :meth:`prime` memo, computing
        only the jobs the memo does not cover (in one engine pass)."""
        results: List[Optional[ModelPerformance]] = [None] * len(jobs)
        pending: List[int] = []
        for index, (profile, variant) in enumerate(jobs):
            entry = self._primed.pop((id(profile), str(variant)), None)
            if entry is not None and entry[0] is profile:
                results[index] = entry[1]
            else:
                pending.append(index)
        if pending:
            pending_jobs = [jobs[index] for index in pending]
            config_list = [self.config] * len(pending_jobs)
            variant_configs = [
                self.variant_config_of(config, variant)
                for (_, variant), config in zip(pending_jobs, config_list)
            ]
            computed = self.engine_spec.run_jobs(
                self, pending_jobs, config_list, variant_configs
            )
            for index, performance in zip(pending, computed):
                results[index] = performance
        return list(results)

    def _arrays_for(self, profile: ModelSparsityProfile) -> ProfileArrays:
        """Memoised :class:`ProfileArrays` of one live profile object.

        Delegates to the module-wide keyed cache
        (:func:`repro.sim.vectorized.profile_arrays`), so every engine
        instance -- including the warm sessions the serve daemon keeps --
        shares one flattened view per live profile.
        """
        return profile_arrays(profile)

    @staticmethod
    def _materialize_jobs(
        jobs: Sequence[Tuple[ModelSparsityProfile, str]],
        job_arrays: Sequence[ProfileArrays],
        activity: BatchActivity,
    ) -> List[ModelPerformance]:
        """Slice a batch back into per-job :class:`ModelPerformance`."""
        # ``.tolist()`` converts whole arrays to native Python scalars in C,
        # far cheaper than per-element indexing.
        cycles = activity.cycles.tolist()
        cells = activity.cell_activations.tolist()
        effective = activity.effective_cell_activations.tolist()
        macs = activity.macs.tolist()
        energy_lists = {
            name: values.tolist() for name, values in activity.energy.items()
        }
        results: List[ModelPerformance] = []
        offset = 0
        for (profile, variant), arrays in zip(jobs, job_arrays):
            performance = ModelPerformance(
                name=profile.workload.name, variant=variant
            )
            for index, layer in enumerate(arrays.layers, start=offset):
                energy = EnergyBreakdown(
                    **{
                        name: values[index]
                        for name, values in energy_lists.items()
                    }
                )
                performance.layers.append(
                    LayerPerformance(
                        layer=layer,
                        cycles=cycles[index],
                        cell_activations=cells[index],
                        effective_cell_activations=effective[index],
                        energy=energy,
                        macs=macs[index],
                    )
                )
            offset += len(arrays)
            results.append(performance)
        return results

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @staticmethod
    def speedup(
        baseline: ModelPerformance, improved: ModelPerformance
    ) -> float:
        """Cycle-count speedup of ``improved`` over ``baseline``.

        Raises
        ------
        ValueError
            If the improved configuration reports zero (or negative)
            cycles.
        """
        if improved.total_cycles <= 0:
            raise ValueError("improved configuration reports zero cycles")
        return baseline.total_cycles / improved.total_cycles

    @staticmethod
    def energy_saving(
        baseline: ModelPerformance, improved: ModelPerformance
    ) -> float:
        """Fractional energy saving of ``improved`` over ``baseline``.

        Raises
        ------
        ValueError
            If the baseline configuration reports non-positive energy.
        """
        if baseline.total_energy_pj <= 0:
            raise ValueError("baseline configuration reports zero energy")
        return 1.0 - improved.total_energy_pj / baseline.total_energy_pj


