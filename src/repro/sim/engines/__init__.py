"""First-class engine registry of the simulator stack.

Historically the execution engines -- the scalar per-layer reference, the
NumPy vectorized batch kernel and the trace-driven program simulator --
were identified by ad-hoc strings compared all over the stack
(``if engine == "scalar"`` in the cycle model, ``engine in ENGINES`` in the
sweep service, a pseudo-choice in the CLI).  Adding a backend meant finding
every comparison.  This package promotes the strings into a real registry:

* :class:`EngineSpec` -- one engine's identity and capabilities: whether it
  is selectable as a :class:`~repro.sim.cycle_model.CycleModel` engine,
  whether it evaluates batches of jobs in one dispatch, which sparsity
  variants it supports, whether the conformance harness compares it
  bitwise against the scalar reference or within
  :data:`~repro.sim.trace.TRACE_TOLERANCE` (trace-class engines), its
  cache-key contribution and its execution hooks;
* :func:`register_engine` -- the single hook a new backend (e.g. a future
  ``engine="jit"`` tier) calls; every consumer of engines -- the cycle
  model, :class:`~repro.api.experiment.Experiment`,
  :func:`~repro.api.sweep.run_sweep`, ``repro.serve`` and the CLI --
  resolves names through :func:`get_engine` instead of comparing strings,
  and the shared conformance suite in ``tests/engines/`` parametrizes over
  :func:`list_engines`, so a registered engine is automatically held to the
  cross-engine equivalence contract (see ``docs/testing.md``);
* :mod:`repro.sim.engines.conformance` -- the library half of that suite:
  evaluate any registered engine on any profiled workload and diff it
  against the scalar reference.

The three built-in engines (``scalar``, ``vectorized``, ``trace``) are
registered when this module imports.  Cache-key stability: an engine's
:attr:`~EngineSpec.cache_token` defaults to its name, and the token is what
:meth:`repro.api.sweep.SweepPoint.cache_key` hashes -- so the registry
refactor leaves every existing sweep/serve cache entry byte-for-byte valid
(pinned by ``tests/engines/test_cache_keys.py``), while a future backend
can rotate its own entries (e.g. ``cache_token="jit-v2"``) without
touching anybody else's.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ...arch.config import SPARSITY_VARIANTS

__all__ = [
    "EngineSpec",
    "EngineOutcome",
    "register_engine",
    "unregister_engine",
    "temporary_engine",
    "register_absent_engine",
    "absent_engines",
    "get_engine",
    "resolve_cycle_model_engine",
    "list_engines",
    "engine_names",
    "cycle_model_engines",
]


@dataclass(frozen=True)
class EngineOutcome:
    """What one engine reports for one (profile, config, variant) case.

    The common currency of the conformance harness: every registered
    engine's :attr:`EngineSpec.evaluate` hook returns one of these, and the
    harness diffs it against the scalar reference's outcome.

    Attributes:
        engine: name of the engine that produced the outcome.
        compute_cycles: total broadcast (compute) cycles of the workload --
            the quantity *every* engine class must agree on.
        performance: the full per-layer
            :class:`~repro.sim.cycle_model.ModelPerformance` when the
            engine produces one (analytical engines); ``None`` for engines
            that only report aggregate cycles (the trace simulator).  When
            present, the conformance harness compares it bitwise.
    """

    engine: str
    compute_cycles: float
    performance: Optional[Any] = None


@dataclass(frozen=True)
class EngineSpec:
    """Identity, capabilities and hooks of one registered engine.

    Attributes:
        name: unique engine name (the string users select).
        title: one-line human description (shown by ``repro list``).
        cycle_model: whether the engine is selectable as a
            :class:`~repro.sim.cycle_model.CycleModel` /
            :class:`~repro.api.experiment.Experiment` / sweep engine.
            ``False`` for engines with their own execution path (the trace
            simulator replays compiled programs instead of evaluating
            sparsity profiles).
        batch: whether the engine evaluates many (profile, variant, config)
            jobs in one dispatch (drives the batched fast paths of
            :meth:`~repro.sim.cycle_model.CycleModel.run_batch`).
        trace_class: conformance comparison mode -- ``False`` pins the
            engine *bitwise* to the scalar reference, ``True`` allows
            :data:`~repro.sim.trace.TRACE_TOLERANCE` relative error on the
            compute cycles (for engines that replay quantised compiled
            programs rather than evaluating the mapping equations).
        variants: the Fig. 7 sparsity variants the engine supports; the
            conformance suite exercises exactly these.
        cache_token: this engine's contribution to
            :meth:`repro.api.sweep.SweepPoint.cache_key`.  Defaults to the
            engine name (keeping historical cache keys byte-for-byte
            stable); bump it (e.g. ``"jit-v2"``) to invalidate only this
            engine's cached results.
        run_jobs: batched execution hook of cycle-model engines --
            ``run_jobs(model, jobs, base_configs, variant_configs)`` must
            return one ``ModelPerformance`` per job, in job order (see
            :meth:`~repro.sim.cycle_model.CycleModel.run_batch`).
            ``None`` for non-cycle-model engines.
        evaluate: conformance hook -- ``evaluate(profile, config, variant)``
            runs the engine end-to-end on one profiled workload and returns
            an :class:`EngineOutcome`.  Every registered engine must
            provide one; it is what the auto-applied suite calls.
    """

    name: str
    title: str
    cycle_model: bool = True
    batch: bool = True
    trace_class: bool = False
    variants: Tuple[str, ...] = SPARSITY_VARIANTS
    cache_token: str = ""
    run_jobs: Optional[Callable[..., List[Any]]] = None
    evaluate: Optional[Callable[..., EngineOutcome]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("engine names must be non-empty")
        if not self.cache_token:
            object.__setattr__(self, "cache_token", self.name)
        if not self.variants:
            raise ValueError(f"engine {self.name!r} supports no variants")
        if self.cycle_model and self.run_jobs is None:
            raise ValueError(
                f"cycle-model engine {self.name!r} needs a run_jobs hook"
            )
        if self.evaluate is None:
            raise ValueError(
                f"engine {self.name!r} needs an evaluate hook (the "
                "conformance harness calls it; see docs/testing.md)"
            )


#: The live registry, in registration order (insertion-ordered dict).
_REGISTRY: Dict[str, EngineSpec] = {}

#: Known-but-uninstalled engines: ``name -> install hint``.  An optional
#: backend whose import probe fails (e.g. ``jit`` without numba) records
#: itself here instead of silently vanishing, so name resolution and the
#: CLI can answer "how do I get it" rather than "never heard of it".
_ABSENT: Dict[str, str] = {}


def register_engine(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Register an engine, making it resolvable everywhere by name.

    After registration the engine is selectable wherever an ``engine=``
    argument is accepted (subject to its capabilities), contributes its
    :attr:`~EngineSpec.cache_token` to sweep/serve cache keys, and is
    automatically parametrized into the cross-engine conformance suite of
    ``tests/engines/`` the next time it runs.

    Args:
        spec: the engine to register.
        replace: allow overwriting an existing registration (off by
            default so two backends cannot silently collide on a name).

    Returns:
        The registered spec (for decorator-style chaining).

    Raises:
        ValueError: when the name is already registered and ``replace`` is
            not set.
    """
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"engine {spec.name!r} is already registered; pass replace=True "
            "to overwrite it"
        )
    _REGISTRY[spec.name] = spec
    _ABSENT.pop(spec.name, None)  # the backend became available after all
    return spec


def unregister_engine(name: str) -> None:
    """Remove an engine from the registry (primarily for tests).

    Raises:
        ValueError: when the engine is not registered.
    """
    if name not in _REGISTRY:
        raise ValueError(_unknown_engine_message(name))
    del _REGISTRY[name]


@contextmanager
def temporary_engine(spec: EngineSpec) -> Iterator[EngineSpec]:
    """Context manager registering an engine for the enclosed block only.

    The conformance self-tests use this to prove the harness catches a
    deliberately broken engine without leaking it into the registry.
    """
    register_engine(spec)
    try:
        yield spec
    finally:
        _REGISTRY.pop(spec.name, None)


def register_absent_engine(name: str, install_hint: str) -> None:
    """Record an optional engine whose backend is not installed.

    Called by an optional backend's import probe when its dependency is
    missing (e.g. :mod:`repro.sim.engines.jit` without numba).  Selecting
    the name afterwards raises (and ``repro list`` shows) the install hint
    instead of an opaque unknown-engine error; a later successful
    :func:`register_engine` of the same name clears the record.

    Args:
        name: the engine name users would select.
        install_hint: one-line remedy, e.g.
            ``"pip install 'dbpim-repro[jit]'"``.

    Raises:
        ValueError: when the name is empty or already registered as a live
            engine.
    """
    if not name:
        raise ValueError("engine names must be non-empty")
    if name in _REGISTRY:
        raise ValueError(
            f"engine {name!r} is registered and available; it cannot also "
            "be marked absent"
        )
    _ABSENT[name] = str(install_hint)


def absent_engines() -> Dict[str, str]:
    """Known-but-uninstalled optional engines, as ``{name: install hint}``.

    Empty when every known backend is importable.  ``repro list`` renders
    these as ``unavailable (<hint>)`` rows.
    """
    return dict(_ABSENT)


def _unknown_engine_message(name: str) -> str:
    """The canonical unknown-engine error text: an install hint for a
    known-but-uninstalled optional backend, otherwise the registered names
    sorted."""
    hint = _ABSENT.get(name)
    if hint is not None:
        return (
            f"engine {name!r} is not installed in this environment; "
            f"enable it with: {hint}"
        )
    return (
        f"unknown engine {name!r}; registered engines: "
        f"{sorted(_REGISTRY)}"
    )


def get_engine(name: str) -> EngineSpec:
    """Look an engine up by name.

    Raises:
        ValueError: for an unregistered name, listing the registered
            engines sorted.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(_unknown_engine_message(name)) from None


def resolve_cycle_model_engine(name: str) -> EngineSpec:
    """Resolve a name to a cycle-model-capable engine.

    The validation front door of :class:`~repro.sim.cycle_model.CycleModel`,
    :class:`~repro.api.experiment.Experiment`,
    :class:`~repro.api.sweep.SweepPoint` and ``repro.serve`` request
    validation.

    Raises:
        ValueError: for an unregistered name (listing registered engines
            sorted), or for a registered engine that is not selectable as a
            cycle-model engine (e.g. ``"trace"``).
    """
    spec = get_engine(name)
    if not spec.cycle_model:
        raise ValueError(
            f"engine {name!r} is not a cycle-model engine (cycle-model "
            f"engines: {sorted(cycle_model_engines())}); it has its own "
            "execution path -- see docs/testing.md"
        )
    return spec


def list_engines(cycle_model: Optional[bool] = None) -> List[EngineSpec]:
    """The registered engine specs, in registration order.

    Args:
        cycle_model: ``True`` to keep only cycle-model-capable engines,
            ``False`` for only the others, ``None`` (default) for all.
    """
    specs = list(_REGISTRY.values())
    if cycle_model is None:
        return specs
    return [spec for spec in specs if spec.cycle_model is cycle_model]


def engine_names(cycle_model: Optional[bool] = None) -> Tuple[str, ...]:
    """The registered engine names, in registration order (see
    :func:`list_engines` for the filter)."""
    return tuple(spec.name for spec in list_engines(cycle_model))


def cycle_model_engines() -> Tuple[str, ...]:
    """Names of the engines selectable as cycle-model engines."""
    return engine_names(cycle_model=True)


# ---------------------------------------------------------------------------
# Built-in engines
# ---------------------------------------------------------------------------
def _run_jobs_scalar(model, jobs, base_configs, variant_configs):
    """Reference execution: one per-layer scalar loop per job."""
    del variant_configs  # the scalar path applies the variant itself
    return [
        model._run_model_scalar(profile, variant, base_config=config)
        for (profile, variant), config in zip(jobs, base_configs)
    ]


def _run_jobs_vectorized(model, jobs, base_configs, variant_configs):
    """Batched execution: every job's layers in one NumPy array pass."""
    del base_configs  # the variant flags are already folded in
    if not jobs:
        return []
    from ..vectorized import simulate_jobs

    job_arrays = [model._arrays_for(profile) for profile, _ in jobs]
    activity = simulate_jobs(job_arrays, variant_configs, model.energy_model)
    return model._materialize_jobs(jobs, job_arrays, activity)


def _evaluate_cycle_model(name: str):
    """Build the conformance hook of one cycle-model engine."""

    def evaluate(profile, config, variant) -> EngineOutcome:
        """Run the engine on one profiled workload and wrap the outcome."""
        from ..cycle_model import CycleModel

        performance = CycleModel(config, engine=name).run_model(
            profile, variant
        )
        return EngineOutcome(
            engine=name,
            compute_cycles=performance.total_cycles,
            performance=performance,
        )

    return evaluate


def _evaluate_trace(profile, config, variant) -> EngineOutcome:
    """Conformance hook of the trace engine: compile, replay, report."""
    from ...compiler.pipeline import compile_model
    from ..trace import TraceSimulator

    compiled = compile_model(profile, config=config, variant=variant)
    trace = TraceSimulator(config).run(compiled)
    return EngineOutcome(engine="trace", compute_cycles=trace.compute_cycles)


register_engine(
    EngineSpec(
        name="scalar",
        title="per-layer scalar reference (the pinned ground truth)",
        batch=False,
        run_jobs=_run_jobs_scalar,
        evaluate=_evaluate_cycle_model("scalar"),
    )
)
register_engine(
    EngineSpec(
        name="vectorized",
        title="NumPy batch kernel (default; bitwise-equal to scalar)",
        batch=True,
        run_jobs=_run_jobs_vectorized,
        evaluate=_evaluate_cycle_model("vectorized"),
    )
)
register_engine(
    EngineSpec(
        name="trace",
        title="trace-driven replay of compiled whole-model programs",
        cycle_model=False,
        batch=False,
        trace_class=True,
        evaluate=_evaluate_trace,
    )
)

# The optional numba tier registers itself (or records an install hint)
# depending on whether its dependency imports -- see
# :mod:`repro.sim.engines.jit`.
from . import jit as _jit  # noqa: E402  (needs the registry above)

_jit.register_jit_engine()
