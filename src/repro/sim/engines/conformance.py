"""Cross-engine conformance harness: one contract, every engine.

The library half of the auto-applied equivalence suite in
``tests/engines/``: evaluate any registered engine on any profiled workload
and diff its :class:`~repro.sim.engines.EngineOutcome` against the scalar
reference.  The contract, per (engine, workload, preset, variant) case:

* **analytical engines** (``trace_class=False``) must be *bitwise* equal to
  the scalar reference -- every per-layer cycle count, activity counter and
  energy component, with exact ``==`` comparisons and no tolerances;
* **trace-class engines** (``trace_class=True``) must reproduce the
  reference's total compute cycles within
  :data:`~repro.sim.trace.TRACE_TOLERANCE` (the Q16.16 quantisation bound
  of the broadcast operand).

Because the suite parametrizes over :func:`~repro.sim.engines.list_engines`
and this module reads each spec's capabilities (``trace_class``,
``variants``), registering a new engine is all it takes to put it under the
contract -- no new test code.  ``docs/testing.md`` walks through authoring
and registering a backend.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from . import EngineOutcome, EngineSpec, get_engine

__all__ = [
    "REFERENCE_ENGINE",
    "ConformanceError",
    "reference_outcome",
    "conformance_mismatches",
    "assert_conformance",
    "verify_engine",
]

#: The engine every other engine is held against: the per-layer scalar
#: reference implementation.
REFERENCE_ENGINE = "scalar"


class ConformanceError(AssertionError):
    """One engine diverged from the scalar reference on one case."""


def _spec(engine: Union[str, EngineSpec]) -> EngineSpec:
    """Accept an engine by name or spec."""
    return engine if isinstance(engine, EngineSpec) else get_engine(engine)


def reference_outcome(profile, config, variant: str) -> EngineOutcome:
    """The scalar reference's outcome for one case (the ground truth)."""
    return _spec(REFERENCE_ENGINE).evaluate(profile, config, variant)


def _performance_mismatches(reference, candidate) -> List[str]:
    """Bitwise field-level diffs of two ``ModelPerformance`` records."""
    problems: List[str] = []
    if len(candidate.layers) != len(reference.layers):
        return [
            f"layer count {len(candidate.layers)} != {len(reference.layers)}"
        ]
    for ref_layer, out_layer in zip(reference.layers, candidate.layers):
        name = ref_layer.layer.name
        for attribute in (
            "cycles",
            "cell_activations",
            "effective_cell_activations",
            "macs",
        ):
            ref_value = getattr(ref_layer, attribute)
            out_value = getattr(out_layer, attribute)
            if out_value != ref_value:
                problems.append(
                    f"layer {name!r}: {attribute} {out_value!r} != "
                    f"{ref_value!r}"
                )
        if out_layer.energy.as_dict() != ref_layer.energy.as_dict():
            problems.append(
                f"layer {name!r}: energy {out_layer.energy.as_dict()!r} != "
                f"{ref_layer.energy.as_dict()!r}"
            )
    if candidate.total_cycles != reference.total_cycles:
        problems.append(
            f"total_cycles {candidate.total_cycles!r} != "
            f"{reference.total_cycles!r}"
        )
    if candidate.total_energy_pj != reference.total_energy_pj:
        problems.append(
            f"total_energy_pj {candidate.total_energy_pj!r} != "
            f"{reference.total_energy_pj!r}"
        )
    return problems


def conformance_mismatches(
    engine: Union[str, EngineSpec],
    profile,
    config,
    variant: str,
    reference: Optional[EngineOutcome] = None,
) -> List[str]:
    """Diff one engine against the scalar reference on one case.

    Args:
        engine: the engine under test (name or spec).
        profile: the profiled workload
            (:class:`~repro.workloads.profiles.ModelSparsityProfile`).
        config: the hardware configuration
            (:class:`~repro.arch.config.DBPIMConfig`).
        variant: one of the engine's supported sparsity variants.
        reference: a precomputed reference outcome (recomputed when
            omitted; pass it when sweeping many engines over one case).

    Returns:
        Human-readable mismatch descriptions; empty when the engine
        conforms.
    """
    spec = _spec(engine)
    if variant not in spec.variants:
        raise ValueError(
            f"engine {spec.name!r} does not support variant {variant!r} "
            f"(supported: {list(spec.variants)})"
        )
    if reference is None:
        reference = reference_outcome(profile, config, variant)
    outcome = spec.evaluate(profile, config, variant)
    if spec.trace_class:
        from ..trace import TRACE_TOLERANCE

        expected = reference.compute_cycles
        if expected == 0:
            error = abs(outcome.compute_cycles)
        else:
            error = abs(outcome.compute_cycles - expected) / abs(expected)
        if error > TRACE_TOLERANCE:
            return [
                f"compute_cycles {outcome.compute_cycles!r} vs reference "
                f"{expected!r} (rel err {error:.3e} > {TRACE_TOLERANCE})"
            ]
        return []
    if outcome.performance is None:
        return [
            "engine returned no ModelPerformance but is not trace-class "
            "(set trace_class=True for aggregate-only engines)"
        ]
    problems = _performance_mismatches(
        reference.performance, outcome.performance
    )
    if outcome.compute_cycles != reference.compute_cycles:
        problems.append(
            f"compute_cycles {outcome.compute_cycles!r} != "
            f"{reference.compute_cycles!r}"
        )
    return problems


def assert_conformance(
    engine: Union[str, EngineSpec],
    profile,
    config,
    variant: str,
    reference: Optional[EngineOutcome] = None,
    case: str = "",
) -> None:
    """Assert one engine conforms on one case.

    Raises:
        ConformanceError: naming the engine, the case and every mismatched
            field.
    """
    spec = _spec(engine)
    problems = conformance_mismatches(
        spec, profile, config, variant, reference=reference
    )
    if problems:
        label = case or f"{profile.workload.name}/{variant}"
        details = "\n  ".join(problems)
        raise ConformanceError(
            f"engine {spec.name!r} diverged from {REFERENCE_ENGINE!r} on "
            f"{label}:\n  {details}"
        )


def verify_engine(
    engine: Union[str, EngineSpec],
    profiles: Iterable,
    configs: Iterable,
    variants: Optional[Iterable[str]] = None,
) -> int:
    """Run one engine through a whole case matrix, failing on the first
    divergence.

    Args:
        engine: the engine under test (name or spec).
        profiles: profiled workloads to cover.
        configs: hardware configurations to cover.
        variants: sparsity variants (default: every variant the engine
            supports).

    Returns:
        The number of cases checked (for "the matrix was not empty"
        assertions).

    Raises:
        ConformanceError: on the first non-conformant case.
    """
    spec = _spec(engine)
    checked = 0
    profile_list = list(profiles)
    variant_list = tuple(variants) if variants is not None else spec.variants
    for config in configs:
        for profile in profile_list:
            for variant in variant_list:
                assert_conformance(spec, profile, config, variant)
                checked += 1
    return checked
