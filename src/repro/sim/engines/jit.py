"""Optional numba-JIT cycle-model engine (``engine="jit"``).

The third speed tier of the simulator stack (scalar reference -> NumPy
vectorized / config-fused grid -> JIT-compiled native loop).  The engine
implements the standard :attr:`~repro.sim.engines.EngineSpec.run_jobs` hook
over the same structure-of-arrays layout as the vectorized kernel
(:class:`~repro.sim.vectorized.ProfileArrays` plus per-layer hardware-knob
arrays), but evaluates the mapping equations in a single numba
``@njit``-compiled per-layer loop: no NumPy temporaries, one pass over the
batch, C-loop speed on batches too small to amortise array-op dispatch.

The arithmetic mirrors the scalar engine operation-for-operation (integer
ceil-divisions as ``-(-a // b)``, truncating ``int64`` casts, IEEE-strict
float order -- numba's default, fastmath stays off), so the engine is held
**bitwise identical** to the scalar reference by the auto-applied
conformance suite in ``tests/engines/`` like every other registered
cycle-model engine.

numba is an *optional* dependency (the ``[jit]`` extra).
:func:`register_jit_engine` probes for it at import of
:mod:`repro.sim.engines`:

* numba importable -- the engine registers normally with
  ``cache_token="jit-v1"`` (its own cache-key namespace, so switching tiers
  never aliases vectorized results);
* numba missing -- the name is recorded via
  :func:`~repro.sim.engines.register_absent_engine`, so ``repro list``
  shows ``jit  unavailable (pip install 'dbpim-repro[jit]')`` and selecting
  ``--engine jit`` exits with that hint instead of an import error.
"""

from __future__ import annotations

from typing import Any, List

__docformat__ = "numpy"

import numpy as np

from . import (
    EngineSpec,
    _evaluate_cycle_model,
    engine_names,
    register_absent_engine,
    register_engine,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "JIT_INSTALL_HINT",
    "JIT_CACHE_TOKEN",
    "register_jit_engine",
]

try:  # pragma: no cover - exercised on numba-equipped interpreters only
    import numba as _numba
except ImportError:  # pragma: no cover - the tier-1 container has no numba
    _numba = None

#: Whether the optional numba dependency imported successfully.
NUMBA_AVAILABLE = _numba is not None

#: One-line remedy surfaced when the engine is selected but not installed.
JIT_INSTALL_HINT = "pip install 'dbpim-repro[jit]'"

#: The engine's sweep/serve cache-key contribution.  Versioned separately
#: from the engine name so a future kernel change can rotate only the JIT
#: tier's cached results.
JIT_CACHE_TOKEN = "jit-v1"

#: Lazily built njit kernel (compiled on first dispatch).
_KERNEL = None


def _build_kernel():  # pragma: no cover - requires numba
    """Compile the per-layer mapping/activity loop with numba."""

    @_numba.njit
    def kernel(
        out_channels,
        reduction,
        output_positions,
        activation_count,
        weight_count,
        input_active_columns,
        storage_utilization,
        binary_zero_ratio,
        threshold_counts,
        rows,
        columns,
        input_bits,
        weight_bits,
        num_macros,
        weight_sparsity,
        input_sparsity,
    ):
        count = out_channels.shape[0]
        bins = threshold_counts.shape[1]
        cycles = np.empty(count, dtype=np.float64)
        cell_activations = np.empty(count, dtype=np.float64)
        effective = np.empty(count, dtype=np.float64)
        post_processing_ops = np.empty(count, dtype=np.float64)
        ipu_bits = np.empty(count, dtype=np.int64)
        meta_bytes = np.empty(count, dtype=np.int64)
        buffer_bytes = np.empty(count, dtype=np.int64)
        for i in range(count):
            oc = out_channels[i]
            col = columns[i]
            nm = num_macros[i]
            # filter grouping (map_layer): sparse mode groups filters by
            # FTA threshold, dense mode packs plain binary filters.
            if weight_sparsity[i]:
                iterations = np.int64(0)
                weighted = np.int64(0)
                for t in range(bins):
                    divisor = t if t > 1 else 1
                    per_macro = col // divisor
                    if per_macro < 1:
                        per_macro = np.int64(1)
                    per_pass = per_macro * nm
                    hist = threshold_counts[i, t]
                    iterations += -(-hist // per_pass)
                    weighted += per_pass * hist
                if iterations < 1:
                    iterations = np.int64(1)
                filter_iterations = iterations
                # float average then truncating cast, like the numpy
                # ``np.where(...).astype(np.int64)``
                filters_per_pass = np.int64(weighted / oc)
            else:
                dense = (col // weight_bits[i]) * nm
                filter_iterations = -(-oc // dense)
                filters_per_pass = dense
            # bit-serial cycles per pass (IPU gating): clip(x, 0, bits)
            if input_sparsity[i]:
                active = input_active_columns[i]
                limit = np.float64(input_bits[i])
                if active < 0.0:
                    active = 0.0
                if active > limit:
                    active = limit
                cycles_per_pass = active
            else:
                cycles_per_pass = np.float64(input_bits[i])
            # tiling and totals
            rows_used = reduction[i] if reduction[i] < rows[i] else rows[i]
            input_tiles = -(-reduction[i] // rows[i])
            weights_per_pass_cells = col * rows_used * nm
            total_passes = (
                filter_iterations * input_tiles * output_positions[i]
            )
            layer_cycles = total_passes * cycles_per_pass
            layer_cells = layer_cycles * weights_per_pass_cells
            cycles[i] = layer_cycles
            cell_activations[i] = layer_cells
            if weight_sparsity[i]:
                effective[i] = layer_cells * storage_utilization[i]
                meta_bytes[i] = weight_count[i]
            else:
                effective[i] = layer_cells * (1.0 - binary_zero_ratio[i])
                meta_bytes[i] = 0
            post_processing_ops[i] = layer_cycles * filters_per_pass
            ipu_bits[i] = activation_count[i] * input_bits[i]
            buffer_bytes[i] = (
                weight_count[i]
                + activation_count[i]
                + oc * output_positions[i]
            )
        return (
            cycles,
            cell_activations,
            effective,
            post_processing_ops,
            ipu_bits,
            meta_bytes,
            buffer_bytes,
        )

    return kernel


def _run_jobs_jit(
    model: Any, jobs, base_configs, variant_configs
) -> List[Any]:  # pragma: no cover - requires numba
    """Batched execution hook: one compiled loop over the whole shard."""
    del base_configs  # the variant flags are already folded in
    if not jobs:
        return []
    from ..vectorized import BatchActivity, concatenate_batches, config_knobs

    global _KERNEL
    if _KERNEL is None:
        _KERNEL = _build_kernel()
    job_arrays = [model._arrays_for(profile) for profile, _ in jobs]
    lengths = np.array([len(arrays) for arrays in job_arrays], dtype=np.int64)
    batch = concatenate_batches(job_arrays)
    knob_rows = [config_knobs(config) for config in variant_configs]

    def _per_layer(index: int, dtype) -> np.ndarray:
        return np.repeat(
            np.array([knobs[index] for knobs in knob_rows], dtype=dtype),
            lengths,
        )

    (
        cycles,
        cell_activations,
        effective,
        post_processing_ops,
        ipu_bits,
        meta_bytes,
        buffer_bytes,
    ) = _KERNEL(
        batch.out_channels,
        batch.reduction,
        batch.output_positions,
        batch.activation_count,
        batch.weight_count,
        batch.input_active_columns,
        batch.storage_utilization,
        batch.binary_zero_ratio,
        batch.threshold_counts,
        _per_layer(0, np.int64),
        _per_layer(1, np.int64),
        _per_layer(2, np.int64),
        _per_layer(3, np.int64),
        _per_layer(4, np.int64),
        _per_layer(5, np.bool_),
        _per_layer(6, np.bool_),
    )
    energy = model.energy_model.layer_energy_arrays(
        cycles=cycles,
        cell_activations=cell_activations,
        adder_tree_ops=cell_activations,
        post_processing_ops=post_processing_ops,
        ipu_bits=ipu_bits,
        meta_rf_bytes=meta_bytes,
        buffer_bytes=buffer_bytes,
    )
    activity = BatchActivity(
        cycles=cycles,
        cell_activations=cell_activations,
        effective_cell_activations=effective,
        macs=batch.macs,
        energy=energy,
    )
    return model._materialize_jobs(jobs, job_arrays, activity)


def register_jit_engine(replace: bool = False) -> bool:
    """Probe for numba and register (or mark absent) the ``jit`` engine.

    Called once when :mod:`repro.sim.engines` imports; safe to call again
    (e.g. after installing numba into a live interpreter) -- an already
    up-to-date registration is left alone unless ``replace`` is set.

    Parameters
    ----------
    replace : bool, optional
        Forwarded to :func:`~repro.sim.engines.register_engine` when numba
        is available.

    Returns
    -------
    bool
        ``True`` when the engine is registered and usable, ``False`` when
        numba is missing and the name was recorded as absent instead.
    """
    if not NUMBA_AVAILABLE:
        if "jit" not in engine_names():
            register_absent_engine("jit", JIT_INSTALL_HINT)
        return False
    if "jit" in engine_names() and not replace:
        return True
    register_engine(
        EngineSpec(
            name="jit",
            title="numba JIT-compiled per-layer loop (optional [jit] extra)",
            batch=True,
            cache_token=JIT_CACHE_TOKEN,
            run_jobs=_run_jobs_jit,
            evaluate=_evaluate_cycle_model("jit"),
        ),
        replace=replace,
    )
    return True
