"""System-level metrics: throughput, energy efficiency, utilisation.

These are the quantities of Table 3 ("Detailed Comparisons with Related
Works"): peak throughput, peak throughput per macro, energy efficiency in
TOPS/W and energy efficiency per unit area, plus the actual utilisation
``U_act`` already tracked by the cycle model.

The module also defines :class:`CycleBreakdown`, the per-unit cycle record
shared by the trace simulator (:mod:`repro.sim.trace`): compute (broadcast)
cycles plus the load/SIMD/write-back cycles the analytical model does not
price, with the overlap scheduler's hidden cycles accounted separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..arch.area import AreaModel
from ..arch.config import DBPIMConfig
from .cycle_model import ModelPerformance

__all__ = [
    "CycleBreakdown",
    "SystemMetrics",
    "compute_metrics",
    "peak_throughput_tops",
]


@dataclass(frozen=True)
class CycleBreakdown:
    """Per-unit cycle accounting of one traced program (or one layer).

    Attributes:
        compute: bit-serial broadcast cycles (the quantity the analytical
            cycle model prices; the trace-vs-analytical contract is defined
            on this field -- see ``docs/compiler.md``).
        weight_load / feature_load / metadata_load: DMA cycles of the three
            load streams.
        simd: post-processing cycles of the SIMD core.
        write_back: output write-back DMA cycles.
        hidden: cycles the overlap scheduler hides behind compute (double
            buffering / hoisted prefetch); subtracted from the serial sum.
    """

    compute: float = 0.0
    weight_load: float = 0.0
    feature_load: float = 0.0
    metadata_load: float = 0.0
    simd: float = 0.0
    write_back: float = 0.0
    hidden: float = 0.0

    @property
    def load(self) -> float:
        """All DMA load cycles (weights + features + metadata)."""
        return self.weight_load + self.feature_load + self.metadata_load

    @property
    def serial(self) -> float:
        """Cycles of a schedule with no overlap at all."""
        return self.compute + self.load + self.simd + self.write_back

    @property
    def total(self) -> float:
        """Scheduled cycles (serial minus the overlap-hidden cycles)."""
        return self.serial - self.hidden

    @property
    def hidden_fraction(self) -> float:
        """Fraction of the serial cycles the overlap scheduler hides."""
        return self.hidden / self.serial if self.serial else 0.0

    def merged(self, other: "CycleBreakdown") -> "CycleBreakdown":
        """Element-wise sum with another breakdown (both are immutable)."""
        return CycleBreakdown(
            compute=self.compute + other.compute,
            weight_load=self.weight_load + other.weight_load,
            feature_load=self.feature_load + other.feature_load,
            metadata_load=self.metadata_load + other.metadata_load,
            simd=self.simd + other.simd,
            write_back=self.write_back + other.write_back,
            hidden=self.hidden + other.hidden,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form (JSON-safe), including the derived totals."""
        return {
            "compute": self.compute,
            "weight_load": self.weight_load,
            "feature_load": self.feature_load,
            "metadata_load": self.metadata_load,
            "simd": self.simd,
            "write_back": self.write_back,
            "hidden": self.hidden,
            "total": self.total,
        }


def peak_throughput_tops(
    config: DBPIMConfig, threshold: int = 2
) -> float:
    """Peak 8b/8b throughput in TOPS.

    One 8b x 8b MAC counts as two operations (multiply + add), and a MAC of
    one (filter, input) pair completes every ``input_bits`` broadcast cycles.
    The dense baseline processes ``dense_filters_per_macro`` filters per
    macro; DB-PIM processes ``columns / φ_th``.

    Args:
        config: hardware configuration (sparsity flags select the mode).
        threshold: the ``φ_th`` assumed for the peak number (2 is the
            guaranteed-supported configuration; 1 doubles the peak).
    """
    macro = config.macro
    if config.weight_sparsity:
        filters = macro.sparse_filters_per_macro(threshold)
    else:
        filters = macro.dense_filters_per_macro
    macs_per_cycle = filters * macro.rows / macro.input_bits * config.num_macros
    ops_per_second = 2 * macs_per_cycle * config.clock.frequency_mhz * 1e6
    return ops_per_second / 1e12


@dataclass(frozen=True)
class SystemMetrics:
    """The Table 3 metrics of one configuration running one workload."""

    name: str
    variant: str
    actual_utilization: float
    latency_cycles: float
    latency_ms: float
    energy_uj: float
    peak_tops: float
    peak_gops_per_macro: float
    effective_tops: float
    tops_per_watt: float
    tops_per_watt_per_mm2: float
    area_mm2: float


def compute_metrics(
    performance: ModelPerformance,
    config: Optional[DBPIMConfig] = None,
    area_model: Optional[AreaModel] = None,
    peak_threshold: int = 2,
) -> SystemMetrics:
    """Derive the Table 3 metrics from a cycle-model run.

    Args:
        performance: output of :meth:`CycleModel.run_model`.
        config: the configuration the run used (DB-PIM default).
        area_model: area model used for the per-area efficiency.
        peak_threshold: ``φ_th`` assumed for the peak-throughput number.
    """
    config = config or DBPIMConfig()
    area_model = area_model or AreaModel()
    if performance.variant == "base":
        variant_config = config.dense_baseline()
    elif performance.variant == "input":
        variant_config = config.input_sparsity_only()
    elif performance.variant == "weight":
        variant_config = config.weight_sparsity_only()
    else:
        variant_config = config

    cycles = performance.total_cycles
    frequency_hz = variant_config.clock.frequency_mhz * 1e6
    latency_s = cycles / frequency_hz if frequency_hz else float("inf")
    energy_j = performance.total_energy_pj * 1e-12
    total_ops = 2.0 * performance.total_macs

    peak = peak_throughput_tops(variant_config, peak_threshold)
    effective_tops = (total_ops / latency_s) / 1e12 if latency_s > 0 else 0.0
    tops_per_watt = (total_ops / energy_j) / 1e12 if energy_j > 0 else 0.0
    area = area_model.breakdown(variant_config).total_mm2

    return SystemMetrics(
        name=performance.name,
        variant=performance.variant,
        actual_utilization=performance.actual_utilization,
        latency_cycles=cycles,
        latency_ms=latency_s * 1e3,
        energy_uj=energy_j * 1e6,
        peak_tops=peak,
        peak_gops_per_macro=peak * 1e3 / variant_config.num_macros,
        effective_tops=effective_tops,
        tops_per_watt=tops_per_watt,
        tops_per_watt_per_mm2=(tops_per_watt / area) if area > 0 else 0.0,
        area_mm2=area,
    )
