"""Trace-driven program simulator: replay compiled whole-model programs.

Where the analytical cycle model (:mod:`repro.sim.cycle_model`) prices a
workload from its *mapping equations*, this module executes the compiler's
actual output: it replays a :class:`~repro.compiler.pipeline.CompiledModel`
segment by segment through the :class:`~repro.arch.controller.TopController`
and aggregates per-unit busy cycles, buffer occupancy and overlap savings
into :class:`~repro.sim.metrics.CycleBreakdown` records.

Trace-vs-analytical contract
----------------------------
The analytical model charges **broadcast (compute) cycles only**.  The
trace's per-model ``compute_cycles`` must therefore reproduce
``ModelPerformance.total_cycles`` for every preset, workload and sparsity
variant -- within :data:`TRACE_TOLERANCE`, the quantisation bound of the
Q16.16 ``cycles_q16`` broadcast operand (one pass is off by at most
``0.5 / 65536`` cycles).  Everything else the trace reports -- DMA load
cycles, SIMD/write-back tails, double-buffering overlap, buffer high-water
marks -- is *additional* fidelity the analytical model does not price, and
is excluded from the contract.  The equivalence suite in
``tests/sim/test_trace.py`` pins the contract; ``docs/compiler.md``
documents it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..arch.config import DBPIMConfig
from ..arch.controller import DEFAULT_SIMD_LANES, TopController
from ..compiler.pipeline import CompiledLayerInfo, CompiledModel, compile_model
from ..compiler.schedule import DEFAULT_BYTES_PER_CYCLE
from ..workloads.profiles import ModelSparsityProfile
from .cycle_model import ModelPerformance
from .metrics import CycleBreakdown

__all__ = [
    "TRACE_TOLERANCE",
    "DEFAULT_SIMD_LANES",
    "LayerTrace",
    "ProgramTrace",
    "TraceSimulator",
    "relative_cycle_error",
]

#: Documented relative tolerance of the trace-vs-analytical contract: the
#: Q16.16 quantisation of ``cycles_q16`` bounds each pass's error to
#: ``0.5 / 65536`` cycles, which stays far below this per-model bound for
#: every realistic cycles-per-pass value.
TRACE_TOLERANCE = 1e-4

# DEFAULT_SIMD_LANES (elements the SIMD core retires per cycle) is defined
# canonically on repro.arch.controller and re-exported here via __all__.


@dataclass(frozen=True)
class LayerTrace:
    """Replay result of one layer of a compiled program.

    Attributes:
        name: layer name.
        segments: instruction-buffer refills the layer occupied.
        instructions: encoded instructions of the layer.
        dispatches: dispatched instructions (repeat counts expanded).
        breakdown: the layer's per-unit cycle accounting.
        peak_weight_buffer_bytes / peak_feature_buffer_bytes /
        peak_meta_buffer_bytes: buffer-occupancy high-water marks observed
            while replaying the layer's segments.
        residual_feature_bytes: multi-producer feature traffic of fused
            graph joins (branch operands re-read by the layer's epilogue);
            a subset of the feature-load byte traffic.
    """

    name: str
    segments: int
    instructions: int
    dispatches: int
    breakdown: CycleBreakdown
    peak_weight_buffer_bytes: int
    peak_feature_buffer_bytes: int
    peak_meta_buffer_bytes: int
    residual_feature_bytes: int = 0


@dataclass(frozen=True)
class ProgramTrace:
    """Replay result of one compiled whole-model program.

    Attributes:
        name: workload name.
        variant: the Fig. 7 sparsity variant the program was compiled for.
        layers: per-layer replay results, in network order.
    """

    name: str
    variant: str
    layers: Tuple[LayerTrace, ...]

    @property
    def breakdown(self) -> CycleBreakdown:
        """Per-unit cycles merged over every layer."""
        merged = CycleBreakdown()
        for layer in self.layers:
            merged = merged.merged(layer.breakdown)
        return merged

    @property
    def compute_cycles(self) -> float:
        """Broadcast cycles of the whole program (the contract quantity)."""
        return sum(layer.breakdown.compute for layer in self.layers)

    @property
    def total_cycles(self) -> float:
        """Scheduled cycles including non-hidden load/SIMD/write-back work."""
        return sum(layer.breakdown.total for layer in self.layers)

    @property
    def instructions(self) -> int:
        """Encoded instructions of the whole program."""
        return sum(layer.instructions for layer in self.layers)

    @property
    def residual_feature_bytes(self) -> int:
        """Multi-producer (graph-join) feature traffic of the program."""
        return sum(layer.residual_feature_bytes for layer in self.layers)

    @property
    def segments(self) -> int:
        """Instruction-buffer refills of the whole program."""
        return sum(layer.segments for layer in self.layers)


class TraceSimulator:
    """Replays compiled programs through the top controller.

    Args:
        config: base hardware configuration used when compiling inside
            :meth:`run_model` (the paper default when omitted).
        bytes_per_cycle: on-chip bus width pricing load/store traffic.
        simd_lanes: SIMD elements retired per cycle.
    """

    def __init__(
        self,
        config: Optional[DBPIMConfig] = None,
        bytes_per_cycle: int = DEFAULT_BYTES_PER_CYCLE,
        simd_lanes: int = DEFAULT_SIMD_LANES,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if simd_lanes <= 0:
            raise ValueError("simd_lanes must be positive")
        self.config = config or DBPIMConfig()
        self.bytes_per_cycle = int(bytes_per_cycle)
        self.simd_lanes = int(simd_lanes)

    def run(self, compiled: CompiledModel) -> ProgramTrace:
        """Replay one compiled model and aggregate its cycle accounting.

        Each layer's segments are executed through a
        :class:`~repro.arch.controller.TopController` built on the
        *compiled* configuration (so buffer capacities match the program),
        and the overlap decisions recorded by the compiler's passes drive
        the hidden-cycle accounting.
        """
        controller = TopController(compiled.config)
        layers = tuple(
            self._replay_layer(controller, compiled, info)
            for info in compiled.layers
        )
        return ProgramTrace(
            name=compiled.name, variant=compiled.variant, layers=layers
        )

    def run_model(
        self, profile: ModelSparsityProfile, variant: str = "hybrid"
    ) -> ProgramTrace:
        """Compile a profiled workload and replay it in one step."""
        return self.run(compile_model(profile, config=self.config, variant=variant))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _replay_layer(
        self,
        controller: TopController,
        compiled: CompiledModel,
        info: CompiledLayerInfo,
    ) -> LayerTrace:
        """Execute one layer's segments and schedule its cycles."""
        breakdown = CycleBreakdown()
        instructions = 0
        dispatches = 0
        residual_bytes = 0
        peak_weight = peak_feature = peak_meta = 0
        for segment_index in info.segment_indices:
            segment = compiled.program.segment_program(segment_index)
            summary = controller.execute(segment)
            busy = summary.busy_cycles(
                bytes_per_cycle=self.bytes_per_cycle, simd_lanes=self.simd_lanes
            )
            breakdown = breakdown.merged(
                self._schedule_segment(info, busy)
            )
            instructions += summary.instructions
            dispatches += segment.total_dispatches()
            residual_bytes += summary.residual_feature_bytes
            peak_weight = max(peak_weight, summary.peak_weight_buffer_bytes)
            peak_feature = max(peak_feature, summary.peak_feature_buffer_bytes)
            peak_meta = max(peak_meta, summary.peak_meta_buffer_bytes)
        return LayerTrace(
            name=info.name,
            segments=len(info.segment_indices),
            instructions=instructions,
            dispatches=dispatches,
            breakdown=breakdown,
            peak_weight_buffer_bytes=peak_weight,
            peak_feature_buffer_bytes=peak_feature,
            peak_meta_buffer_bytes=peak_meta,
            residual_feature_bytes=residual_bytes,
        )

    @staticmethod
    def _schedule_segment(info: CompiledLayerInfo, busy) -> CycleBreakdown:
        """Apply the overlap model to one segment's busy-cycle tallies.

        Double-buffered layers hide load cycles behind compute (up to the
        compute length); hoisted-but-single-buffered layers still prefetch
        their weight/metadata prologue behind compute.  The SIMD and
        write-back tails are serial.
        """
        compute = busy["macro"]
        weight_load = busy["dma_weight"]
        metadata_load = busy["dma_metadata"]
        feature_load = busy["dma_feature"]
        if info.double_buffered:
            hidden = min(compute, weight_load + metadata_load + feature_load)
        elif info.hoisted:
            hidden = min(compute, weight_load + metadata_load)
        else:
            hidden = 0.0
        return CycleBreakdown(
            compute=compute,
            weight_load=weight_load,
            feature_load=feature_load,
            metadata_load=metadata_load,
            simd=busy["simd"],
            write_back=busy["write_back"],
            hidden=hidden,
        )


def relative_cycle_error(
    trace: ProgramTrace, performance: ModelPerformance
) -> float:
    """Relative error of the trace's compute cycles vs the analytical model.

    Args:
        trace: replay result of a compiled program.
        performance: analytical result of the same (workload, variant,
            configuration).

    Returns:
        ``|trace - analytical| / analytical`` (0 when both report zero
        cycles).

    Raises:
        ValueError: when the two results describe different workloads or
            variants.
    """
    if trace.name != performance.name or trace.variant != performance.variant:
        raise ValueError(
            f"mismatched results: trace is ({trace.name!r}, {trace.variant!r}), "
            f"analytical is ({performance.name!r}, {performance.variant!r})"
        )
    analytical = performance.total_cycles
    traced = trace.compute_cycles
    if analytical == 0:
        return 0.0 if traced == 0 else float("inf")
    return abs(traced - analytical) / analytical
