"""NumPy-vectorized batch kernel of the cycle-level performance model.

The scalar engine in :mod:`repro.sim.cycle_model` walks a workload one layer
at a time and, inside :func:`repro.compiler.mapping.map_layer`, one FTA
threshold group at a time -- pure-Python iteration that dominates the cost
of every design-space sweep.  This module re-expresses the *entire* model as
array operations over structure-of-arrays layer batches:

* :class:`ProfileArrays` flattens a
  :class:`~repro.workloads.profiles.ModelSparsityProfile` into per-layer
  NumPy arrays (shapes, sparsity statistics and a per-layer histogram of the
  FTA thresholds -- thresholds are bounded by :data:`MAX_FTA_THRESHOLD`, so
  the variable-length per-filter threshold tuples collapse into a dense
  ``(layers, 5)`` count matrix);
* :func:`simulate_layers` evaluates the mapping equations (filter grouping,
  tiling, bit-serial cycle counts) and the energy model for a whole batch of
  layers in one vectorized pass.  The batch may concatenate many layers,
  many sparsity variants, many models and even many hardware configurations
  -- every hardware knob is itself a per-layer array.

Numerical contract
------------------
Every arithmetic step mirrors the scalar engine operation-for-operation
(integer ceil-divisions, ``int()`` truncation of the average parallel-filter
count, the exact order of float multiplications), so results are **bitwise
identical** to the scalar engine -- pinned by the equivalence suite in
``tests/sim/test_vectorized.py``.  The scalar engine therefore survives as
the readable reference implementation; this kernel is the fast path.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__docformat__ = "numpy"

import numpy as np

from ..arch.config import DBPIMConfig
from ..arch.energy import EnergyModel
from ..compiler.mapping import MAX_FTA_THRESHOLD
from ..workloads.layers import LayerShape
from ..workloads.profiles import ModelSparsityProfile

__all__ = [
    "MAX_FTA_THRESHOLD",
    "PROFILE_ARRAYS_CACHE_SIZE",
    "CONFIG_KNOBS_CACHE_SIZE",
    "ProfileArrays",
    "BatchActivity",
    "profile_arrays",
    "invalidate_profile_arrays",
    "config_knobs",
    "simulate_layers",
    "concatenate_batches",
    "simulate_grid",
    "simulate_jobs",
]


@dataclass(frozen=True)
class ProfileArrays:
    """Structure-of-arrays form of one workload's sparsity profile.

    One instance flattens every per-layer quantity the cycle model consumes
    into aligned NumPy arrays so a whole model (or a concatenation of
    models) can be simulated as one array expression.

    Attributes
    ----------
    layers : tuple of LayerShape
        The layer descriptors, in profile order (kept for materialising
        per-layer results back into typed records).
    out_channels, reduction, output_positions, activation_count, \
    weight_count, macs : numpy.ndarray
        Per-layer integer shape quantities (``int64``).
    input_active_columns, storage_utilization, binary_zero_ratio : \
    numpy.ndarray
        Per-layer sparsity statistics (``float64``): measured IPU active
        bit columns, Comp.-Pattern storage utilisation, and the zero-bit
        ratio of the plain binary INT8 weights.
    threshold_counts : numpy.ndarray
        ``(num_layers, MAX_FTA_THRESHOLD + 1)`` histogram of the per-filter
        FTA thresholds of each layer.
    """

    layers: Tuple[LayerShape, ...]
    out_channels: np.ndarray
    reduction: np.ndarray
    output_positions: np.ndarray
    activation_count: np.ndarray
    weight_count: np.ndarray
    macs: np.ndarray
    input_active_columns: np.ndarray
    storage_utilization: np.ndarray
    binary_zero_ratio: np.ndarray
    threshold_counts: np.ndarray

    def __len__(self) -> int:
        """Number of layers in the batch."""
        return len(self.layers)

    @classmethod
    def from_profile(cls, profile: ModelSparsityProfile) -> "ProfileArrays":
        """Flatten a model sparsity profile into aligned per-layer arrays.

        Parameters
        ----------
        profile : ModelSparsityProfile
            The profiled workload (see
            :func:`repro.workloads.profiles.profile_model`).

        Returns
        -------
        ProfileArrays
            The structure-of-arrays view.

        Raises
        ------
        ValueError
            If a layer's per-filter threshold count does not match its
            filter count, or any threshold lies outside
            ``0..MAX_FTA_THRESHOLD`` (mirrors the scalar mapper's checks).
        """
        shapes = tuple(p.layer for p in profile.layers)
        count = len(shapes)

        def _ints(values: Iterable[int]) -> np.ndarray:
            return np.fromiter(values, dtype=np.int64, count=count)

        def _floats(values: Iterable[float]) -> np.ndarray:
            return np.fromiter(values, dtype=np.float64, count=count)

        threshold_counts = np.zeros(
            (count, MAX_FTA_THRESHOLD + 1), dtype=np.int64
        )
        for index, layer_profile in enumerate(profile.layers):
            thresholds = np.asarray(layer_profile.thresholds, dtype=np.int64)
            if thresholds.size != layer_profile.layer.out_channels:
                raise ValueError(
                    f"expected {layer_profile.layer.out_channels} thresholds, "
                    f"got {thresholds.size}"
                )
            if thresholds.size and (
                thresholds.min() < 0 or thresholds.max() > MAX_FTA_THRESHOLD
            ):
                raise ValueError(
                    f"FTA thresholds must lie in 0..{MAX_FTA_THRESHOLD}"
                )
            threshold_counts[index] = np.bincount(
                thresholds, minlength=MAX_FTA_THRESHOLD + 1
            )
        return cls(
            layers=shapes,
            out_channels=_ints(s.out_channels for s in shapes),
            reduction=_ints(s.reduction_size for s in shapes),
            output_positions=_ints(s.output_positions for s in shapes),
            activation_count=_ints(s.activation_count for s in shapes),
            weight_count=_ints(s.weight_count for s in shapes),
            macs=_ints(s.macs for s in shapes),
            input_active_columns=_floats(
                p.input_active_columns for p in profile.layers
            ),
            storage_utilization=_floats(
                p.storage_utilization for p in profile.layers
            ),
            binary_zero_ratio=_floats(
                p.weight_zero_bit_ratio_binary for p in profile.layers
            ),
            threshold_counts=threshold_counts,
        )


# ---------------------------------------------------------------------------
# Module-level ProfileArrays memoisation
# ---------------------------------------------------------------------------
#: Maximum live entries of the module-level :func:`profile_arrays` cache.
#: Generous relative to the workload registry (a handful of models times a
#: handful of concurrently live seeds/sessions); excess entries evict in
#: least-recently-used order.
PROFILE_ARRAYS_CACHE_SIZE = 128

#: ``id(profile) -> (weakref, arrays)``; the id is only trusted while the
#: weakref still points at the same live object (a recycled ``id()`` of a
#: dead profile must never alias another profile's arrays).
_ARRAYS_CACHE: "OrderedDict[int, Tuple[weakref.ref, ProfileArrays]]" = (
    OrderedDict()
)
_ARRAYS_CACHE_LOCK = threading.Lock()


def profile_arrays(
    profile: ModelSparsityProfile, *, bypass_cache: bool = False
) -> "ProfileArrays":
    """Memoised :class:`ProfileArrays` of one live profile object.

    :class:`ProfileArrays` is a pure function of its profile, so flattening
    is memoised *module-wide* and keyed by the live profile object: every
    cycle-model instance (and every warm serve-session) evaluating the same
    profile shares one flattened view instead of re-flattening per engine
    instance.  Entries are dropped automatically when the profile object is
    garbage-collected and evicted LRU beyond
    :data:`PROFILE_ARRAYS_CACHE_SIZE`; the cache is thread-safe (the serve
    batcher flattens from executor threads).

    Parameters
    ----------
    profile : ModelSparsityProfile
        The profiled workload to flatten.
    bypass_cache : bool, optional
        When True, always build a fresh :class:`ProfileArrays` and leave
        the cache untouched (useful while mutating profiling code, and for
        the cache's own equivalence tests).

    Returns
    -------
    ProfileArrays
        The flattened (and, unless bypassed, shared) per-layer arrays.
    """
    if bypass_cache:
        return ProfileArrays.from_profile(profile)
    key = id(profile)
    with _ARRAYS_CACHE_LOCK:
        entry = _ARRAYS_CACHE.get(key)
        if entry is not None:
            ref, arrays = entry
            if ref() is profile:
                _ARRAYS_CACHE.move_to_end(key)
                return arrays
            del _ARRAYS_CACHE[key]  # recycled id of a dead profile
    arrays = ProfileArrays.from_profile(profile)

    def _evict(_reference: object, *, key: int = key) -> None:
        with _ARRAYS_CACHE_LOCK:
            _ARRAYS_CACHE.pop(key, None)

    with _ARRAYS_CACHE_LOCK:
        _ARRAYS_CACHE[key] = (weakref.ref(profile, _evict), arrays)
        _ARRAYS_CACHE.move_to_end(key)
        while len(_ARRAYS_CACHE) > PROFILE_ARRAYS_CACHE_SIZE:
            _ARRAYS_CACHE.popitem(last=False)
    return arrays


def invalidate_profile_arrays(
    profile: Optional[ModelSparsityProfile] = None,
) -> int:
    """Drop memoised :func:`profile_arrays` entries.

    Parameters
    ----------
    profile : ModelSparsityProfile, optional
        Evict only this profile's entry; ``None`` (default) clears the
        whole cache -- the invalidation hook to call after monkey-patching
        profiling or mapping code under test.

    Returns
    -------
    int
        Number of entries evicted.
    """
    with _ARRAYS_CACHE_LOCK:
        if profile is None:
            count = len(_ARRAYS_CACHE)
            _ARRAYS_CACHE.clear()
            return count
        entry = _ARRAYS_CACHE.get(id(profile))
        if entry is not None and entry[0]() is profile:
            del _ARRAYS_CACHE[id(profile)]
            return 1
        return 0


# ---------------------------------------------------------------------------
# Per-config hardware-knob memoisation
# ---------------------------------------------------------------------------
#: Maximum memoised :func:`config_knobs` entries.  Resolved configurations
#: are tiny frozen value objects; a sweep grid rarely visits more than a few
#: dozen distinct ones, so the bound only guards against pathological
#: config-generating loops.
CONFIG_KNOBS_CACHE_SIZE = 256

#: ``id(config) -> (config, knobs)``.  Keyed by object identity -- holding
#: the config alive makes a recycled ``id()`` impossible while the entry
#: exists -- because hashing a frozen nested dataclass on every lookup costs
#: more than the extraction it would save.  A miss degrades to the plain
#: seven-attribute extraction, so equal-but-distinct configs never pay more
#: than the pre-memo code did.
_KNOBS_CACHE: "OrderedDict[int, Tuple[DBPIMConfig, Tuple]]" = OrderedDict()
_KNOBS_CACHE_LOCK = threading.Lock()


def config_knobs(
    config: DBPIMConfig,
) -> Tuple[int, int, int, int, int, bool, bool]:
    """Memoised hardware-knob vector of one resolved configuration.

    The batch kernels consume a configuration as seven plain scalars --
    ``(rows, columns, input_bits, weight_bits, num_macros, weight_sparsity,
    input_sparsity)`` -- which :func:`simulate_jobs` used to re-extract with
    seven Python attribute-chasing list comprehensions on every dispatch.
    The extraction is memoised per live resolved-configuration object
    (identity-keyed, LRU-bounded by :data:`CONFIG_KNOBS_CACHE_SIZE`,
    thread-safe), so repeated shard dispatches and warm serve sessions that
    reuse their config objects skip the O(jobs) Python setup.

    Parameters
    ----------
    config : DBPIMConfig
        The (variant-resolved) hardware configuration.

    Returns
    -------
    tuple
        ``(rows, columns, input_bits, weight_bits, num_macros,
        weight_sparsity, input_sparsity)`` as native Python scalars.
    """
    key = id(config)
    with _KNOBS_CACHE_LOCK:
        entry = _KNOBS_CACHE.get(key)
        if entry is not None and entry[0] is config:
            _KNOBS_CACHE.move_to_end(key)
            return entry[1]
    knobs = (
        int(config.macro.rows),
        int(config.macro.columns),
        int(config.macro.input_bits),
        int(config.macro.weight_bits),
        int(config.num_macros),
        bool(config.weight_sparsity),
        bool(config.input_sparsity),
    )
    with _KNOBS_CACHE_LOCK:
        _KNOBS_CACHE[key] = (config, knobs)
        _KNOBS_CACHE.move_to_end(key)
        while len(_KNOBS_CACHE) > CONFIG_KNOBS_CACHE_SIZE:
            _KNOBS_CACHE.popitem(last=False)
    return knobs


@dataclass(frozen=True)
class BatchActivity:
    """Per-layer activity and energy of one vectorized batch.

    All arrays share one length (the number of layers in the batch) and are
    aligned with the batch's layer order.

    Attributes
    ----------
    cycles : numpy.ndarray
        Bit-serial broadcast cycles per layer (``float64``).
    cell_activations : numpy.ndarray
        6T cells driven per layer over all cycles.
    effective_cell_activations : numpy.ndarray
        Cells doing useful work (the numerator of ``U_act``).
    macs : numpy.ndarray
        Multiply-accumulates per layer (``int64``; shape-derived).
    energy : dict of str to numpy.ndarray
        Per-layer energy of every
        :class:`~repro.arch.energy.EnergyBreakdown` component, in pJ.
    """

    cycles: np.ndarray
    cell_activations: np.ndarray
    effective_cell_activations: np.ndarray
    macs: np.ndarray
    energy: Dict[str, np.ndarray]

    def __len__(self) -> int:
        """Number of layers in the batch."""
        return int(self.cycles.size)


def _ceil_div(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Element-wise ceiling division of non-negative integers."""
    return -(-numerator // denominator)


#: ``max(threshold, 1)`` row shared by every grid dispatch (the threshold
#: axis is a fixed 5-wide constant, no point re-deriving it per call).
_THRESHOLD_DIVISORS = np.maximum(
    np.arange(MAX_FTA_THRESHOLD + 1, dtype=np.int64), 1
)[None, :]


def simulate_layers(
    arrays: "ProfileArrays",
    *,
    rows: np.ndarray,
    columns: np.ndarray,
    input_bits: np.ndarray,
    weight_bits: np.ndarray,
    num_macros: np.ndarray,
    weight_sparsity: np.ndarray,
    input_sparsity: np.ndarray,
    energy_model: EnergyModel,
) -> BatchActivity:
    """Simulate a batch of layers as one vectorized pass.

    Evaluates, for every layer of the batch at once, the mapping decisions
    of :func:`repro.compiler.mapping.map_layer` (threshold-grouped filter
    iterations, input tiling, IPU-gated cycles per pass), the activity
    accounting of :meth:`repro.sim.cycle_model.CycleModel.run_layer` and the
    component energies of :meth:`repro.arch.energy.EnergyModel.layer_energy`
    -- producing numbers bitwise identical to the scalar engine.

    Parameters
    ----------
    arrays : ProfileArrays
        The batch of layers (possibly a concatenation of several profiles).
    rows, columns, input_bits, weight_bits, num_macros : numpy.ndarray
        Per-layer hardware parameters (``int64``, broadcastable against the
        batch length).  Passing them as arrays lets one batch span several
        hardware configurations.
    weight_sparsity, input_sparsity : numpy.ndarray
        Per-layer boolean sparsity-support flags (the Fig. 7 variant each
        layer is evaluated under).
    energy_model : EnergyModel
        Prices the activity counts (shared across the batch).

    Returns
    -------
    BatchActivity
        Per-layer cycles, cell activity and component energies.
    """
    out_channels = arrays.out_channels
    weight_sparsity = np.asarray(weight_sparsity, dtype=bool)
    input_sparsity = np.asarray(input_sparsity, dtype=bool)

    # --- filter grouping (map_layer) -----------------------------------
    # Sparse mode: filters are grouped by FTA threshold; a row of
    # ``columns`` cells fits ``columns // max(φ_th, 1)`` filters.  The
    # per-layer histogram turns the scalar per-unique-threshold loop into a
    # closed-form sum over the 5 possible thresholds (empty bins add 0).
    thresholds = np.arange(MAX_FTA_THRESHOLD + 1, dtype=np.int64)
    per_macro = np.maximum(
        np.asarray(columns, dtype=np.int64)[:, None]
        // np.maximum(thresholds, 1)[None, :],
        1,
    )
    per_pass = per_macro * np.asarray(num_macros, dtype=np.int64)[:, None]
    iterations_sparse = np.maximum(
        _ceil_div(arrays.threshold_counts, per_pass).sum(axis=1), 1
    )
    filters_per_pass_sparse = (
        (per_pass * arrays.threshold_counts).sum(axis=1) / out_channels
    )
    # Dense mode: a row holds ``columns // weight_bits`` plain filters.
    dense_per_pass = (columns // weight_bits) * num_macros
    iterations_dense = _ceil_div(out_channels, dense_per_pass)

    filter_iterations = np.where(
        weight_sparsity, iterations_sparse, iterations_dense
    )
    # ``int()`` in the scalar mapping truncates the sparse average; the
    # dense count is already integral, so one truncation covers both.
    filters_per_pass = np.where(
        weight_sparsity, filters_per_pass_sparse, dense_per_pass
    ).astype(np.int64)

    # --- bit-serial cycles per pass (IPU gating) -----------------------
    cycles_per_pass = np.where(
        input_sparsity,
        np.clip(arrays.input_active_columns, 0.0, input_bits),
        np.asarray(input_bits, dtype=np.float64),
    )

    # --- tiling and totals ---------------------------------------------
    rows_used = np.minimum(arrays.reduction, rows)
    input_tiles = _ceil_div(arrays.reduction, rows)
    weights_per_pass_cells = columns * rows_used * num_macros
    total_passes = filter_iterations * input_tiles * arrays.output_positions
    cycles = total_passes * cycles_per_pass
    cell_activations = cycles * weights_per_pass_cells

    # --- effectiveness (U_act numerator) -------------------------------
    # Sparse storage wastes only the FTA padding slots; dense storage
    # wastes every zero bit of the binary weights.
    effective = np.where(
        weight_sparsity,
        cell_activations * arrays.storage_utilization,
        cell_activations * (1.0 - arrays.binary_zero_ratio),
    )

    # --- activity counts priced by the energy model --------------------
    post_processing_ops = cycles * filters_per_pass
    ipu_bits = arrays.activation_count * input_bits
    meta_bytes = np.where(weight_sparsity, arrays.weight_count, 0)
    feature_bytes = (
        arrays.activation_count + out_channels * arrays.output_positions
    )
    energy = energy_model.layer_energy_arrays(
        cycles=cycles,
        cell_activations=cell_activations,
        adder_tree_ops=cell_activations,
        post_processing_ops=post_processing_ops,
        ipu_bits=ipu_bits,
        meta_rf_bytes=meta_bytes,
        buffer_bytes=arrays.weight_count + feature_bytes,
    )
    return BatchActivity(
        cycles=cycles,
        cell_activations=cell_activations,
        effective_cell_activations=effective,
        macs=arrays.macs,
        energy=energy,
    )


def concatenate_batches(batches: Sequence[ProfileArrays]) -> ProfileArrays:
    """Concatenate several :class:`ProfileArrays` into one larger batch.

    Parameters
    ----------
    batches : sequence of ProfileArrays
        The per-model (or per-job) batches, in batch order.

    Returns
    -------
    ProfileArrays
        One structure-of-arrays batch whose layers are the concatenation
        of every input batch's layers (a single-element sequence is
        returned as-is, no copies).
    """
    if len(batches) == 1:
        return batches[0]
    return ProfileArrays(
        layers=tuple(layer for batch in batches for layer in batch.layers),
        out_channels=np.concatenate([b.out_channels for b in batches]),
        reduction=np.concatenate([b.reduction for b in batches]),
        output_positions=np.concatenate([b.output_positions for b in batches]),
        activation_count=np.concatenate([b.activation_count for b in batches]),
        weight_count=np.concatenate([b.weight_count for b in batches]),
        macs=np.concatenate([b.macs for b in batches]),
        input_active_columns=np.concatenate(
            [b.input_active_columns for b in batches]
        ),
        storage_utilization=np.concatenate(
            [b.storage_utilization for b in batches]
        ),
        binary_zero_ratio=np.concatenate([b.binary_zero_ratio for b in batches]),
        threshold_counts=np.concatenate([b.threshold_counts for b in batches]),
    )


def simulate_grid(
    arrays: "ProfileArrays",
    configs: Sequence[DBPIMConfig],
    energy_model: EnergyModel,
) -> BatchActivity:
    """Evaluate ONE flattened profile against a whole config grid.

    The config-fused kernel: instead of replicating the profile once per
    configuration (the :func:`simulate_jobs` per-job path concatenates
    ``len(configs)`` copies of the layer arrays and ``np.repeat``-broadcasts
    the knobs), the profile stays a single ``(layers,)`` batch and the
    configuration axis becomes the leading dimension of a 2-D
    ``(config, layer)`` broadcast pass.  Two levels of deduplication make
    the pass cheaper than its flattened footprint:

    * duplicate *resolved configurations* (a preset grid crossed with the
      Fig. 7 variants collapses heavily once sparsity flags are applied)
      are computed once and fan-out by a final gather;
    * within the surviving unique configurations, the expensive
      per-threshold histogram reductions (5-wide inner axis) depend only on
      the macro *geometry* -- ``(rows, columns, input_bits, weight_bits,
      num_macros)`` -- not on the sparsity flags, so the four variants of
      one preset share a single geometry pass.

    Every arithmetic step still mirrors :func:`simulate_layers`
    operation-for-operation, so the result is **bitwise identical** to the
    per-job path (pinned by ``tests/sim/test_grid.py``).

    Parameters
    ----------
    arrays : ProfileArrays
        One flattened workload profile.
    configs : sequence of DBPIMConfig
        The config grid (sparsity flags already resolved to the Fig. 7
        variant each row should be evaluated under).
    energy_model : EnergyModel
        Prices the activity counts (shared across the grid).

    Returns
    -------
    BatchActivity
        Config-major flattened results of length ``len(configs) *
        len(arrays)``: row ``c * len(arrays) + l`` is layer ``l`` under
        ``configs[c]`` -- the same layout as
        ``simulate_jobs([arrays] * len(configs), configs, ...)``.

    Raises
    ------
    ValueError
        If the config grid is empty.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("simulate_grid requires at least one config")
    num_layers = len(arrays)
    knob_rows = [config_knobs(config) for config in configs]

    # --- dedup level 1: unique resolved configs ------------------------
    unique_index: Dict[Tuple, int] = {}
    work: List[Tuple] = []
    inverse = np.empty(len(knob_rows), dtype=np.intp)
    for position, knobs in enumerate(knob_rows):
        index = unique_index.get(knobs)
        if index is None:
            index = len(work)
            unique_index[knobs] = index
            work.append(knobs)
        inverse[position] = index

    # --- dedup level 2: unique macro geometries ------------------------
    geometry_index: Dict[Tuple, int] = {}
    geometries: List[Tuple] = []
    geo_inverse = np.empty(len(work), dtype=np.intp)
    for position, knobs in enumerate(work):
        geometry = knobs[:5]
        index = geometry_index.get(geometry)
        if index is None:
            index = len(geometries)
            geometry_index[geometry] = index
            geometries.append(geometry)
        geo_inverse[position] = index

    rows_g = np.array([g[0] for g in geometries], dtype=np.int64)
    columns_g = np.array([g[1] for g in geometries], dtype=np.int64)
    input_bits_g = np.array([g[2] for g in geometries], dtype=np.int64)
    weight_bits_g = np.array([g[3] for g in geometries], dtype=np.int64)
    num_macros_g = np.array([g[4] for g in geometries], dtype=np.int64)
    ws_u = np.array([k[5] for k in work], dtype=bool)[:, None]
    is_u = np.array([k[6] for k in work], dtype=bool)[:, None]

    out_channels = arrays.out_channels[None, :]

    # --- filter grouping (map_layer), per unique geometry --------------
    per_macro = np.maximum(
        columns_g[:, None] // _THRESHOLD_DIVISORS, 1
    )
    per_pass = per_macro * num_macros_g[:, None]
    iterations_sparse = np.maximum(
        _ceil_div(
            arrays.threshold_counts[None, :, :], per_pass[:, None, :]
        ).sum(axis=2),
        1,
    )
    filters_per_pass_sparse = (
        (per_pass[:, None, :] * arrays.threshold_counts[None, :, :]).sum(
            axis=2
        )
        / out_channels
    )
    dense_per_pass = (columns_g // weight_bits_g) * num_macros_g
    iterations_dense = _ceil_div(out_channels, dense_per_pass[:, None])
    cycles_sparse = np.clip(
        arrays.input_active_columns[None, :], 0.0, input_bits_g[:, None]
    )
    rows_used = np.minimum(arrays.reduction[None, :], rows_g[:, None])
    input_tiles = _ceil_div(arrays.reduction[None, :], rows_g[:, None])
    weights_per_pass_cells = (
        columns_g[:, None] * rows_used * num_macros_g[:, None]
    )

    # --- gather to unique configs, apply sparsity flags ----------------
    filter_iterations = np.where(
        ws_u, iterations_sparse[geo_inverse], iterations_dense[geo_inverse]
    )
    filters_per_pass = np.where(
        ws_u,
        filters_per_pass_sparse[geo_inverse],
        np.broadcast_to(
            dense_per_pass[geo_inverse][:, None], (len(work), num_layers)
        ),
    ).astype(np.int64)
    cycles_per_pass = np.where(
        is_u,
        cycles_sparse[geo_inverse],
        np.asarray(input_bits_g, dtype=np.float64)[geo_inverse][:, None],
    )

    # --- tiling, totals, effectiveness (same op order as the 1-D pass) -
    total_passes = (
        filter_iterations
        * input_tiles[geo_inverse]
        * arrays.output_positions[None, :]
    )
    cycles = total_passes * cycles_per_pass
    cell_activations = cycles * weights_per_pass_cells[geo_inverse]
    effective = np.where(
        ws_u,
        cell_activations * arrays.storage_utilization[None, :],
        cell_activations * (1.0 - arrays.binary_zero_ratio[None, :]),
    )

    # --- activity counts priced by the energy model --------------------
    post_processing_ops = cycles * filters_per_pass
    ipu_bits = (
        arrays.activation_count[None, :] * input_bits_g[geo_inverse][:, None]
    )
    meta_bytes = np.where(ws_u, arrays.weight_count[None, :], 0)
    feature_bytes = (
        arrays.activation_count + arrays.out_channels * arrays.output_positions
    )
    energy = energy_model.layer_energy_arrays(
        cycles=cycles,
        cell_activations=cell_activations,
        adder_tree_ops=cell_activations,
        post_processing_ops=post_processing_ops,
        ipu_bits=ipu_bits,
        meta_rf_bytes=meta_bytes,
        buffer_bytes=np.broadcast_to(
            (arrays.weight_count + feature_bytes)[None, :],
            (len(work), num_layers),
        ),
    )

    # --- fan the unique rows back out to the requested grid ------------
    def _expand(values: np.ndarray) -> np.ndarray:
        return values[inverse].reshape(-1)

    return BatchActivity(
        cycles=_expand(cycles),
        cell_activations=_expand(cell_activations),
        effective_cell_activations=_expand(effective),
        macs=np.tile(arrays.macs, len(configs)),
        energy={name: _expand(values) for name, values in energy.items()},
    )


def _concat_activities(activities: Sequence[BatchActivity]) -> BatchActivity:
    """Concatenate per-segment :class:`BatchActivity` results in order."""
    if len(activities) == 1:
        return activities[0]
    return BatchActivity(
        cycles=np.concatenate([a.cycles for a in activities]),
        cell_activations=np.concatenate(
            [a.cell_activations for a in activities]
        ),
        effective_cell_activations=np.concatenate(
            [a.effective_cell_activations for a in activities]
        ),
        macs=np.concatenate([a.macs for a in activities]),
        energy={
            name: np.concatenate([a.energy[name] for a in activities])
            for name in activities[0].energy
        },
    )


def simulate_jobs(
    job_arrays: Sequence[ProfileArrays],
    job_configs: Sequence[DBPIMConfig],
    energy_model: EnergyModel,
    *,
    fuse: bool = True,
) -> BatchActivity:
    """Shard-sized batch entry point: many (profile, config) jobs, one pass.

    This is the kernel the sweep service's shard workers (and
    :meth:`repro.sim.cycle_model.CycleModel.run_batch`) ride: each job is a
    whole workload profile already flattened to :class:`ProfileArrays`,
    paired with the (variant-resolved) hardware configuration it should be
    evaluated under.

    By default (``fuse=True``) runs of consecutive jobs that share the
    *same* :class:`ProfileArrays` object -- the shape every grid dispatch
    produces, e.g. one model evaluated under the four Fig. 7 variants or a
    whole preset grid -- are dispatched to the config-fused
    :func:`simulate_grid` kernel, which never materialises per-config
    profile copies and deduplicates repeated configurations and macro
    geometries.  With ``fuse=False`` the original per-job path runs: jobs
    are concatenated into one batch, the per-job hardware knobs are
    broadcast to per-layer arrays, and the whole shard is evaluated by a
    single :func:`simulate_layers` call.  Both paths are bitwise identical
    to evaluating the jobs one at a time (the unfused path is the pinned
    reference of ``tests/sim/test_grid.py``).

    Parameters
    ----------
    job_arrays : sequence of ProfileArrays
        One flattened profile per job, in job order.
    job_configs : sequence of DBPIMConfig
        The hardware configuration of each job (sparsity flags already
        resolved to the Fig. 7 variant), aligned with ``job_arrays``.
    energy_model : EnergyModel
        Prices the activity counts (shared across the batch).
    fuse : bool, optional
        Route same-profile job runs through the config-fused grid kernel
        (default).  ``False`` forces the legacy replicate-and-repeat path.

    Returns
    -------
    BatchActivity
        Per-layer results of the concatenated batch; slice by the job
        lengths (``len(arrays)``) to recover per-job views.

    Raises
    ------
    ValueError
        If ``job_arrays`` and ``job_configs`` have different lengths, or
        the job list is empty.
    """
    if len(job_arrays) != len(job_configs):
        raise ValueError(
            f"got {len(job_arrays)} job arrays but {len(job_configs)} configs"
        )
    if not job_arrays:
        raise ValueError("simulate_jobs requires at least one job")
    if fuse:
        activities: List[BatchActivity] = []
        start = 0
        total = len(job_arrays)
        while start < total:
            stop = start + 1
            while (
                stop < total and job_arrays[stop] is job_arrays[start]
            ):
                stop += 1
            activities.append(
                simulate_grid(
                    job_arrays[start],
                    job_configs[start:stop],
                    energy_model,
                )
            )
            start = stop
        return _concat_activities(activities)
    lengths = np.array([len(arrays) for arrays in job_arrays], dtype=np.int64)
    batch = concatenate_batches(job_arrays)
    knob_rows = [config_knobs(config) for config in job_configs]

    def _per_layer(index: int, dtype) -> np.ndarray:
        return np.repeat(
            np.array([knobs[index] for knobs in knob_rows], dtype=dtype),
            lengths,
        )

    return simulate_layers(
        batch,
        rows=_per_layer(0, np.int64),
        columns=_per_layer(1, np.int64),
        input_bits=_per_layer(2, np.int64),
        weight_bits=_per_layer(3, np.int64),
        num_macros=_per_layer(4, np.int64),
        weight_sparsity=_per_layer(5, bool),
        input_sparsity=_per_layer(6, bool),
        energy_model=energy_model,
    )
