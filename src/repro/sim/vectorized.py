"""NumPy-vectorized batch kernel of the cycle-level performance model.

The scalar engine in :mod:`repro.sim.cycle_model` walks a workload one layer
at a time and, inside :func:`repro.compiler.mapping.map_layer`, one FTA
threshold group at a time -- pure-Python iteration that dominates the cost
of every design-space sweep.  This module re-expresses the *entire* model as
array operations over structure-of-arrays layer batches:

* :class:`ProfileArrays` flattens a
  :class:`~repro.workloads.profiles.ModelSparsityProfile` into per-layer
  NumPy arrays (shapes, sparsity statistics and a per-layer histogram of the
  FTA thresholds -- thresholds are bounded by :data:`MAX_FTA_THRESHOLD`, so
  the variable-length per-filter threshold tuples collapse into a dense
  ``(layers, 5)`` count matrix);
* :func:`simulate_layers` evaluates the mapping equations (filter grouping,
  tiling, bit-serial cycle counts) and the energy model for a whole batch of
  layers in one vectorized pass.  The batch may concatenate many layers,
  many sparsity variants, many models and even many hardware configurations
  -- every hardware knob is itself a per-layer array.

Numerical contract
------------------
Every arithmetic step mirrors the scalar engine operation-for-operation
(integer ceil-divisions, ``int()`` truncation of the average parallel-filter
count, the exact order of float multiplications), so results are **bitwise
identical** to the scalar engine -- pinned by the equivalence suite in
``tests/sim/test_vectorized.py``.  The scalar engine therefore survives as
the readable reference implementation; this kernel is the fast path.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

__docformat__ = "numpy"

import numpy as np

from ..arch.config import DBPIMConfig
from ..arch.energy import EnergyModel
from ..compiler.mapping import MAX_FTA_THRESHOLD
from ..workloads.layers import LayerShape
from ..workloads.profiles import ModelSparsityProfile

__all__ = [
    "MAX_FTA_THRESHOLD",
    "PROFILE_ARRAYS_CACHE_SIZE",
    "ProfileArrays",
    "BatchActivity",
    "profile_arrays",
    "invalidate_profile_arrays",
    "simulate_layers",
    "concatenate_batches",
    "simulate_jobs",
]


@dataclass(frozen=True)
class ProfileArrays:
    """Structure-of-arrays form of one workload's sparsity profile.

    One instance flattens every per-layer quantity the cycle model consumes
    into aligned NumPy arrays so a whole model (or a concatenation of
    models) can be simulated as one array expression.

    Attributes
    ----------
    layers : tuple of LayerShape
        The layer descriptors, in profile order (kept for materialising
        per-layer results back into typed records).
    out_channels, reduction, output_positions, activation_count, \
    weight_count, macs : numpy.ndarray
        Per-layer integer shape quantities (``int64``).
    input_active_columns, storage_utilization, binary_zero_ratio : \
    numpy.ndarray
        Per-layer sparsity statistics (``float64``): measured IPU active
        bit columns, Comp.-Pattern storage utilisation, and the zero-bit
        ratio of the plain binary INT8 weights.
    threshold_counts : numpy.ndarray
        ``(num_layers, MAX_FTA_THRESHOLD + 1)`` histogram of the per-filter
        FTA thresholds of each layer.
    """

    layers: Tuple[LayerShape, ...]
    out_channels: np.ndarray
    reduction: np.ndarray
    output_positions: np.ndarray
    activation_count: np.ndarray
    weight_count: np.ndarray
    macs: np.ndarray
    input_active_columns: np.ndarray
    storage_utilization: np.ndarray
    binary_zero_ratio: np.ndarray
    threshold_counts: np.ndarray

    def __len__(self) -> int:
        """Number of layers in the batch."""
        return len(self.layers)

    @classmethod
    def from_profile(cls, profile: ModelSparsityProfile) -> "ProfileArrays":
        """Flatten a model sparsity profile into aligned per-layer arrays.

        Parameters
        ----------
        profile : ModelSparsityProfile
            The profiled workload (see
            :func:`repro.workloads.profiles.profile_model`).

        Returns
        -------
        ProfileArrays
            The structure-of-arrays view.

        Raises
        ------
        ValueError
            If a layer's per-filter threshold count does not match its
            filter count, or any threshold lies outside
            ``0..MAX_FTA_THRESHOLD`` (mirrors the scalar mapper's checks).
        """
        shapes = tuple(p.layer for p in profile.layers)
        count = len(shapes)

        def _ints(values: Iterable[int]) -> np.ndarray:
            return np.fromiter(values, dtype=np.int64, count=count)

        def _floats(values: Iterable[float]) -> np.ndarray:
            return np.fromiter(values, dtype=np.float64, count=count)

        threshold_counts = np.zeros(
            (count, MAX_FTA_THRESHOLD + 1), dtype=np.int64
        )
        for index, layer_profile in enumerate(profile.layers):
            thresholds = np.asarray(layer_profile.thresholds, dtype=np.int64)
            if thresholds.size != layer_profile.layer.out_channels:
                raise ValueError(
                    f"expected {layer_profile.layer.out_channels} thresholds, "
                    f"got {thresholds.size}"
                )
            if thresholds.size and (
                thresholds.min() < 0 or thresholds.max() > MAX_FTA_THRESHOLD
            ):
                raise ValueError(
                    f"FTA thresholds must lie in 0..{MAX_FTA_THRESHOLD}"
                )
            threshold_counts[index] = np.bincount(
                thresholds, minlength=MAX_FTA_THRESHOLD + 1
            )
        return cls(
            layers=shapes,
            out_channels=_ints(s.out_channels for s in shapes),
            reduction=_ints(s.reduction_size for s in shapes),
            output_positions=_ints(s.output_positions for s in shapes),
            activation_count=_ints(s.activation_count for s in shapes),
            weight_count=_ints(s.weight_count for s in shapes),
            macs=_ints(s.macs for s in shapes),
            input_active_columns=_floats(
                p.input_active_columns for p in profile.layers
            ),
            storage_utilization=_floats(
                p.storage_utilization for p in profile.layers
            ),
            binary_zero_ratio=_floats(
                p.weight_zero_bit_ratio_binary for p in profile.layers
            ),
            threshold_counts=threshold_counts,
        )


# ---------------------------------------------------------------------------
# Module-level ProfileArrays memoisation
# ---------------------------------------------------------------------------
#: Maximum live entries of the module-level :func:`profile_arrays` cache.
#: Generous relative to the workload registry (a handful of models times a
#: handful of concurrently live seeds/sessions); excess entries evict in
#: least-recently-used order.
PROFILE_ARRAYS_CACHE_SIZE = 128

#: ``id(profile) -> (weakref, arrays)``; the id is only trusted while the
#: weakref still points at the same live object (a recycled ``id()`` of a
#: dead profile must never alias another profile's arrays).
_ARRAYS_CACHE: "OrderedDict[int, Tuple[weakref.ref, ProfileArrays]]" = (
    OrderedDict()
)
_ARRAYS_CACHE_LOCK = threading.Lock()


def profile_arrays(
    profile: ModelSparsityProfile, *, bypass_cache: bool = False
) -> "ProfileArrays":
    """Memoised :class:`ProfileArrays` of one live profile object.

    :class:`ProfileArrays` is a pure function of its profile, so flattening
    is memoised *module-wide* and keyed by the live profile object: every
    cycle-model instance (and every warm serve-session) evaluating the same
    profile shares one flattened view instead of re-flattening per engine
    instance.  Entries are dropped automatically when the profile object is
    garbage-collected and evicted LRU beyond
    :data:`PROFILE_ARRAYS_CACHE_SIZE`; the cache is thread-safe (the serve
    batcher flattens from executor threads).

    Parameters
    ----------
    profile : ModelSparsityProfile
        The profiled workload to flatten.
    bypass_cache : bool, optional
        When True, always build a fresh :class:`ProfileArrays` and leave
        the cache untouched (useful while mutating profiling code, and for
        the cache's own equivalence tests).

    Returns
    -------
    ProfileArrays
        The flattened (and, unless bypassed, shared) per-layer arrays.
    """
    if bypass_cache:
        return ProfileArrays.from_profile(profile)
    key = id(profile)
    with _ARRAYS_CACHE_LOCK:
        entry = _ARRAYS_CACHE.get(key)
        if entry is not None:
            ref, arrays = entry
            if ref() is profile:
                _ARRAYS_CACHE.move_to_end(key)
                return arrays
            del _ARRAYS_CACHE[key]  # recycled id of a dead profile
    arrays = ProfileArrays.from_profile(profile)

    def _evict(_reference: object, *, key: int = key) -> None:
        with _ARRAYS_CACHE_LOCK:
            _ARRAYS_CACHE.pop(key, None)

    with _ARRAYS_CACHE_LOCK:
        _ARRAYS_CACHE[key] = (weakref.ref(profile, _evict), arrays)
        _ARRAYS_CACHE.move_to_end(key)
        while len(_ARRAYS_CACHE) > PROFILE_ARRAYS_CACHE_SIZE:
            _ARRAYS_CACHE.popitem(last=False)
    return arrays


def invalidate_profile_arrays(
    profile: Optional[ModelSparsityProfile] = None,
) -> int:
    """Drop memoised :func:`profile_arrays` entries.

    Parameters
    ----------
    profile : ModelSparsityProfile, optional
        Evict only this profile's entry; ``None`` (default) clears the
        whole cache -- the invalidation hook to call after monkey-patching
        profiling or mapping code under test.

    Returns
    -------
    int
        Number of entries evicted.
    """
    with _ARRAYS_CACHE_LOCK:
        if profile is None:
            count = len(_ARRAYS_CACHE)
            _ARRAYS_CACHE.clear()
            return count
        entry = _ARRAYS_CACHE.get(id(profile))
        if entry is not None and entry[0]() is profile:
            del _ARRAYS_CACHE[id(profile)]
            return 1
        return 0


@dataclass(frozen=True)
class BatchActivity:
    """Per-layer activity and energy of one vectorized batch.

    All arrays share one length (the number of layers in the batch) and are
    aligned with the batch's layer order.

    Attributes
    ----------
    cycles : numpy.ndarray
        Bit-serial broadcast cycles per layer (``float64``).
    cell_activations : numpy.ndarray
        6T cells driven per layer over all cycles.
    effective_cell_activations : numpy.ndarray
        Cells doing useful work (the numerator of ``U_act``).
    macs : numpy.ndarray
        Multiply-accumulates per layer (``int64``; shape-derived).
    energy : dict of str to numpy.ndarray
        Per-layer energy of every
        :class:`~repro.arch.energy.EnergyBreakdown` component, in pJ.
    """

    cycles: np.ndarray
    cell_activations: np.ndarray
    effective_cell_activations: np.ndarray
    macs: np.ndarray
    energy: Dict[str, np.ndarray]

    def __len__(self) -> int:
        """Number of layers in the batch."""
        return int(self.cycles.size)


def _ceil_div(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Element-wise ceiling division of non-negative integers."""
    return -(-numerator // denominator)


def simulate_layers(
    arrays: "ProfileArrays",
    *,
    rows: np.ndarray,
    columns: np.ndarray,
    input_bits: np.ndarray,
    weight_bits: np.ndarray,
    num_macros: np.ndarray,
    weight_sparsity: np.ndarray,
    input_sparsity: np.ndarray,
    energy_model: EnergyModel,
) -> BatchActivity:
    """Simulate a batch of layers as one vectorized pass.

    Evaluates, for every layer of the batch at once, the mapping decisions
    of :func:`repro.compiler.mapping.map_layer` (threshold-grouped filter
    iterations, input tiling, IPU-gated cycles per pass), the activity
    accounting of :meth:`repro.sim.cycle_model.CycleModel.run_layer` and the
    component energies of :meth:`repro.arch.energy.EnergyModel.layer_energy`
    -- producing numbers bitwise identical to the scalar engine.

    Parameters
    ----------
    arrays : ProfileArrays
        The batch of layers (possibly a concatenation of several profiles).
    rows, columns, input_bits, weight_bits, num_macros : numpy.ndarray
        Per-layer hardware parameters (``int64``, broadcastable against the
        batch length).  Passing them as arrays lets one batch span several
        hardware configurations.
    weight_sparsity, input_sparsity : numpy.ndarray
        Per-layer boolean sparsity-support flags (the Fig. 7 variant each
        layer is evaluated under).
    energy_model : EnergyModel
        Prices the activity counts (shared across the batch).

    Returns
    -------
    BatchActivity
        Per-layer cycles, cell activity and component energies.
    """
    out_channels = arrays.out_channels
    weight_sparsity = np.asarray(weight_sparsity, dtype=bool)
    input_sparsity = np.asarray(input_sparsity, dtype=bool)

    # --- filter grouping (map_layer) -----------------------------------
    # Sparse mode: filters are grouped by FTA threshold; a row of
    # ``columns`` cells fits ``columns // max(φ_th, 1)`` filters.  The
    # per-layer histogram turns the scalar per-unique-threshold loop into a
    # closed-form sum over the 5 possible thresholds (empty bins add 0).
    thresholds = np.arange(MAX_FTA_THRESHOLD + 1, dtype=np.int64)
    per_macro = np.maximum(
        np.asarray(columns, dtype=np.int64)[:, None]
        // np.maximum(thresholds, 1)[None, :],
        1,
    )
    per_pass = per_macro * np.asarray(num_macros, dtype=np.int64)[:, None]
    iterations_sparse = np.maximum(
        _ceil_div(arrays.threshold_counts, per_pass).sum(axis=1), 1
    )
    filters_per_pass_sparse = (
        (per_pass * arrays.threshold_counts).sum(axis=1) / out_channels
    )
    # Dense mode: a row holds ``columns // weight_bits`` plain filters.
    dense_per_pass = (columns // weight_bits) * num_macros
    iterations_dense = _ceil_div(out_channels, dense_per_pass)

    filter_iterations = np.where(
        weight_sparsity, iterations_sparse, iterations_dense
    )
    # ``int()`` in the scalar mapping truncates the sparse average; the
    # dense count is already integral, so one truncation covers both.
    filters_per_pass = np.where(
        weight_sparsity, filters_per_pass_sparse, dense_per_pass
    ).astype(np.int64)

    # --- bit-serial cycles per pass (IPU gating) -----------------------
    cycles_per_pass = np.where(
        input_sparsity,
        np.clip(arrays.input_active_columns, 0.0, input_bits),
        np.asarray(input_bits, dtype=np.float64),
    )

    # --- tiling and totals ---------------------------------------------
    rows_used = np.minimum(arrays.reduction, rows)
    input_tiles = _ceil_div(arrays.reduction, rows)
    weights_per_pass_cells = columns * rows_used * num_macros
    total_passes = filter_iterations * input_tiles * arrays.output_positions
    cycles = total_passes * cycles_per_pass
    cell_activations = cycles * weights_per_pass_cells

    # --- effectiveness (U_act numerator) -------------------------------
    # Sparse storage wastes only the FTA padding slots; dense storage
    # wastes every zero bit of the binary weights.
    effective = np.where(
        weight_sparsity,
        cell_activations * arrays.storage_utilization,
        cell_activations * (1.0 - arrays.binary_zero_ratio),
    )

    # --- activity counts priced by the energy model --------------------
    post_processing_ops = cycles * filters_per_pass
    ipu_bits = arrays.activation_count * input_bits
    meta_bytes = np.where(weight_sparsity, arrays.weight_count, 0)
    feature_bytes = (
        arrays.activation_count + out_channels * arrays.output_positions
    )
    energy = energy_model.layer_energy_arrays(
        cycles=cycles,
        cell_activations=cell_activations,
        adder_tree_ops=cell_activations,
        post_processing_ops=post_processing_ops,
        ipu_bits=ipu_bits,
        meta_rf_bytes=meta_bytes,
        buffer_bytes=arrays.weight_count + feature_bytes,
    )
    return BatchActivity(
        cycles=cycles,
        cell_activations=cell_activations,
        effective_cell_activations=effective,
        macs=arrays.macs,
        energy=energy,
    )


def concatenate_batches(batches: Sequence[ProfileArrays]) -> ProfileArrays:
    """Concatenate several :class:`ProfileArrays` into one larger batch.

    Parameters
    ----------
    batches : sequence of ProfileArrays
        The per-model (or per-job) batches, in batch order.

    Returns
    -------
    ProfileArrays
        One structure-of-arrays batch whose layers are the concatenation
        of every input batch's layers (a single-element sequence is
        returned as-is, no copies).
    """
    if len(batches) == 1:
        return batches[0]
    return ProfileArrays(
        layers=tuple(layer for batch in batches for layer in batch.layers),
        out_channels=np.concatenate([b.out_channels for b in batches]),
        reduction=np.concatenate([b.reduction for b in batches]),
        output_positions=np.concatenate([b.output_positions for b in batches]),
        activation_count=np.concatenate([b.activation_count for b in batches]),
        weight_count=np.concatenate([b.weight_count for b in batches]),
        macs=np.concatenate([b.macs for b in batches]),
        input_active_columns=np.concatenate(
            [b.input_active_columns for b in batches]
        ),
        storage_utilization=np.concatenate(
            [b.storage_utilization for b in batches]
        ),
        binary_zero_ratio=np.concatenate([b.binary_zero_ratio for b in batches]),
        threshold_counts=np.concatenate([b.threshold_counts for b in batches]),
    )


def simulate_jobs(
    job_arrays: Sequence[ProfileArrays],
    job_configs: Sequence[DBPIMConfig],
    energy_model: EnergyModel,
) -> BatchActivity:
    """Shard-sized batch entry point: many (profile, config) jobs, one pass.

    This is the kernel the sweep service's shard workers (and
    :meth:`repro.sim.cycle_model.CycleModel.run_batch`) ride: each job is a
    whole workload profile already flattened to :class:`ProfileArrays`,
    paired with the (variant-resolved) hardware configuration it should be
    evaluated under.  The jobs are concatenated into one batch, the
    per-job hardware knobs are broadcast to per-layer arrays, and the whole
    shard is evaluated by a single :func:`simulate_layers` call -- bitwise
    identical to evaluating the jobs one at a time.

    Parameters
    ----------
    job_arrays : sequence of ProfileArrays
        One flattened profile per job, in job order.
    job_configs : sequence of DBPIMConfig
        The hardware configuration of each job (sparsity flags already
        resolved to the Fig. 7 variant), aligned with ``job_arrays``.
    energy_model : EnergyModel
        Prices the activity counts (shared across the batch).

    Returns
    -------
    BatchActivity
        Per-layer results of the concatenated batch; slice by the job
        lengths (``len(arrays)``) to recover per-job views.

    Raises
    ------
    ValueError
        If ``job_arrays`` and ``job_configs`` have different lengths, or
        the job list is empty.
    """
    if len(job_arrays) != len(job_configs):
        raise ValueError(
            f"got {len(job_arrays)} job arrays but {len(job_configs)} configs"
        )
    if not job_arrays:
        raise ValueError("simulate_jobs requires at least one job")
    lengths = np.array([len(arrays) for arrays in job_arrays], dtype=np.int64)
    batch = concatenate_batches(job_arrays)

    def _per_layer(values, dtype) -> np.ndarray:
        return np.repeat(np.array(values, dtype=dtype), lengths)

    return simulate_layers(
        batch,
        rows=_per_layer([c.macro.rows for c in job_configs], np.int64),
        columns=_per_layer([c.macro.columns for c in job_configs], np.int64),
        input_bits=_per_layer(
            [c.macro.input_bits for c in job_configs], np.int64
        ),
        weight_bits=_per_layer(
            [c.macro.weight_bits for c in job_configs], np.int64
        ),
        num_macros=_per_layer([c.num_macros for c in job_configs], np.int64),
        weight_sparsity=_per_layer(
            [c.weight_sparsity for c in job_configs], bool
        ),
        input_sparsity=_per_layer(
            [c.input_sparsity for c in job_configs], bool
        ),
        energy_model=energy_model,
    )
