"""Packed result storage for sweep caches (see :mod:`repro.store.packed`).

Public surface re-exported here so callers write ``from repro.store import
PackedResultStore`` without caring about the module split.
"""

from .packed import (
    DATA_FILENAME,
    INDEX_FILENAME,
    LOCK_FILENAME,
    PackedResultStore,
    PackedStoreError,
    PackedStoreLockedError,
    migrate_files_to_packed,
)

__all__ = [
    "DATA_FILENAME",
    "INDEX_FILENAME",
    "LOCK_FILENAME",
    "PackedResultStore",
    "PackedStoreError",
    "PackedStoreLockedError",
    "migrate_files_to_packed",
]
