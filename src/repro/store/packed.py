"""Packed, append-only sweep result store (one artifact, not N tiny files).

The per-file sweep cache (``{cache_key}.json`` under ``cache_dir``) scales
linearly in *filesystem operations*: every warm point of a resumed or
re-run sweep costs one ``stat`` plus one ``open``/``read``/``close`` plus a
JSON parse, and a million-point grid becomes a million tiny files.  This
module packs the same content-hash-keyed results into **one** append-only
data file plus a small index:

``pack.data``
    a magic header followed by length-prefixed records.  Each record is an
    8-byte ``(crc32, length)`` frame followed by a pickled ``(cache_key,``
    :class:`~repro.api.results.ExperimentResult`\\ ``)`` payload.  Records
    are only ever appended; existing bytes are immutable, which is what
    makes concurrent readers safe and two packs mergeable by
    concatenation.
``pack.index``
    a JSON ``cache_key -> (offset, length)`` map plus the data size it was
    computed at, replaced atomically (unique temp file + fsync +
    ``os.replace``) after every append batch.  A missing, corrupt or stale
    index is rebuilt by scanning the data file
    (:meth:`PackedResultStore.rebuild_index`), tolerating a torn tail from
    a killed writer.
``pack.lock``
    a PID-sentinel file held only while a writer appends
    (:class:`PackedStoreLockedError` on contention, stale locks from dead
    processes reclaimed).

The payload codec is pickle, not JSON, on purpose: a warm sweep point
decodes ~5x faster, and the cache key already embeds the package version
(see :meth:`repro.api.sweep.SweepPoint.cache_key`), so a release whose
pickled layout changed can never be asked for stale records.  The pack is
a private local cache -- do not load packs from untrusted sources.

Reads are batched: :meth:`PackedResultStore.probe` answers "which of these
N keys exist" from the in-memory index without touching the data file, and
:meth:`PackedResultStore.get_many` coalesces adjacent records into large
sequential reads -- a fully warm grid restore is one index load plus one
pass over the data file.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import tempfile
import warnings
import zlib
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "DATA_FILENAME",
    "INDEX_FILENAME",
    "LOCK_FILENAME",
    "PackedStoreError",
    "PackedStoreLockedError",
    "PackedResultStore",
    "migrate_files_to_packed",
]

#: Data file name inside the store directory.
DATA_FILENAME = "pack.data"

#: Index file name inside the store directory.
INDEX_FILENAME = "pack.index"

#: Writer-lock sentinel file name inside the store directory.
LOCK_FILENAME = "pack.lock"

#: Magic bytes opening every data file; a mismatch means the file is not a
#: pack (or a different, incompatible pack generation).
_MAGIC = b"RPRPACK1\n"

#: Per-record frame: little-endian (crc32-of-payload, payload-length).
_FRAME = struct.Struct("<II")

#: Index format stamp; bump on incompatible layout changes.
_INDEX_FORMAT = 1

#: Payload codec recorded in the index (future-proofing; only pickle today).
_CODEC = "pickle"


class PackedStoreError(RuntimeError):
    """The pack's on-disk state cannot be used (bad magic, bad codec)."""


class PackedStoreLockedError(PackedStoreError):
    """Another live process holds the pack's writer lock.

    Appends take an exclusive PID-sentinel lock so two writers can never
    interleave records.  Callers for whom caching is best-effort (the
    sweep service, the serve daemon) catch this, warn, and continue
    uncached; a lock whose holder is dead is reclaimed automatically.
    """


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe of another process on this host.

    Thin wrapper over the shared :func:`repro.dist.locks.pid_alive` (kept
    under the historical private name).
    """
    from ..dist.locks import pid_alive

    return pid_alive(pid)


class PackedResultStore:
    """One directory-backed pack of cache-keyed experiment results.

    The store is cheap to construct (nothing is read until first use) and
    caches its index in memory; long-lived owners (a sweep invocation, the
    serve daemon) should reuse one instance.  Readers never take the lock;
    writers serialise through :meth:`append_many`.

    Args:
        directory: the store directory (shared with -- or converted from --
            a per-file sweep cache; see :func:`migrate_files_to_packed`).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        from ..dist.locks import PidFileLock

        self.directory = Path(directory)
        self._entries: Optional[Dict[str, Tuple[int, int]]] = None
        self._indexed_bytes = 0
        self._index_sig: Optional[Tuple[int, int]] = None
        # The writer lock is the shared PID-sentinel implementation; the
        # message templates reproduce this store's historical wording
        # byte-for-byte (pinned by the store tests).
        self._lock = PidFileLock(
            self.lock_path,
            error=PackedStoreLockedError,
            contended=(
                f"pack {self.directory} is being written by a live "
                "process (pid {holder}, lock file {path})"
            ),
            stale=(
                "reclaiming stale pack lock {path} (holder pid {holder} "
                "is gone)"
            ),
            exhausted=(
                "could not acquire pack lock {path}: another writer "
                "keeps re-creating it"
            ),
        )

    # -- paths ----------------------------------------------------------
    @property
    def data_path(self) -> Path:
        """The append-only record file (``pack.data``)."""
        return self.directory / DATA_FILENAME

    @property
    def index_path(self) -> Path:
        """The atomically-replaced key->offset index (``pack.index``)."""
        return self.directory / INDEX_FILENAME

    @property
    def lock_path(self) -> Path:
        """The PID-sentinel writer lock (``pack.lock``)."""
        return self.directory / LOCK_FILENAME

    def __len__(self) -> int:
        """Number of indexed records."""
        return len(self._index())

    # -- index ----------------------------------------------------------
    def _index(self) -> Dict[str, Tuple[int, int]]:
        """The in-memory index, loading (or rebuilding) it on first use."""
        if self._entries is None:
            self._load_index()
        assert self._entries is not None
        return self._entries

    def refresh(self) -> None:
        """Drop the in-memory index so the next read reloads it from disk
        (picks up records appended by another process)."""
        self._entries = None

    def _stat_index(self) -> Optional[Tuple[int, int]]:
        """``(mtime_ns, size)`` of ``pack.index`` (``None`` when absent)."""
        try:
            stat = self.index_path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def maybe_refresh(self) -> None:
        """Reload the index only if ``pack.index`` changed on disk.

        One ``stat`` when nothing changed -- cheap enough for a long-lived
        reader (the serve daemon) to call before every batched probe, so it
        observes records appended by concurrent sweep processes.
        """
        if self._entries is not None and self._stat_index() != self._index_sig:
            self.refresh()

    def _load_index(self) -> None:
        """Read ``pack.index``; fall back to a data-file scan when it is
        missing, unreadable, or stale relative to the data file."""
        try:
            payload = json.loads(self.index_path.read_text(encoding="utf-8"))
            if payload.get("format") != _INDEX_FORMAT:
                raise ValueError(
                    f"unsupported index format {payload.get('format')!r}"
                )
            if payload.get("codec") != _CODEC:
                raise PackedStoreError(
                    f"unsupported pack codec {payload.get('codec')!r} "
                    f"(expected {_CODEC!r})"
                )
            entries = {
                str(key): (int(offset), int(length))
                for key, (offset, length) in payload["entries"].items()
            }
            indexed = int(payload["data_bytes"])
        except FileNotFoundError:
            entries, indexed = None, 0
        except PackedStoreError:
            raise
        except (OSError, ValueError, KeyError, TypeError) as error:
            warnings.warn(
                f"rebuilding unreadable pack index {self.index_path} "
                f"({type(error).__name__}: {error})",
                RuntimeWarning,
                stacklevel=3,
            )
            entries, indexed = None, 0
        try:
            data_bytes = self.data_path.stat().st_size
        except FileNotFoundError:
            data_bytes = 0
        self._index_sig = self._stat_index()
        if entries is not None and indexed == data_bytes:
            self._entries, self._indexed_bytes = entries, indexed
            return
        if entries is not None and indexed != data_bytes:
            # A writer died between appending records and replacing the
            # index (indexed < data), or the data file was truncated
            # (indexed > data): rescan so the index matches reality.
            warnings.warn(
                f"pack index {self.index_path} covers {indexed} bytes but "
                f"{self.data_path} holds {data_bytes}; rebuilding",
                RuntimeWarning,
                stacklevel=3,
            )
        self._scan_data()

    def _scan_data(self) -> None:
        """Rebuild the in-memory index by walking every data-file record.

        Tolerates a torn tail: the scan stops (with a warning) at the first
        truncated or corrupt record, keeping everything before it.
        """
        entries: Dict[str, Tuple[int, int]] = {}
        good = 0
        try:
            handle = open(self.data_path, "rb")
        except FileNotFoundError:
            self._entries, self._indexed_bytes = entries, 0
            return
        with handle:
            magic = handle.read(len(_MAGIC))
            if not magic:
                self._entries, self._indexed_bytes = entries, 0
                return
            if magic != _MAGIC:
                raise PackedStoreError(
                    f"{self.data_path} is not a packed result store "
                    f"(bad magic {magic!r})"
                )
            good = len(_MAGIC)
            while True:
                offset = good
                frame = handle.read(_FRAME.size)
                if not frame:
                    break  # clean end of file
                if len(frame) < _FRAME.size:
                    self._warn_tail(offset, "truncated record frame")
                    break
                crc, length = _FRAME.unpack(frame)
                payload = handle.read(length)
                if len(payload) < length:
                    self._warn_tail(offset, "truncated record payload")
                    break
                if zlib.crc32(payload) != crc:
                    self._warn_tail(offset, "checksum mismatch")
                    break
                try:
                    key, _ = pickle.loads(payload)
                except Exception as error:
                    self._warn_tail(
                        offset, f"undecodable payload ({type(error).__name__})"
                    )
                    break
                good = offset + _FRAME.size + length
                entries[str(key)] = (offset, _FRAME.size + length)
        self._entries, self._indexed_bytes = entries, good

    def _warn_tail(self, offset: int, reason: str) -> None:
        """Report a scan stopping early; records before ``offset`` survive."""
        warnings.warn(
            f"pack data file {self.data_path} is damaged at byte {offset} "
            f"({reason}); keeping the {offset} intact bytes before it",
            RuntimeWarning,
            stacklevel=4,
        )

    def rebuild_index(self) -> int:
        """Rescan the data file and atomically rewrite ``pack.index``.

        Returns:
            The number of records indexed after the rebuild.
        """
        self._scan_data()
        self._write_index()
        return len(self._index())

    def _write_index(self) -> None:
        """Atomically replace ``pack.index`` with the in-memory index."""
        payload = {
            "format": _INDEX_FORMAT,
            "codec": _CODEC,
            "data_bytes": self._indexed_bytes,
            "entries": {
                key: list(location)
                for key, location in self._index().items()
            },
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        handle, temporary = tempfile.mkstemp(
            dir=self.directory, prefix=f".{INDEX_FILENAME}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, separators=(",", ":"))
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temporary, self.index_path)
            self._index_sig = self._stat_index()
        except BaseException:
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise

    # -- reads ----------------------------------------------------------
    def probe(self, keys: Iterable[str]) -> FrozenSet[str]:
        """The subset of ``keys`` present in the pack.

        One in-memory set intersection -- this is the batched replacement
        for the per-file cache's N ``stat`` calls, and what
        :class:`~repro.api.sweep.ShardPlanner` plans warm/cold shards from.
        """
        index = self._index()
        return frozenset(key for key in keys if key in index)

    def locate(self, keys: Iterable[str]) -> Dict[str, Tuple[int, int]]:
        """``{key: (offset, length)}`` of the present subset of ``keys``
        (the locations slim journal records carry)."""
        index = self._index()
        return {key: index[key] for key in keys if key in index}

    def get(self, key: str) -> Optional[Any]:
        """One record's :class:`~repro.api.results.ExperimentResult`, or
        ``None`` when absent or unreadable."""
        return self.get_many((key,)).get(key)

    def get_many(self, keys: Iterable[str]) -> Dict[str, Any]:
        """Batched read of every present, readable record of ``keys``.

        Requested records are sorted by file offset and adjacent records
        are coalesced into single sequential reads, so restoring a fully
        warm grid costs one pass over the data file instead of N opens.
        Damaged records are reported with a :class:`RuntimeWarning` and
        omitted (the caller recomputes them -- same contract as an
        unreadable per-file cache entry).
        """
        index = self._index()
        wanted = [
            (index[key][0], index[key][1], key)
            for key in dict.fromkeys(keys)
            if key in index
        ]
        results: Dict[str, Any] = {}
        if not wanted:
            return results
        wanted.sort()
        # Coalesce adjacent records into contiguous spans (mutated in
        # place so a fully-adjacent batch stays O(N)).
        spans: List[List[Any]] = []
        for offset, length, key in wanted:
            if spans and spans[-1][0] + spans[-1][1] == offset:
                spans[-1][1] += length
                spans[-1][2].append((offset, length, key))
            else:
                spans.append([offset, length, [(offset, length, key)]])
        try:
            handle = open(self.data_path, "rb")
        except FileNotFoundError:
            return results
        with handle:
            for start, span_length, members in spans:
                handle.seek(start)
                blob = handle.read(span_length)
                for offset, length, key in members:
                    record = blob[offset - start : offset - start + length]
                    result = self._decode(key, record, offset)
                    if result is not None:
                        results[key] = result
        return results

    def _decode(self, key: str, record: bytes, offset: int) -> Optional[Any]:
        """Decode one framed record; warn and return ``None`` on damage."""
        reason = None
        if len(record) < _FRAME.size:
            reason = "truncated frame"
        else:
            crc, length = _FRAME.unpack(record[: _FRAME.size])
            payload = record[_FRAME.size : _FRAME.size + length]
            if len(payload) < length:
                reason = "truncated payload"
            elif zlib.crc32(payload) != crc:
                reason = "checksum mismatch"
            else:
                try:
                    stored_key, result = pickle.loads(payload)
                except Exception as error:
                    reason = f"undecodable payload ({type(error).__name__})"
                else:
                    if stored_key != key:
                        reason = f"key mismatch (record holds {stored_key!r})"
                    else:
                        return result
        warnings.warn(
            f"ignoring damaged pack record for {key} at byte {offset} of "
            f"{self.data_path} ({reason}); treating as a cache miss",
            RuntimeWarning,
            stacklevel=3,
        )
        return None

    # -- writes ---------------------------------------------------------
    def _acquire_lock(self) -> None:
        """Take the exclusive writer lock (PID sentinel, ``O_EXCL``).

        Delegates to the shared :class:`repro.dist.locks.PidFileLock`
        (stale locks from dead writers are reclaimed with a
        :class:`RuntimeWarning`).

        Raises:
            PackedStoreLockedError: a live process holds the lock.
        """
        self._lock.acquire(stacklevel=5)

    def _lock_holder(self) -> Optional[int]:
        """PID recorded in the lock file (``None`` when unreadable)."""
        return self._lock.holder()

    def _release_lock(self) -> None:
        """Drop the writer lock (idempotent)."""
        self._lock.release()

    def append_many(
        self, entries: Sequence[Tuple[str, Any]]
    ) -> Dict[str, Tuple[int, int]]:
        """Append ``(cache_key, result)`` records atomically, in one batch.

        Takes the writer lock, re-syncs the index from disk (so records
        appended by a previous lock holder are seen and duplicate keys are
        skipped -- appends are idempotent per key), appends every new
        record, fsyncs the data file, then atomically replaces the index.
        A crash between the two leaves a data tail the next index load
        rescans -- never a corrupt store.

        Returns:
            ``{key: (offset, length)}`` for **every** requested key,
            pre-existing ones included (slim journal records use these).

        Raises:
            PackedStoreLockedError: a live process holds the writer lock.
        """
        if not entries:
            return {}
        self._acquire_lock()
        try:
            self.refresh()
            index = self._index()
            fresh = [
                (key, result)
                for key, result in entries
                if key not in index
            ]
            if fresh:
                with open(self.data_path, "ab") as handle:
                    if handle.tell() == 0:
                        handle.write(_MAGIC)
                    offset = handle.tell()
                    for key, result in fresh:
                        if key in index:
                            continue  # duplicate key inside one batch
                        payload = pickle.dumps(
                            (key, result), protocol=pickle.HIGHEST_PROTOCOL
                        )
                        handle.write(
                            _FRAME.pack(zlib.crc32(payload), len(payload))
                        )
                        handle.write(payload)
                        length = _FRAME.size + len(payload)
                        index[key] = (offset, length)
                        offset += length
                    handle.flush()
                    os.fsync(handle.fileno())
                    self._indexed_bytes = handle.tell()
                self._write_index()
            return {key: index[key] for key, _ in entries}
        finally:
            self._release_lock()

    # -- migration ------------------------------------------------------
    def ingest_files(self, directory: Optional[Union[str, Path]] = None) -> int:
        """Migrate a per-file sweep cache's ``{cache_key}.json`` entries.

        Every readable per-file entry of ``directory`` (default: the
        store's own directory, the usual shared-cache layout) whose key is
        not already packed is appended in one batch.  The source files are
        left in place -- the per-file backend keeps working during and
        after a migration.  Unreadable entries are skipped with a
        :class:`RuntimeWarning`.

        Returns:
            The number of newly packed entries.
        """
        from ..api.results import ExperimentResult

        source = Path(directory) if directory is not None else self.directory
        present = self._index()
        batch: List[Tuple[str, Any]] = []
        for path in sorted(source.glob("*.json")):
            key = path.stem
            if key in present:
                continue
            try:
                batch.append((key, ExperimentResult.load(path)))
            except (OSError, ValueError, KeyError, TypeError) as error:
                warnings.warn(
                    f"skipping unreadable cache entry {path} during pack "
                    f"migration ({type(error).__name__}: {error})",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if batch:
            self.append_many(batch)
        return len(batch)


def migrate_files_to_packed(directory: Union[str, Path]) -> int:
    """Convert a per-file sweep cache directory into a packed store.

    Convenience wrapper: opens (or creates) the pack inside ``directory``
    and ingests every per-file ``{cache_key}.json`` entry alongside it, so
    an existing cache can switch to ``cache_backend="packed"`` without
    recomputing anything.  Idempotent -- re-running migrates only entries
    the pack does not hold yet.

    Returns:
        The number of newly packed entries.
    """
    return PackedResultStore(directory).ingest_files(directory)
