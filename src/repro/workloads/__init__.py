"""Workload descriptors and sparsity profiles of the paper's networks."""

from .layers import LayerKind, LayerShape
from .models import PAPER_MODELS, ModelWorkload, get_workload, list_workloads
from .profiles import (
    LayerSparsityProfile,
    ModelSparsityProfile,
    profile_layer,
    profile_model,
    synthesize_activations,
    synthesize_layer_weights,
)

__all__ = [
    "LayerKind",
    "LayerShape",
    "ModelWorkload",
    "PAPER_MODELS",
    "get_workload",
    "list_workloads",
    "LayerSparsityProfile",
    "ModelSparsityProfile",
    "profile_layer",
    "profile_model",
    "synthesize_activations",
    "synthesize_layer_weights",
]
