"""Workload descriptors, graph IR and sparsity profiles of the networks."""

from .graph import (
    GRAPH_INPUT,
    GraphBuilder,
    GraphNode,
    GraphValidationError,
    ModelGraph,
    OpKind,
)
from .fuzz import (
    DEFAULT_MAX_NODES,
    DEFAULT_MIN_NODES,
    fuzz_corpus,
    fuzz_graph,
    fuzz_workload,
    graph_fingerprint,
)
from .layers import LayerKind, LayerShape
from .models import (
    PAPER_MODELS,
    TRANSFORMER_MODELS,
    WORKLOADS,
    WORKLOAD_FAMILIES,
    ModelWorkload,
    get_workload,
    list_workloads,
    workload_family,
)
from .profiles import (
    LayerSparsityProfile,
    ModelSparsityProfile,
    profile_layer,
    profile_model,
    synthesize_activations,
    synthesize_layer_weights,
)

__all__ = [
    "GRAPH_INPUT",
    "GraphBuilder",
    "GraphNode",
    "GraphValidationError",
    "ModelGraph",
    "OpKind",
    "DEFAULT_MIN_NODES",
    "DEFAULT_MAX_NODES",
    "fuzz_graph",
    "fuzz_workload",
    "fuzz_corpus",
    "graph_fingerprint",
    "LayerKind",
    "LayerShape",
    "ModelWorkload",
    "PAPER_MODELS",
    "TRANSFORMER_MODELS",
    "WORKLOADS",
    "WORKLOAD_FAMILIES",
    "get_workload",
    "list_workloads",
    "workload_family",
    "LayerSparsityProfile",
    "ModelSparsityProfile",
    "profile_layer",
    "profile_model",
    "synthesize_activations",
    "synthesize_layer_weights",
]
