"""Seeded random :class:`~repro.workloads.graph.ModelGraph` generator.

The cross-engine conformance harness (:mod:`repro.sim.engines.conformance`,
``tests/engines/``) needs far more structural variety than the seven stock
:data:`~repro.workloads.models.WORKLOAD_FAMILIES` graphs provide: residual
adds landing on SIMD outputs, concat joins of uneven branches, attention
blocks at odd token counts, depthwise stacks behind concats -- the shapes a
hand-written model zoo never quite covers.  This module grows such graphs
randomly, but under the full legality rules of the IR, so every generated
graph:

* passes :class:`~repro.workloads.graph.ModelGraph` validation (topological
  order, arity, weighted/SIMD typing);
* is *shape-legal* edge by edge -- producer and consumer geometries agree
  (channel counts match convolution fan-in, element-wise adds join
  identical geometries, concats sum channels over a shared spatial size,
  attention matmuls contract matching token/feature dims);
* satisfies the compiler's fusion contract (every SIMD node has a weighted
  producer upstream, because everything descends from the weighted stem);
* is **deterministic per seed**: the same seed always yields a
  byte-identical graph (pinned by :func:`graph_fingerprint` and
  ``tests/engines/test_fuzz.py``), so a failing corpus seed is a permanent
  reproducer.

Generated values carry one of three geometries -- spatial feature maps
``(channels, size)``, token matrices ``(tokens, dim)`` and flat vectors
``(features,)`` -- and each growth step draws an operator whose operand
requirements the current value pool can satisfy.  Attention is grown as a
whole idiomatic block (Q/K/V projections, scores matmul, softmax, context
matmul, output projection, optional residual add), mirroring
``transformer_tiny``.

The conformance suite feeds :func:`fuzz_corpus` workloads through every
registered engine; CI runs a pinned-seed smoke subset on every push and the
full corpus behind the ``fuzz`` pytest marker (see ``docs/testing.md``).
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence, Tuple

from .graph import GraphBuilder, ModelGraph
from .models import ModelWorkload

__all__ = [
    "DEFAULT_MIN_NODES",
    "DEFAULT_MAX_NODES",
    "fuzz_graph",
    "fuzz_workload",
    "fuzz_corpus",
    "graph_fingerprint",
]

#: Default node-count bounds of one generated graph.  Small enough that a
#: whole corpus profiles and simulates in seconds, large enough that joins,
#: attention blocks and mixed-geometry chains all occur.
DEFAULT_MIN_NODES = 6
DEFAULT_MAX_NODES = 14

# Small palettes keep sparsity-profiling and compile cost bounded while
# still varying every geometry axis the mapper and fusion passes branch on.
_CHANNELS = (4, 8, 16, 32)
_SIZES = (4, 8, 16)
_DIMS = (8, 16, 32)

_SPATIAL = "spatial"
_TOKENS = "tokens"
_FLAT = "flat"


class _Grower:
    """Mutable growth state: the builder plus the typed value pool."""

    def __init__(self, rng: random.Random, name: str) -> None:
        self.rng = rng
        self.g = GraphBuilder(name)
        # Every produced value with its geometry tag:
        # ("spatial", channels, size) | ("tokens", tokens, dim) | ("flat", n).
        self.values: List[Tuple[str, Tuple]] = []
        self.count = 0

    def fresh(self, op: str) -> str:
        """Allocate the next deterministic node name."""
        name = f"n{self.count}_{op}"
        self.count += 1
        return name

    def emit(self, name: str, geom: Tuple) -> None:
        """Record a produced value and its geometry."""
        self.values.append((name, geom))

    def pool(self, kind: str) -> List[Tuple[str, Tuple]]:
        """All produced values of one geometry kind, in creation order."""
        return [(n, g) for n, g in self.values if g[0] == kind]

    # -- operator emitters ------------------------------------------------
    # Each returns the number of nodes appended (0 when its preconditions
    # were not met after sampling), so the growth loop can track the budget.

    def grow_conv(self) -> int:
        """A 3x3 or 1x1 convolution off a random spatial value."""
        spatial = self.pool(_SPATIAL)
        source, (_, cin, size) = self.rng.choice(spatial)
        kernel = self.rng.choice((1, 3))
        stride = self.rng.choice((1, 2)) if size >= 2 else 1
        # Half-padding keeps out = (size - 1) // stride + 1 positive.
        out_size = (size - 1) // stride + 1
        # Frequently re-use the input channel count at stride 1 so later
        # residual adds find same-geometry partners.
        if stride == 1 and kernel == 3 and self.rng.random() < 0.5:
            cout = cin
        else:
            cout = self.rng.choice(_CHANNELS)
        name = self.g.conv(
            self.fresh("conv"), cin, cout, kernel, size,
            stride=stride, inputs=source,
        )
        self.emit(name, (_SPATIAL, cout, out_size))
        return 1

    def grow_depthwise(self) -> int:
        """A 3x3 depthwise convolution off a random spatial value."""
        spatial = self.pool(_SPATIAL)
        source, (_, channels, size) = self.rng.choice(spatial)
        stride = self.rng.choice((1, 2)) if size >= 2 else 1
        out_size = (size - 1) // stride + 1
        name = self.g.depthwise(
            self.fresh("dw"), channels, 3, size, stride=stride, inputs=source
        )
        self.emit(name, (_SPATIAL, channels, out_size))
        return 1

    def grow_linear(self) -> int:
        """A fully connected layer flattening a spatial value (or chaining
        off an existing flat one)."""
        flat = self.pool(_FLAT)
        spatial = self.pool(_SPATIAL)
        candidates = flat + spatial
        source, geom = self.rng.choice(candidates)
        cin = geom[1] if geom[0] == _FLAT else geom[1] * geom[2] * geom[2]
        cout = self.rng.choice(_CHANNELS)
        name = self.g.linear(self.fresh("fc"), cin, cout, inputs=source)
        self.emit(name, (_FLAT, cout))
        return 1

    def grow_patches(self) -> int:
        """Reinterpret a spatial value as tokens via a patch projection
        (the ViT patch-embedding idiom): ``size*size`` tokens of ``channels``
        features each, projected to a model dim."""
        spatial = [
            (n, g) for n, g in self.pool(_SPATIAL) if g[2] <= 8
        ]  # cap token count at 64
        if not spatial:
            return 0
        source, (_, channels, size) = self.rng.choice(spatial)
        dim = self.rng.choice(_DIMS)
        name = self.g.matmul(
            self.fresh("patch"), size * size, channels, dim, inputs=source
        )
        self.emit(name, (_TOKENS, size * size, dim))
        return 1

    def grow_project(self) -> int:
        """A token-parallel projection matmul off a random token value."""
        tokens = self.pool(_TOKENS)
        source, (_, count, dim) = self.rng.choice(tokens)
        cout = self.rng.choice(_DIMS)
        name = self.g.matmul(
            self.fresh("proj"), count, dim, cout, inputs=source
        )
        self.emit(name, (_TOKENS, count, cout))
        return 1

    def grow_attention(self) -> int:
        """One idiomatic attention block off a random token value:
        Q/K/V projections, activation-activation scores matmul, softmax,
        context matmul, output projection and (geometry permitting) the
        closing residual add -- 7 nodes total."""
        tokens = self.pool(_TOKENS)
        source, (_, count, dim) = self.rng.choice(tokens)
        base = self.fresh("attn")
        q = self.g.matmul(f"{base}_q", count, dim, dim, inputs=source)
        k = self.g.matmul(f"{base}_k", count, dim, dim, inputs=source)
        v = self.g.matmul(f"{base}_v", count, dim, dim, inputs=source)
        scores = self.g.matmul(
            f"{base}_scores", count, dim, count, inputs=(q, k)
        )
        attn = self.g.softmax(f"{base}_softmax", inputs=scores)
        context = self.g.matmul(
            f"{base}_ctx", count, count, dim, inputs=(attn, v)
        )
        out = self.g.matmul(f"{base}_out", count, dim, dim, inputs=context)
        self.emit(out, (_TOKENS, count, dim))
        residual = self.g.add(f"{base}_res", source, out)
        self.emit(residual, (_TOKENS, count, dim))
        return 8

    def grow_add(self) -> int:
        """An element-wise residual add of two same-geometry values."""
        pair = self._same_geometry_pair()
        if pair is None:
            return 0
        (a, geom), (b, _) = pair
        name = self.g.add(self.fresh("add"), a, b)
        self.emit(name, geom)
        return 1

    def grow_concat(self) -> int:
        """A channel concat of two spatial values sharing a spatial size
        (or two token values sharing a token count)."""
        groups = {}
        for name, geom in self.values:
            if geom[0] == _SPATIAL:
                groups.setdefault(("s", geom[2]), []).append((name, geom))
            elif geom[0] == _TOKENS:
                groups.setdefault(("t", geom[1]), []).append((name, geom))
        eligible = sorted(
            (key for key, members in groups.items() if len(members) >= 2),
        )
        if not eligible:
            return 0
        key = self.rng.choice(eligible)
        a, b = self.rng.sample(groups[key], 2)
        name = self.g.concat(self.fresh("cat"), a[0], b[0])
        if key[0] == "s":
            geom = (_SPATIAL, a[1][1] + b[1][1], key[1])
        else:
            geom = (_TOKENS, key[1], a[1][2] + b[1][2])
        self.emit(name, geom)
        return 1

    def grow_softmax(self) -> int:
        """A standalone softmax over a random token value."""
        tokens = self.pool(_TOKENS)
        source, geom = self.rng.choice(tokens)
        name = self.g.softmax(self.fresh("sm"), inputs=source)
        self.emit(name, geom)
        return 1

    def _same_geometry_pair(self):
        """Two distinct values with identical geometry, or ``None``."""
        groups = {}
        for value in self.values:
            groups.setdefault(value[1], []).append(value)
        eligible = sorted(
            (geom for geom, members in groups.items() if len(members) >= 2),
            key=str,
        )
        if not eligible:
            return None
        geom = self.rng.choice(eligible)
        return tuple(self.rng.sample(groups[geom], 2))


def fuzz_graph(
    seed: int,
    min_nodes: int = DEFAULT_MIN_NODES,
    max_nodes: int = DEFAULT_MAX_NODES,
    name: Optional[str] = None,
) -> ModelGraph:
    """Grow one random, valid, shape-legal :class:`ModelGraph`.

    Args:
        seed: RNG seed; the same seed always produces a byte-identical
            graph (compare with :func:`graph_fingerprint`).
        min_nodes: lower bound on the node count.
        max_nodes: upper bound on the node count (attention blocks may
            overshoot by a few nodes -- blocks are grown atomically).
        name: graph name; defaults to ``"fuzz-<seed>"``.

    Returns:
        A validated :class:`ModelGraph` whose every SIMD node has a
        weighted producer upstream (the compiler's fusion precondition).
    """
    if min_nodes < 1 or max_nodes < min_nodes:
        raise ValueError("node bounds must satisfy 1 <= min_nodes <= max_nodes")
    rng = random.Random(seed)
    grower = _Grower(rng, name if name is not None else f"fuzz-{seed}")
    budget = rng.randint(min_nodes, max_nodes)

    # The weighted stem: everything descends from it, so every later SIMD
    # node anchors at a weighted layer (plan_elementwise_fusion's rule).
    size = rng.choice(_SIZES)
    cout = rng.choice(_CHANNELS)
    stem = grower.g.conv(grower.fresh("conv"), 3, cout, 3, size)
    grower.emit(stem, (_SPATIAL, cout, size))
    grown = 1

    # (emitter, weight, headroom): an op is drawn only when its operand
    # pool is non-empty and at least `headroom` budget remains.
    menu = (
        (grower.grow_conv, 5, 1, _SPATIAL),
        (grower.grow_depthwise, 2, 1, _SPATIAL),
        (grower.grow_linear, 1, 1, None),
        (grower.grow_patches, 1, 2, _SPATIAL),
        (grower.grow_project, 2, 1, _TOKENS),
        (grower.grow_attention, 2, 8, _TOKENS),
        (grower.grow_add, 3, 1, None),
        (grower.grow_concat, 2, 1, None),
        (grower.grow_softmax, 1, 1, _TOKENS),
    )
    while grown < budget:
        remaining = budget - grown
        choices = []
        weights = []
        for emitter, weight, headroom, needs in menu:
            if headroom > remaining:
                continue
            if needs is not None and not grower.pool(needs):
                continue
            choices.append(emitter)
            weights.append(weight)
        emitter = rng.choices(choices, weights=weights, k=1)[0]
        appended = emitter()
        if appended == 0:
            # Preconditions not satisfiable right now (e.g. no two values
            # share a geometry yet); fall back to the always-available conv.
            appended = grower.grow_conv()
        grown += appended
    return grower.g.build()


def fuzz_workload(
    seed: int,
    min_nodes: int = DEFAULT_MIN_NODES,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> ModelWorkload:
    """Wrap :func:`fuzz_graph` into a profile-ready
    :class:`~repro.workloads.models.ModelWorkload`.

    The redundancy / activation-density knobs are themselves drawn
    deterministically from the seed (quantised to two decimals so the
    workload reprs stay stable), spanning the over-parameterised-to-compact
    range the stock model zoo covers.
    """
    # A string seed hashes through SHA-512 inside random.Random, so the
    # knobs are deterministic across processes (tuple seeds would go
    # through PYTHONHASHSEED-randomised hash()).
    rng = random.Random(f"fuzz-knobs-{seed}")
    graph = fuzz_graph(seed, min_nodes=min_nodes, max_nodes=max_nodes)
    return ModelWorkload.from_graph(
        graph,
        redundancy=round(rng.uniform(0.3, 0.95), 2),
        activation_density=round(rng.uniform(0.3, 0.9), 2),
    )


def fuzz_corpus(
    seeds: Sequence[int],
    min_nodes: int = DEFAULT_MIN_NODES,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> List[ModelWorkload]:
    """Generate one workload per seed (the conformance corpus helper)."""
    return [
        fuzz_workload(seed, min_nodes=min_nodes, max_nodes=max_nodes)
        for seed in seeds
    ]


def graph_fingerprint(graph: ModelGraph) -> str:
    """A stable content hash of a graph's full structure.

    Covers every node's name, op, input edges and (for weighted nodes) the
    complete :class:`~repro.workloads.layers.LayerShape` record, plus the
    graph name and output node -- two graphs fingerprint equal iff they are
    structurally byte-identical.  The determinism self-tests pin
    ``fuzz_graph(seed)`` to a constant fingerprint per seed.
    """
    parts = [graph.name, graph.output]
    for node in graph.nodes:
        layer = "-" if node.layer is None else repr(node.layer)
        parts.append(f"{node.name}|{node.op}|{','.join(node.inputs)}|{layer}")
    digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
    return digest
