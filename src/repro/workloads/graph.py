"""Graph-native workload IR: networks as DAGs of typed operator nodes.

Historically the workload layer described every network as a flat
``Tuple[LayerShape, ...]``, which cannot express the residual and branch
structure of the paper's evaluation networks (ResNet shortcuts, MobileNet
inverted residuals) or transformer-class models at all.  This module is the
graph front end of the stack:

* :class:`GraphNode` -- one typed operator: a *weighted* op (``conv``,
  ``depthwise``, ``linear``, ``matmul``) carrying a
  :class:`~repro.workloads.layers.LayerShape`, or a *SIMD* op (``add``,
  ``concat``, ``softmax``) executed by the post-processing SIMD core;
* :class:`ModelGraph` -- an immutable DAG of nodes with explicit edges,
  deterministic topological scheduling and structural validation;
* :class:`GraphBuilder` -- the ergonomic construction front door the model
  zoo in :mod:`repro.workloads.models` uses.

The **linearize contract**: :meth:`ModelGraph.linearize` projects the graph
onto the historical flat view -- the weighted layers in topological
(schedule) order.  Everything cycle-model-facing (sparsity profiling, the
analytical engines, the mapper) consumes that view unchanged, so graph
workloads are a lossless superset: the graph adds branch/join structure the
compiler's fusion and liveness passes exploit, while the broadcast-cycle
accounting both simulators agree on is a pure function of the linearized
layers.  ``docs/workloads.md`` documents the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .layers import LayerKind, LayerShape

__all__ = [
    "GRAPH_INPUT",
    "OpKind",
    "GraphValidationError",
    "GraphNode",
    "ModelGraph",
    "GraphBuilder",
]

#: Reserved edge-source name denoting the graph's external input tensor.
GRAPH_INPUT = "input"


class OpKind:
    """Operator type constants of the graph IR.

    Weighted ops carry a :class:`~repro.workloads.layers.LayerShape` and map
    onto the PIM macros; SIMD ops are element-wise / normalisation work the
    post-processing SIMD core executes (and the compiler fuses into the
    producing layer's epilogue).
    """

    CONV = LayerKind.CONV
    DEPTHWISE = LayerKind.DEPTHWISE
    LINEAR = LayerKind.LINEAR
    MATMUL = LayerKind.MATMUL
    ADD = "add"
    CONCAT = "concat"
    SOFTMAX = "softmax"

    WEIGHTED = (CONV, DEPTHWISE, LINEAR, MATMUL)
    SIMD = (ADD, CONCAT, SOFTMAX)
    _ALL = WEIGHTED + SIMD

    @classmethod
    def validate(cls, op: str) -> str:
        """Check an operator name, returning it unchanged.

        Raises:
            GraphValidationError: for an unknown operator.
        """
        if op not in cls._ALL:
            raise GraphValidationError(
                f"unknown op {op!r}; expected one of {cls._ALL}"
            )
        return op

    @classmethod
    def is_weighted(cls, op: str) -> bool:
        """Whether an operator maps onto the PIM macros (carries weights)."""
        return op in cls.WEIGHTED


class GraphValidationError(ValueError):
    """A structurally invalid graph (bad edges, arity or node typing)."""


@dataclass(frozen=True)
class GraphNode:
    """One typed operator node of a :class:`ModelGraph`.

    Attributes:
        name: node name, unique within the graph.
        op: one of :class:`OpKind` (weighted or SIMD).
        inputs: names of the producing nodes (or :data:`GRAPH_INPUT`).
        layer: the layer-shape record of a weighted op (``None`` for SIMD
            ops -- their output geometry derives from their inputs).
    """

    name: str
    op: str
    inputs: Tuple[str, ...] = (GRAPH_INPUT,)
    layer: Optional[LayerShape] = None

    def __post_init__(self) -> None:
        OpKind.validate(self.op)
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if not self.name:
            raise GraphValidationError("node names must be non-empty")
        if not self.inputs:
            raise GraphValidationError(f"node {self.name!r} has no inputs")
        if OpKind.is_weighted(self.op):
            if self.layer is None:
                raise GraphValidationError(
                    f"weighted node {self.name!r} ({self.op}) needs a LayerShape"
                )
            if self.layer.kind != self.op:
                raise GraphValidationError(
                    f"node {self.name!r}: op {self.op!r} does not match its "
                    f"layer kind {self.layer.kind!r}"
                )
            # Projections/convolutions consume one tensor; activation-
            # activation matmuls (attention) consume two.
            limit = 2 if self.op == OpKind.MATMUL else 1
            if len(self.inputs) > limit:
                raise GraphValidationError(
                    f"node {self.name!r} ({self.op}) takes at most {limit} "
                    f"input(s), got {len(self.inputs)}"
                )
        else:
            if self.layer is not None:
                raise GraphValidationError(
                    f"SIMD node {self.name!r} ({self.op}) must not carry a "
                    "LayerShape"
                )
            if self.op in (OpKind.ADD, OpKind.CONCAT) and len(self.inputs) < 2:
                raise GraphValidationError(
                    f"node {self.name!r} ({self.op}) needs at least two inputs"
                )
            if self.op == OpKind.SOFTMAX and len(self.inputs) != 1:
                raise GraphValidationError(
                    f"node {self.name!r} (softmax) takes exactly one input"
                )

    @property
    def is_weighted(self) -> bool:
        """Whether this node maps onto the PIM macros."""
        return OpKind.is_weighted(self.op)

    @property
    def is_join(self) -> bool:
        """Whether this node consumes several *produced* values.

        True for the branch merge points of a graph: add/concat joins and
        two-operand attention matmuls.  Edges from the graph input do not
        count -- a node fed twice from :data:`GRAPH_INPUT` merges nothing.
        """
        return sum(1 for source in self.inputs if source != GRAPH_INPUT) >= 2


class ModelGraph:
    """An immutable DAG of operator nodes describing one network.

    Nodes must be supplied in a topological order (every input refers either
    to :data:`GRAPH_INPUT` or to an earlier node), which makes the insertion
    order the canonical deterministic schedule -- there is no tie-breaking
    heuristic to drift between releases.

    Args:
        name: workload name the graph belongs to.
        nodes: the operator nodes, topologically ordered.
        output: name of the graph's output node (defaults to the last node).

    Raises:
        GraphValidationError: for duplicate names, dangling or forward
            edges, an unknown output node, or an empty graph.
    """

    def __init__(
        self,
        name: str,
        nodes: Sequence[GraphNode],
        output: Optional[str] = None,
    ) -> None:
        self.name = str(name)
        self.nodes: Tuple[GraphNode, ...] = tuple(nodes)
        if not self.nodes:
            raise GraphValidationError(f"graph {name!r} has no nodes")
        self._by_name: Dict[str, GraphNode] = {}
        for node in self.nodes:
            if node.name == GRAPH_INPUT:
                raise GraphValidationError(
                    f"node name {GRAPH_INPUT!r} is reserved for the graph input"
                )
            if node.name in self._by_name:
                raise GraphValidationError(f"duplicate node name {node.name!r}")
            for source in node.inputs:
                if source != GRAPH_INPUT and source not in self._by_name:
                    raise GraphValidationError(
                        f"node {node.name!r} consumes {source!r}, which is "
                        "neither the graph input nor an earlier node "
                        "(nodes must be listed in topological order)"
                    )
            self._by_name[node.name] = node
        self.output = output if output is not None else self.nodes[-1].name
        if self.output not in self._by_name:
            raise GraphValidationError(
                f"output node {self.output!r} does not exist"
            )
        self._consumers: Dict[str, Tuple[str, ...]] = {}
        consumers: Dict[str, List[str]] = {}
        for node in self.nodes:
            for source in node.inputs:
                consumers.setdefault(source, []).append(node.name)
        self._consumers = {k: tuple(v) for k, v in consumers.items()}

    def __len__(self) -> int:
        """Number of nodes in the graph."""
        return len(self.nodes)

    def __iter__(self):
        """Iterate the nodes in schedule (topological) order."""
        return iter(self.nodes)

    def __repr__(self) -> str:
        return (
            f"ModelGraph({self.name!r}, {len(self.nodes)} nodes, "
            f"{len(self.weighted_nodes())} weighted)"
        )

    def node(self, name: str) -> GraphNode:
        """Look one node up by name.

        Raises:
            KeyError: listing the available node names.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown node {name!r} of graph {self.name!r}; available: "
                f"{[n.name for n in self.nodes]}"
            ) from None

    def consumers(self, name: str) -> Tuple[GraphNode, ...]:
        """All nodes consuming ``name``'s output, in schedule order."""
        if name != GRAPH_INPUT:
            self.node(name)  # raises KeyError for unknown names
        return tuple(self._by_name[n] for n in self._consumers.get(name, ()))

    def topological_order(self) -> Tuple[GraphNode, ...]:
        """The canonical schedule: the validated insertion order."""
        return self.nodes

    def weighted_nodes(self) -> Tuple[GraphNode, ...]:
        """The macro-mapped nodes, in schedule order."""
        return tuple(node for node in self.nodes if node.is_weighted)

    def simd_nodes(self) -> Tuple[GraphNode, ...]:
        """The SIMD-core nodes (add/concat/softmax), in schedule order."""
        return tuple(node for node in self.nodes if not node.is_weighted)

    def join_nodes(self) -> Tuple[GraphNode, ...]:
        """The branch merge points: nodes consuming several produced values
        (add/concat joins and two-operand matmuls)."""
        return tuple(node for node in self.nodes if node.is_join)

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """Every (producer, consumer) edge, in consumer schedule order."""
        return tuple(
            (source, node.name) for node in self.nodes for source in node.inputs
        )

    def linearize(self) -> Tuple[LayerShape, ...]:
        """The lossless legacy view: weighted layers in schedule order.

        This is the projection the sparsity profiler and both cycle-model
        engines consume; SIMD nodes carry no macro work and are priced by
        the compiler's fusion pass instead.
        """
        return tuple(node.layer for node in self.weighted_nodes())

    def output_payload(self, name: str) -> int:
        """Feature-map bytes (INT8, one byte per element) of a node's output.

        SIMD node payloads derive from their inputs: element-wise ops
        (add/softmax) preserve their first input's geometry, a concat sums
        its inputs.  The graph input's payload is reported as 0 -- it
        streams from off-chip and never occupies the feature buffer as a
        produced value.
        """
        if name == GRAPH_INPUT:
            return 0
        node = self.node(name)
        if node.is_weighted:
            return node.layer.out_channels * node.layer.output_positions
        if node.op == OpKind.CONCAT:
            return sum(self.output_payload(source) for source in node.inputs)
        return self.output_payload(node.inputs[0])


class GraphBuilder:
    """Fluent construction helper for :class:`ModelGraph`.

    Every ``add``-style method appends one node and returns its name, so
    chains read naturally::

        g = GraphBuilder("tiny")
        x = g.conv("stem", 3, 16, 3, 32)
        y = g.conv("conv1", 16, 16, 3, 32, inputs=x)
        g.add("join", x, y)
        graph = g.build()

    When ``inputs`` is omitted a node consumes the previously appended node
    (or the graph input for the first node) -- the common chain case.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: List[GraphNode] = []

    @property
    def last(self) -> str:
        """Name of the most recently appended node (the chain head).

        Raises:
            IndexError: when no node has been appended yet.
        """
        return self._nodes[-1].name

    def _chain(self, inputs) -> Tuple[str, ...]:
        """Resolve an ``inputs`` argument to a tuple of source names."""
        if inputs is None:
            return (self._nodes[-1].name if self._nodes else GRAPH_INPUT,)
        if isinstance(inputs, str):
            return (inputs,)
        return tuple(inputs)

    def append(self, node: GraphNode) -> str:
        """Append a pre-built node and return its name."""
        self._nodes.append(node)
        return node.name

    def conv(
        self,
        name: str,
        cin: int,
        cout: int,
        kernel: int,
        size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        inputs=None,
    ) -> str:
        """Append a standard convolution node."""
        layer = LayerShape(
            name=name,
            kind=LayerKind.CONV,
            in_channels=cin,
            out_channels=cout,
            kernel_size=kernel,
            stride=stride,
            input_size=size,
            padding=kernel // 2 if padding is None else padding,
        )
        return self.append(
            GraphNode(name, OpKind.CONV, self._chain(inputs), layer)
        )

    def depthwise(
        self,
        name: str,
        channels: int,
        kernel: int,
        size: int,
        stride: int = 1,
        inputs=None,
    ) -> str:
        """Append a depthwise convolution node."""
        layer = LayerShape(
            name=name,
            kind=LayerKind.DEPTHWISE,
            in_channels=channels,
            out_channels=channels,
            kernel_size=kernel,
            stride=stride,
            input_size=size,
            padding=kernel // 2,
        )
        return self.append(
            GraphNode(name, OpKind.DEPTHWISE, self._chain(inputs), layer)
        )

    def linear(self, name: str, cin: int, cout: int, inputs=None) -> str:
        """Append a fully connected node."""
        layer = LayerShape(
            name=name, kind=LayerKind.LINEAR, in_channels=cin, out_channels=cout
        )
        return self.append(
            GraphNode(name, OpKind.LINEAR, self._chain(inputs), layer)
        )

    def matmul(
        self, name: str, tokens: int, cin: int, cout: int, inputs=None
    ) -> str:
        """Append a token-parallel matmul node (``tokens x cin @ cin x cout``).

        Pass two ``inputs`` for an activation-activation product (attention
        scores / attention-times-values); the second operand is loaded into
        the macros like a weight matrix.
        """
        layer = LayerShape(
            name=name,
            kind=LayerKind.MATMUL,
            in_channels=cin,
            out_channels=cout,
            input_size=tokens,
        )
        return self.append(
            GraphNode(name, OpKind.MATMUL, self._chain(inputs), layer)
        )

    def add(self, name: str, *inputs: str) -> str:
        """Append an element-wise addition (residual join) node."""
        return self.append(GraphNode(name, OpKind.ADD, tuple(inputs)))

    def concat(self, name: str, *inputs: str) -> str:
        """Append a channel-concatenation join node."""
        return self.append(GraphNode(name, OpKind.CONCAT, tuple(inputs)))

    def softmax(self, name: str, inputs=None) -> str:
        """Append a softmax (SIMD normalisation) node."""
        return self.append(
            GraphNode(name, OpKind.SOFTMAX, self._chain(inputs))
        )

    def build(self, output: Optional[str] = None) -> ModelGraph:
        """Validate and freeze the accumulated nodes into a graph."""
        return ModelGraph(self.name, self._nodes, output=output)
