"""Layer shape descriptors for the performance model.

A :class:`LayerShape` captures everything the mapper / cycle model needs to
know about a layer: its type (standard, depthwise, fully connected or
token-parallel matmul), the channel and kernel geometry and the spatial (or
token) size of its input.  The full networks of the paper are described as
:class:`~repro.workloads.graph.ModelGraph` DAGs whose weighted nodes each
carry one of these records (see :mod:`repro.workloads.models`).

The ``matmul`` kind models the token-parallel GEMMs of transformer-class
workloads: ``input_size`` is reinterpreted as the number of *tokens* (output
rows), the reduction runs over ``in_channels`` and each token produces
``out_channels`` outputs.  Activation-activation products (attention scores,
attention-times-values) reuse the same record -- on a weight-stationary PIM
the second operand is loaded into the macros exactly like a weight matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LayerKind", "LayerShape"]


class LayerKind:
    """Layer type constants."""

    CONV = "conv"
    DEPTHWISE = "depthwise"
    LINEAR = "linear"
    MATMUL = "matmul"

    _ALL = (CONV, DEPTHWISE, LINEAR, MATMUL)

    @classmethod
    def validate(cls, kind: str) -> str:
        """Check a layer-kind name, returning it unchanged.

        Raises:
            ValueError: for an unknown kind.
        """
        if kind not in cls._ALL:
            raise ValueError(f"unknown layer kind {kind!r}; expected one of {cls._ALL}")
        return kind


@dataclass(frozen=True)
class LayerShape:
    """Shape of one weighted layer.

    Attributes:
        name: layer name (unique within its model).
        kind: one of :class:`LayerKind`.
        in_channels: input channels (input features for a linear layer, the
            reduction length for a matmul).
        out_channels: output channels / filters (output features for linear,
            output columns for a matmul).
        kernel_size: spatial kernel size (1 for linear/matmul layers).
        stride: spatial stride (1 for linear/matmul layers).
        input_size: input spatial resolution (1 for linear layers, the
            *token count* for a matmul).
        padding: spatial padding.
    """

    name: str
    kind: str
    in_channels: int
    out_channels: int
    kernel_size: int = 1
    stride: int = 1
    input_size: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        LayerKind.validate(self.kind)
        if min(self.in_channels, self.out_channels) <= 0:
            raise ValueError("channel counts must be positive")
        if min(self.kernel_size, self.stride, self.input_size) <= 0:
            raise ValueError("kernel, stride and input size must be positive")
        if self.padding < 0:
            raise ValueError("padding must be non-negative")
        if self.kind == LayerKind.DEPTHWISE and self.in_channels != self.out_channels:
            raise ValueError("depthwise layers must preserve the channel count")

    @property
    def output_size(self) -> int:
        """Output spatial resolution (1 for linear and matmul layers)."""
        if self.kind in (LayerKind.LINEAR, LayerKind.MATMUL):
            return 1
        out = (self.input_size + 2 * self.padding - self.kernel_size) // self.stride + 1
        if out <= 0:
            raise ValueError(f"layer {self.name} has a non-positive output size")
        return out

    @property
    def output_positions(self) -> int:
        """Number of output pixels (1 for linear layers, tokens for matmul)."""
        if self.kind == LayerKind.MATMUL:
            return self.input_size
        return self.output_size * self.output_size

    @property
    def reduction_size(self) -> int:
        """Elements reduced per output value (the dot-product length)."""
        if self.kind in (LayerKind.LINEAR, LayerKind.MATMUL):
            return self.in_channels
        if self.kind == LayerKind.DEPTHWISE:
            return self.kernel_size * self.kernel_size
        return self.in_channels * self.kernel_size * self.kernel_size

    @property
    def weight_count(self) -> int:
        """Number of weights in the layer."""
        return self.out_channels * self.reduction_size

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations of one inference."""
        return self.output_positions * self.out_channels * self.reduction_size

    @property
    def activation_count(self) -> int:
        """Input activations read by one inference (before im2col reuse)."""
        if self.kind == LayerKind.LINEAR:
            return self.in_channels
        if self.kind == LayerKind.MATMUL:
            return self.in_channels * self.input_size
        return self.in_channels * self.input_size * self.input_size
