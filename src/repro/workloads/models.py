"""Graph-native workload tables of the evaluation networks.

The five CIFAR-style (32x32 input) paper networks -- AlexNet, VGG-19,
ResNet-18, MobileNetV2 and EfficientNet-B0 -- are described as
:class:`~repro.workloads.graph.ModelGraph` DAGs with their residual and
branch structure intact: ResNet-18 and MobileNetV2 carry their 1x1
downsampling-shortcut convolutions (previously omitted from the flat layer
tables) and explicit element-wise ``add`` join nodes; EfficientNet-B0
carries its identity MBConv residuals (squeeze-excite stays omitted, as in
the paper's tables).  Channel counts and strides follow the standard CIFAR
adaptations of each architecture.

Two transformer-class workloads -- ``vit_tiny`` (patch-embedding ViT
encoder) and ``transformer_tiny`` (encoder-only attention-block stack) --
exist *only* as graphs: their attention blocks branch into Q/K/V
projections, join through activation-activation matmuls and softmax nodes,
and close two residual adds per block.

Every workload still exposes the historical flat ``layers`` tuple through
the lossless :meth:`~repro.workloads.graph.ModelGraph.linearize` view, so
sparsity profiling, both cycle-model engines and all registered presets
keep working unchanged (see ``docs/workloads.md`` for the contract and the
cycle-count delta of the restored shortcut layers).

Every model also carries a ``redundancy`` knob in 0..1 used by
:mod:`repro.workloads.profiles` when synthesising representative weights:
standard over-parameterised networks (AlexNet, VGG) have most of their
quantized weights near zero (high redundancy -> FTA thresholds mostly 1),
while compact networks (MobileNetV2, EfficientNet-B0) spread their weight
energy much more evenly (low redundancy -> thresholds mostly 2).
Transformer blocks sit between the two regimes.  This mirrors the
weight-distribution observation the paper builds the FTA algorithm on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .graph import GraphBuilder, ModelGraph
from .layers import LayerShape

__all__ = [
    "ModelWorkload",
    "PAPER_MODELS",
    "TRANSFORMER_MODELS",
    "WORKLOADS",
    "WORKLOAD_FAMILIES",
    "get_workload",
    "list_workloads",
    "workload_family",
]


@dataclass(frozen=True)
class ModelWorkload:
    """A named network: a layer table plus (optionally) its source graph.

    Attributes:
        name: paper name of the model (e.g. ``"alexnet"``).
        layers: weighted layers in execution order -- for graph-built
            workloads this is exactly ``graph.linearize()``.
        redundancy: 0..1 knob describing how concentrated the weight
            distribution is (see module docstring).
        activation_density: 0..1 typical fraction of non-zero activation
            values feeding the layers (post-ReLU/GELU), used when
            synthesising representative input features.
        graph: the full DAG of the workload (``None`` for purely linear
            legacy tables); carries the branch/join structure the compiler's
            fusion and liveness passes consume.
    """

    name: str
    layers: Tuple[LayerShape, ...]
    redundancy: float
    activation_density: float
    graph: Optional[ModelGraph] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.redundancy <= 1.0:
            raise ValueError("redundancy must be in [0, 1]")
        if not 0.0 < self.activation_density <= 1.0:
            raise ValueError("activation_density must be in (0, 1]")
        if not self.layers:
            raise ValueError("a workload needs at least one layer")
        if self.graph is not None and self.graph.linearize() != self.layers:
            raise ValueError(
                f"workload {self.name!r}: layers must equal graph.linearize() "
                "(the lossless flat view)"
            )

    @classmethod
    def from_graph(
        cls,
        graph: ModelGraph,
        redundancy: float,
        activation_density: float,
    ) -> "ModelWorkload":
        """Build a workload from a graph, deriving the flat layer view."""
        return cls(
            name=graph.name,
            layers=graph.linearize(),
            redundancy=redundancy,
            activation_density=activation_density,
            graph=graph,
        )

    @property
    def total_macs(self) -> int:
        """Multiply-accumulates of one inference, summed over all layers."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weights(self) -> int:
        """Weight count of the whole network."""
        return sum(layer.weight_count for layer in self.layers)


def _alexnet() -> ModelWorkload:
    g = GraphBuilder("alexnet")
    g.conv("conv1", 3, 64, 3, 32)
    g.conv("conv2", 64, 192, 3, 16)
    g.conv("conv3", 192, 384, 3, 8)
    g.conv("conv4", 384, 256, 3, 8)
    g.conv("conv5", 256, 256, 3, 8)
    g.linear("fc6", 256 * 4 * 4, 4096)
    g.linear("fc7", 4096, 4096)
    g.linear("fc8", 4096, 100)
    return ModelWorkload.from_graph(
        g.build(), redundancy=0.92, activation_density=0.45
    )


def _vgg19() -> ModelWorkload:
    spec = [
        (3, 64, 32),
        (64, 64, 32),
        (64, 128, 16),
        (128, 128, 16),
        (128, 256, 8),
        (256, 256, 8),
        (256, 256, 8),
        (256, 256, 8),
        (256, 512, 4),
        (512, 512, 4),
        (512, 512, 4),
        (512, 512, 4),
        (512, 512, 2),
        (512, 512, 2),
        (512, 512, 2),
        (512, 512, 2),
    ]
    g = GraphBuilder("vgg19")
    for i, (cin, cout, size) in enumerate(spec):
        g.conv(f"conv{i + 1}", cin, cout, 3, size)
    g.linear("fc1", 512, 512)
    g.linear("fc2", 512, 100)
    return ModelWorkload.from_graph(
        g.build(), redundancy=0.78, activation_density=0.5
    )


def _resnet18() -> ModelWorkload:
    g = GraphBuilder("resnet18")
    x = g.conv("stem", 3, 64, 3, 32)
    stage_spec = [
        ("layer1", 64, 64, 32, 1),
        ("layer2", 64, 128, 32, 2),
        ("layer3", 128, 256, 16, 2),
        ("layer4", 256, 512, 8, 2),
    ]
    for name, cin, cout, size, stride in stage_spec:
        out_size = size // stride
        # Block 0: possibly strided, with the (previously omitted) 1x1
        # downsampling-shortcut projection when the geometry changes.
        c1 = g.conv(f"{name}.0.conv1", cin, cout, 3, size, stride=stride, inputs=x)
        c2 = g.conv(f"{name}.0.conv2", cout, cout, 3, out_size, inputs=c1)
        if stride != 1 or cin != cout:
            shortcut = g.conv(
                f"{name}.0.downsample", cin, cout, 1, size,
                stride=stride, padding=0, inputs=x,
            )
        else:
            shortcut = x
        x = g.add(f"{name}.0.add", c2, shortcut)
        # Block 1: identity residual.
        c1 = g.conv(f"{name}.1.conv1", cout, cout, 3, out_size, inputs=x)
        c2 = g.conv(f"{name}.1.conv2", cout, cout, 3, out_size, inputs=c1)
        x = g.add(f"{name}.1.add", c2, x)
    g.linear("fc", 512, 100, inputs=x)
    return ModelWorkload.from_graph(
        g.build(), redundancy=0.7, activation_density=0.5
    )


def _inverted_residual_stages(
    g: GraphBuilder,
    stages,
    cin: int,
    size: int,
    prefix: str,
    downsample_shortcuts: bool = False,
) -> Tuple[str, int, int]:
    """Append MBConv stages, restoring residual joins (and, optionally,
    the 1x1 downsampling shortcuts).

    Every ``(expansion, cout, repeats, stride, kernel)`` stage expands to
    expand -> depthwise -> project blocks.  Stride-1 blocks with matching
    channel counts close an identity residual ``add``; with
    ``downsample_shortcuts`` the stride-2 stage entries additionally carry
    the 1x1 downsampling-shortcut projection the flat tables used to omit
    (MobileNetV2 only -- EfficientNet-B0 keeps its canonical
    identity-residual-only form).  Returns the last node name plus the
    final (channels, spatial size).
    """
    x = g.last
    for stage_index, (expansion, cout, repeats, stride, kernel) in enumerate(stages):
        for repeat in range(repeats):
            block_stride = stride if repeat == 0 else 1
            hidden = cin * expansion
            name = f"{prefix}{stage_index}.{repeat}"
            block_input = x
            if expansion != 1:
                x = g.conv(f"{name}.expand", cin, hidden, 1, size, padding=0, inputs=x)
            x = g.depthwise(f"{name}.dw", hidden, kernel, size, stride=block_stride, inputs=x)
            out_size = size // block_stride
            x = g.conv(f"{name}.project", hidden, cout, 1, out_size, padding=0, inputs=x)
            if block_stride == 1 and cin == cout:
                x = g.add(f"{name}.add", x, block_input)
            elif block_stride != 1 and downsample_shortcuts:
                shortcut = g.conv(
                    f"{name}.downsample", cin, cout, 1, size,
                    stride=block_stride, padding=0, inputs=block_input,
                )
                x = g.add(f"{name}.add", x, shortcut)
            size = out_size
            cin = cout
    return x, cin, size


def _mobilenetv2() -> ModelWorkload:
    g = GraphBuilder("mobilenetv2")
    g.conv("stem", 3, 32, 3, 32)
    # (expansion, cout, repeats, stride, kernel) per stage, CIFAR strides.
    stages = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 1, 3),
        (6, 32, 3, 2, 3),
        (6, 64, 4, 2, 3),
        (6, 96, 3, 1, 3),
        (6, 160, 3, 2, 3),
        (6, 320, 1, 1, 3),
    ]
    x, cin, size = _inverted_residual_stages(
        g, stages, 32, 32, "block", downsample_shortcuts=True
    )
    x = g.conv("head", cin, 1280, 1, size, padding=0, inputs=x)
    g.linear("classifier", 1280, 100, inputs=x)
    return ModelWorkload.from_graph(
        g.build(), redundancy=0.42, activation_density=0.6
    )


def _efficientnet_b0() -> ModelWorkload:
    g = GraphBuilder("efficientnetb0")
    g.conv("stem", 3, 32, 3, 32)
    # (expansion, cout, repeats, stride, kernel) per MBConv stage.
    stages = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 1, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ]
    x, cin, size = _inverted_residual_stages(g, stages, 32, 32, "mbconv")
    x = g.conv("head", cin, 1280, 1, size, padding=0, inputs=x)
    g.linear("classifier", 1280, 100, inputs=x)
    return ModelWorkload.from_graph(
        g.build(), redundancy=0.38, activation_density=0.65
    )


def _attention_blocks(
    g: GraphBuilder, x: str, blocks: int, tokens: int, dim: int, mlp_ratio: int
) -> str:
    """Append pre-norm-style attention + MLP encoder blocks to a graph.

    Each block branches into Q/K/V projections, joins Q and K in an
    activation-activation ``scores`` matmul, normalises with a softmax SIMD
    node, joins the attention matrix with V, projects back and closes two
    residual ``add`` nodes (attention and MLP).  Returns the output node.
    """
    for i in range(blocks):
        name = f"block{i}"
        q = g.matmul(f"{name}.q", tokens, dim, dim, inputs=x)
        k = g.matmul(f"{name}.k", tokens, dim, dim, inputs=x)
        v = g.matmul(f"{name}.v", tokens, dim, dim, inputs=x)
        scores = g.matmul(f"{name}.scores", tokens, dim, tokens, inputs=(q, k))
        attn = g.softmax(f"{name}.softmax", inputs=scores)
        context = g.matmul(f"{name}.context", tokens, tokens, dim, inputs=(attn, v))
        proj = g.matmul(f"{name}.proj", tokens, dim, dim, inputs=context)
        res = g.add(f"{name}.add_attn", proj, x)
        mlp1 = g.matmul(f"{name}.mlp1", tokens, dim, dim * mlp_ratio, inputs=res)
        mlp2 = g.matmul(f"{name}.mlp2", tokens, dim * mlp_ratio, dim, inputs=mlp1)
        x = g.add(f"{name}.add_mlp", mlp2, res)
    return x


def _vit_tiny() -> ModelWorkload:
    # 32x32 input, 4x4 patches -> 64 tokens of dimension 128, 4 blocks.
    g = GraphBuilder("vit_tiny")
    x = g.conv("patch_embed", 3, 128, 4, 32, stride=4, padding=0)
    x = _attention_blocks(g, x, blocks=4, tokens=64, dim=128, mlp_ratio=4)
    g.linear("head", 128, 100, inputs=x)
    return ModelWorkload.from_graph(
        g.build(), redundancy=0.55, activation_density=0.55
    )


def _transformer_tiny() -> ModelWorkload:
    # Encoder-only stack over 64 tokens of 64-dim features embedded to 192.
    g = GraphBuilder("transformer_tiny")
    x = g.matmul("embed", 64, 64, 192)
    x = _attention_blocks(g, x, blocks=4, tokens=64, dim=192, mlp_ratio=4)
    g.linear("head", 192, 100, inputs=x)
    return ModelWorkload.from_graph(
        g.build(), redundancy=0.5, activation_density=0.6
    )


#: The five evaluation networks of the paper, keyed by name.
PAPER_MODELS: Dict[str, ModelWorkload] = {
    workload.name: workload
    for workload in (
        _alexnet(),
        _vgg19(),
        _resnet18(),
        _mobilenetv2(),
        _efficientnet_b0(),
    )
}

#: Transformer-class workloads (graph-only: attention branches + softmax).
TRANSFORMER_MODELS: Dict[str, ModelWorkload] = {
    workload.name: workload
    for workload in (
        _vit_tiny(),
        _transformer_tiny(),
    )
}

#: Every registered workload, keyed by name.
WORKLOADS: Dict[str, ModelWorkload] = {**PAPER_MODELS, **TRANSFORMER_MODELS}

#: Workload families, in listing order.
WORKLOAD_FAMILIES: Dict[str, Dict[str, ModelWorkload]] = {
    "paper": PAPER_MODELS,
    "transformer": TRANSFORMER_MODELS,
}


def get_workload(name: str) -> ModelWorkload:
    """Look a workload up by (case-insensitive) name, across all families."""
    key = name.lower()
    if key not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}")
    return WORKLOADS[key]


def list_workloads(family: Optional[str] = "paper") -> List[str]:
    """Names of the available workloads.

    Args:
        family: ``"paper"`` (default) for the five evaluation networks of
            the paper -- the set every experiment runs when no models are
            requested -- ``"transformer"`` for the attention-block
            workloads, or ``None`` for every registered workload.

    Raises:
        KeyError: for an unknown family name.
    """
    if family is None:
        return list(WORKLOADS)
    if family not in WORKLOAD_FAMILIES:
        raise KeyError(
            f"unknown workload family {family!r}; available: "
            f"{list(WORKLOAD_FAMILIES)} (or None for all)"
        )
    return list(WORKLOAD_FAMILIES[family])


def workload_family(name: str) -> str:
    """The family name (``"paper"`` / ``"transformer"``) of one workload."""
    key = name.lower()
    for family, members in WORKLOAD_FAMILIES.items():
        if key in members:
            return family
    raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}")
