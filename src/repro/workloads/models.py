"""Full-size layer tables of the paper's five evaluation networks.

These are the CIFAR-style (32x32 input) variants of AlexNet, VGG-19,
ResNet-18, MobileNetV2 and EfficientNet-B0 -- the layer geometries that the
cycle-level performance model maps onto the accelerator.  Channel counts and
strides follow the standard CIFAR adaptations of each architecture; 1x1
downsampling shortcuts and squeeze-excite layers are omitted because their
contribution to total MACs is negligible for the speedup/energy trends the
experiments reproduce.

Every model also carries a ``redundancy`` knob in 0..1 used by
:mod:`repro.workloads.profiles` when synthesising representative weights:
standard over-parameterised networks (AlexNet, VGG) have most of their
quantized weights near zero (high redundancy → FTA thresholds mostly 1),
while compact networks (MobileNetV2, EfficientNet-B0) spread their weight
energy much more evenly (low redundancy → thresholds mostly 2).  This mirrors
the weight-distribution observation the paper builds the FTA algorithm on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .layers import LayerKind, LayerShape

__all__ = ["ModelWorkload", "PAPER_MODELS", "get_workload", "list_workloads"]


@dataclass(frozen=True)
class ModelWorkload:
    """A named network described as a list of weighted layers.

    Attributes:
        name: paper name of the model (e.g. ``"alexnet"``).
        layers: weighted layers in execution order.
        redundancy: 0..1 knob describing how concentrated the weight
            distribution is (see module docstring).
        activation_density: 0..1 typical fraction of non-zero activation
            values feeding the layers (post-ReLU), used when synthesising
            representative input features.
    """

    name: str
    layers: Tuple[LayerShape, ...]
    redundancy: float
    activation_density: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.redundancy <= 1.0:
            raise ValueError("redundancy must be in [0, 1]")
        if not 0.0 < self.activation_density <= 1.0:
            raise ValueError("activation_density must be in (0, 1]")
        if not self.layers:
            raise ValueError("a workload needs at least one layer")

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weights(self) -> int:
        return sum(layer.weight_count for layer in self.layers)


def _conv(name, cin, cout, k, size, stride=1, padding=None) -> LayerShape:
    if padding is None:
        padding = k // 2
    return LayerShape(
        name=name,
        kind=LayerKind.CONV,
        in_channels=cin,
        out_channels=cout,
        kernel_size=k,
        stride=stride,
        input_size=size,
        padding=padding,
    )


def _dw(name, channels, k, size, stride=1) -> LayerShape:
    return LayerShape(
        name=name,
        kind=LayerKind.DEPTHWISE,
        in_channels=channels,
        out_channels=channels,
        kernel_size=k,
        stride=stride,
        input_size=size,
        padding=k // 2,
    )


def _fc(name, cin, cout) -> LayerShape:
    return LayerShape(
        name=name, kind=LayerKind.LINEAR, in_channels=cin, out_channels=cout
    )


def _alexnet() -> ModelWorkload:
    layers = (
        _conv("conv1", 3, 64, 3, 32),
        _conv("conv2", 64, 192, 3, 16),
        _conv("conv3", 192, 384, 3, 8),
        _conv("conv4", 384, 256, 3, 8),
        _conv("conv5", 256, 256, 3, 8),
        _fc("fc6", 256 * 4 * 4, 4096),
        _fc("fc7", 4096, 4096),
        _fc("fc8", 4096, 100),
    )
    return ModelWorkload("alexnet", layers, redundancy=0.92, activation_density=0.45)


def _vgg19() -> ModelWorkload:
    spec = [
        (3, 64, 32),
        (64, 64, 32),
        (64, 128, 16),
        (128, 128, 16),
        (128, 256, 8),
        (256, 256, 8),
        (256, 256, 8),
        (256, 256, 8),
        (256, 512, 4),
        (512, 512, 4),
        (512, 512, 4),
        (512, 512, 4),
        (512, 512, 2),
        (512, 512, 2),
        (512, 512, 2),
        (512, 512, 2),
    ]
    layers: List[LayerShape] = [
        _conv(f"conv{i + 1}", cin, cout, 3, size) for i, (cin, cout, size) in enumerate(spec)
    ]
    layers.append(_fc("fc1", 512, 512))
    layers.append(_fc("fc2", 512, 100))
    return ModelWorkload("vgg19", tuple(layers), redundancy=0.78, activation_density=0.5)


def _resnet18() -> ModelWorkload:
    layers: List[LayerShape] = [_conv("stem", 3, 64, 3, 32)]
    stage_spec = [
        ("layer1", 64, 64, 32, 1),
        ("layer2", 64, 128, 32, 2),
        ("layer3", 128, 256, 16, 2),
        ("layer4", 256, 512, 8, 2),
    ]
    for name, cin, cout, size, stride in stage_spec:
        layers.append(_conv(f"{name}.0.conv1", cin, cout, 3, size, stride=stride))
        out_size = size // stride
        layers.append(_conv(f"{name}.0.conv2", cout, cout, 3, out_size))
        layers.append(_conv(f"{name}.1.conv1", cout, cout, 3, out_size))
        layers.append(_conv(f"{name}.1.conv2", cout, cout, 3, out_size))
    layers.append(_fc("fc", 512, 100))
    return ModelWorkload("resnet18", tuple(layers), redundancy=0.7, activation_density=0.5)


def _mobilenetv2() -> ModelWorkload:
    layers: List[LayerShape] = [_conv("stem", 3, 32, 3, 32)]
    # (expansion, cout, repeats, stride) per stage, CIFAR strides.
    stages = [
        (1, 16, 1, 1),
        (6, 24, 2, 1),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ]
    cin, size = 32, 32
    for stage_index, (expansion, cout, repeats, stride) in enumerate(stages):
        for repeat in range(repeats):
            block_stride = stride if repeat == 0 else 1
            hidden = cin * expansion
            prefix = f"block{stage_index}.{repeat}"
            if expansion != 1:
                layers.append(_conv(f"{prefix}.expand", cin, hidden, 1, size, padding=0))
            layers.append(_dw(f"{prefix}.dw", hidden, 3, size, stride=block_stride))
            size = size // block_stride
            layers.append(_conv(f"{prefix}.project", hidden, cout, 1, size, padding=0))
            cin = cout
    layers.append(_conv("head", cin, 1280, 1, size, padding=0))
    layers.append(_fc("classifier", 1280, 100))
    return ModelWorkload(
        "mobilenetv2", tuple(layers), redundancy=0.42, activation_density=0.6
    )


def _efficientnet_b0() -> ModelWorkload:
    layers: List[LayerShape] = [_conv("stem", 3, 32, 3, 32)]
    # (expansion, cout, repeats, stride, kernel) per MBConv stage.
    stages = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 1, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ]
    cin, size = 32, 32
    for stage_index, (expansion, cout, repeats, stride, kernel) in enumerate(stages):
        for repeat in range(repeats):
            block_stride = stride if repeat == 0 else 1
            hidden = cin * expansion
            prefix = f"mbconv{stage_index}.{repeat}"
            if expansion != 1:
                layers.append(_conv(f"{prefix}.expand", cin, hidden, 1, size, padding=0))
            layers.append(_dw(f"{prefix}.dw", hidden, kernel, size, stride=block_stride))
            size = size // block_stride
            layers.append(_conv(f"{prefix}.project", hidden, cout, 1, size, padding=0))
            cin = cout
    layers.append(_conv("head", cin, 1280, 1, size, padding=0))
    layers.append(_fc("classifier", 1280, 100))
    return ModelWorkload(
        "efficientnetb0", tuple(layers), redundancy=0.38, activation_density=0.65
    )


#: The five evaluation networks of the paper, keyed by name.
PAPER_MODELS: Dict[str, ModelWorkload] = {
    workload.name: workload
    for workload in (
        _alexnet(),
        _vgg19(),
        _resnet18(),
        _mobilenetv2(),
        _efficientnet_b0(),
    )
}


def get_workload(name: str) -> ModelWorkload:
    """Look a workload up by (case-insensitive) paper name."""
    key = name.lower()
    if key not in PAPER_MODELS:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(PAPER_MODELS)}")
    return PAPER_MODELS[key]


def list_workloads() -> List[str]:
    """Names of all available workloads, in the paper's order."""
    return list(PAPER_MODELS)
