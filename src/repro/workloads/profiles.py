"""Synthetic sparsity profiles of the full-size workloads.

The cycle-level performance model needs, per layer, (a) the distribution of
FTA thresholds over the layer's filters and (b) the average number of
non-zero input bit columns per IPU group.  The paper measures both on real
pre-trained CIFAR-100 checkpoints; those are unavailable offline, so this
module synthesises statistically representative weights and activations:

* **Weights** are drawn from a two-component Gaussian mixture whose mixing
  weight is the model's ``redundancy``: a redundant model has most of its
  weights in a tight near-zero component plus a small fraction of large
  outliers that set the per-filter quantization scale -- exactly the shape
  that makes per-channel INT8 codes concentrate on tiny values and drives
  the FTA thresholds toward 1.  Compact models use a broad single component,
  pushing thresholds toward 2.
* **Activations** are ReLU-censored Gaussians whose non-zero fraction is the
  model's ``activation_density``, quantized to unsigned INT8.

The profiles are deterministic given the seed, and the actual FTA algorithm
and IPU code are run on the synthetic tensors (no shortcut formulas), so the
downstream speedup/energy model exercises the real algorithm end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import zlib

import numpy as np

from ..arch.ipu import InputPreprocessingUnit
from ..core.csd import count_nonzero_digits_array
from ..core.fta import FTAConfig, approximate_layer
from ..core.quantization import quantize_weights
from ..core.sparsity import weight_zero_bit_ratio_binary
from .layers import LayerShape
from .models import ModelWorkload

__all__ = [
    "LayerSparsityProfile",
    "ModelSparsityProfile",
    "synthesize_layer_weights",
    "synthesize_activations",
    "profile_layer",
    "profile_model",
]

#: Cap on the number of filters / elements sampled per layer so profiling a
#: full network stays fast; the threshold statistics converge well below it.
MAX_SAMPLED_FILTERS = 64
MAX_SAMPLED_ELEMENTS = 1024
MAX_SAMPLED_ACTIVATIONS = 4096


@dataclass(frozen=True)
class LayerSparsityProfile:
    """Sparsity statistics of one layer.

    Attributes:
        layer: the layer descriptor.
        thresholds: per-filter FTA thresholds for the whole layer (expanded
            from the sampled filters so the mapper sees ``out_channels``
            entries).
        input_active_columns: average non-zero bit columns per IPU group of
            the layer's input activations.
        weight_zero_bit_ratio: zero-digit ratio of the FTA'd sampled weights.
        weight_zero_bit_ratio_binary: zero-bit ratio of the plain (non-FTA)
            INT8 weights in two's complement -- what the dense baseline's
            utilisation is limited by.
        storage_utilization: fraction of allocated block slots holding a
            real Comp. Pattern block.
    """

    layer: LayerShape
    thresholds: Tuple[int, ...]
    input_active_columns: float
    weight_zero_bit_ratio: float
    weight_zero_bit_ratio_binary: float
    storage_utilization: float


@dataclass(frozen=True)
class ModelSparsityProfile:
    """Per-layer sparsity profiles of one workload."""

    workload: ModelWorkload
    layers: Tuple[LayerSparsityProfile, ...]

    def __len__(self) -> int:
        """Number of profiled layers."""
        return len(self.layers)

    def __iter__(self):
        """Iterate the per-layer profiles in network order."""
        return iter(self.layers)

    def layer(self, name: str) -> LayerSparsityProfile:
        """Look one layer's profile up by layer name.

        Raises:
            KeyError: listing the available layer names.
        """
        for profile in self.layers:
            if profile.layer.name == name:
                return profile
        raise KeyError(
            f"unknown layer {name!r} of {self.workload.name!r}; available: "
            f"{[p.layer.name for p in self.layers]}"
        )

    def threshold_histogram(self) -> Dict[int, int]:
        """Histogram of the per-filter FTA thresholds over every layer."""
        histogram: Dict[int, int] = {}
        for profile in self.layers:
            for value in profile.thresholds:
                histogram[value] = histogram.get(value, 0) + 1
        return histogram

    @property
    def average_active_columns(self) -> float:
        """MAC-weighted average of the per-layer input active columns."""
        total_macs = sum(p.layer.macs for p in self.layers)
        return (
            sum(p.input_active_columns * p.layer.macs for p in self.layers) / total_macs
        )

    @property
    def average_storage_utilization(self) -> float:
        """Weight-count-weighted average storage utilisation."""
        total = sum(p.layer.weight_count for p in self.layers)
        return (
            sum(p.storage_utilization * p.layer.weight_count for p in self.layers)
            / total
        )


def synthesize_layer_weights(
    layer: LayerShape,
    redundancy: float,
    seed: int = 0,
    max_filters: int = MAX_SAMPLED_FILTERS,
    max_elements: int = MAX_SAMPLED_ELEMENTS,
) -> np.ndarray:
    """Draw representative float weights for a layer.

    Args:
        layer: the layer whose weights to synthesise.
        redundancy: 0..1; higher values concentrate more weights near zero.
        seed: RNG seed (combined with a hash of the layer name).
        max_filters: cap on sampled filters.
        max_elements: cap on sampled reduction elements per filter.

    Returns:
        Float array ``(sampled_filters, sampled_elements)``.
    """
    if not 0.0 <= redundancy <= 1.0:
        raise ValueError("redundancy must be in [0, 1]")
    rng = np.random.default_rng(seed + (zlib.crc32(layer.name.encode()) % (1 << 16)))
    filters = min(layer.out_channels, max_filters)
    elements = min(layer.reduction_size, max_elements)
    # Near-zero component std shrinks with redundancy; the outlier component
    # is fixed and sets the per-filter scale.
    near_zero_std = 0.02 + 0.12 * (1.0 - redundancy)
    outlier_std = 0.45
    outlier_fraction = 0.03 + 0.12 * (1.0 - redundancy)
    is_outlier = rng.random(size=(filters, elements)) < outlier_fraction
    weights = np.where(
        is_outlier,
        rng.normal(0.0, outlier_std, size=(filters, elements)),
        rng.normal(0.0, near_zero_std, size=(filters, elements)),
    )
    # Guarantee at least one large weight per filter so the quantization
    # scale is set by the outlier component (as in trained networks).
    max_index = rng.integers(0, elements, size=filters)
    weights[np.arange(filters), max_index] = rng.normal(
        0.0, outlier_std, size=filters
    ) + np.sign(rng.normal(size=filters)) * outlier_std
    return weights


def synthesize_activations(
    layer: LayerShape,
    density: float,
    seed: int = 0,
    max_samples: int = MAX_SAMPLED_ACTIVATIONS,
) -> np.ndarray:
    """Draw representative unsigned INT8 activations feeding a layer.

    Post-ReLU activations follow a half-normal-like distribution and the
    INT8 activation scale of a deployed network is calibrated against its
    outliers, so typical codes sit well below 255 and the high bit columns
    of a broadcast group are frequently all zero -- which is what the IPU
    exploits.  The calibration point (8 standard deviations) mirrors common
    percentile-calibration practice.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed + (zlib.crc32(layer.name.encode()) % (1 << 16)) + 7)
    count = min(layer.activation_count, max_samples)
    values = np.abs(rng.normal(0.0, 1.0, size=count))
    # Censor values so only ``density`` of them are non-zero (post-ReLU).
    threshold = np.quantile(values, 1.0 - density)
    values = np.where(values >= threshold, values - threshold, 0.0)
    calibration = 8.0  # activation-scale calibration point, in std units
    return np.clip(np.round(values / calibration * 255), 0, 255).astype(np.int64)


def profile_layer(
    layer: LayerShape,
    redundancy: float,
    activation_density: float,
    seed: int = 0,
    fta_config: Optional[FTAConfig] = None,
    input_group: int = 16,
) -> LayerSparsityProfile:
    """Run FTA + IPU analysis on synthetic tensors for one layer."""
    float_weights = synthesize_layer_weights(layer, redundancy, seed)
    int_weights, _ = quantize_weights(float_weights, per_channel=True)
    result = approximate_layer(int_weights, fta_config)
    sampled_thresholds = result.thresholds
    # Expand the sampled thresholds to the layer's full filter count by
    # cycling through the sample (the statistics are what matters).
    repeats = -(-layer.out_channels // sampled_thresholds.size)
    thresholds = tuple(
        int(v) for v in np.tile(sampled_thresholds, repeats)[: layer.out_channels]
    )
    approx = result.approximated
    total_digits = approx.size * 8
    # Zero-bit ratio of the approximated weights (in CSD digit terms).
    nonzero_digits = int(count_nonzero_digits_array(approx).sum())
    zero_ratio = 1.0 - nonzero_digits / total_digits
    binary_zero_ratio = weight_zero_bit_ratio_binary(int_weights)
    allocated = sum(
        max(int(t), 1) * approx.shape[1] for t in sampled_thresholds
    )
    utilization = nonzero_digits / allocated if allocated else 0.0

    activations = synthesize_activations(layer, activation_density, seed)
    ipu = InputPreprocessingUnit(group_size=input_group)
    if activations.max() == 0:
        active_columns = 0.0
    else:
        active_columns = ipu.average_active_columns(activations)
    return LayerSparsityProfile(
        layer=layer,
        thresholds=thresholds,
        input_active_columns=active_columns,
        weight_zero_bit_ratio=zero_ratio,
        weight_zero_bit_ratio_binary=binary_zero_ratio,
        storage_utilization=min(utilization, 1.0),
    )


def profile_model(
    workload: ModelWorkload,
    seed: int = 0,
    fta_config: Optional[FTAConfig] = None,
    input_group: int = 16,
) -> ModelSparsityProfile:
    """Profile every layer of a workload."""
    profiles: List[LayerSparsityProfile] = [
        profile_layer(
            layer,
            workload.redundancy,
            workload.activation_density,
            seed=seed,
            fta_config=fta_config,
            input_group=input_group,
        )
        for layer in workload.layers
    ]
    return ModelSparsityProfile(workload=workload, layers=tuple(profiles))
